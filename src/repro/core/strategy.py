"""The FedLPS strategy: learnable patterns + P-UCBV adaptive ratios.

The class also exposes the knobs the paper ablates (Table II / Figure 9a):

* ``ratio_policy``: ``"pucbv"`` (adaptive, the full method), ``"fixed"``
  (a constant ratio for every client, the FLST ablation) or ``"capability"``
  (the rigid Resource-Controlled Ratio rule used by HeteroFL/FjORD/FedRolex);
* ``pattern_mode``: ``"learnable"`` (importance-derived, the full method) or
  one of the heuristic strategies (``"random"``, ``"ordered"``,
  ``"magnitude"``) for the pattern ablation.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Tuple

import numpy as np

from ..federated.client import Client
from ..federated.local import train_locally
from ..federated.strategy import ClientUpdate, Strategy, StrategyContext
from ..federated.aggregation import aggregate_residuals
from ..nn.batched import batchable_model
from ..nn.params import ParamDict, multiply, subtract
from ..sparsity.masks import UnitPattern, build_parameter_mask
from ..sparsity.patterns import heuristic_pattern
from ..systems.cost import CostBreakdown
from ..systems.devices import affordable_ratio
from .bandit import PUCBVAgent
from .importance import ImportanceIndicator, initialize_importance
from .sparse_training import (learnable_sparse_training,
                              learnable_sparse_training_cohort)

RATIO_POLICIES = ("pucbv", "fixed", "capability")
PATTERN_MODES = ("learnable", "random", "ordered", "magnitude")


class FedLPS(Strategy):
    """Learnable Personalized Sparsification for heterogeneous FL."""

    name = "fedlps"

    def __init__(self, *, ratio_policy: str = "pucbv",
                 pattern_mode: str = "learnable",
                 fixed_ratio: float = 0.5,
                 ratio_min: float = 0.4,
                 num_initial_partitions: int = 4,
                 accuracy_threshold: float = 0.5,
                 rho: float = 1.0,
                 importance_learning_rate: Optional[float] = 0.02) -> None:
        # Defaults note: the paper's arm space is [0, 1) and the importance
        # indicator shares the model's learning rate.  With this
        # reproduction's scaled-down backbones, sub-models below ~40% of the
        # architecture cannot represent a client's local task at all, and the
        # raw learning rate makes the top-k pattern oscillate, so the default
        # arm-space floor and importance learning rate are re-tuned
        # (documented in DESIGN.md); both remain constructor arguments.
        super().__init__()
        if ratio_policy not in RATIO_POLICIES:
            raise ValueError(f"ratio_policy must be one of {RATIO_POLICIES}")
        if pattern_mode not in PATTERN_MODES:
            raise ValueError(f"pattern_mode must be one of {PATTERN_MODES}")
        if not 0.0 < fixed_ratio <= 1.0:
            raise ValueError("fixed_ratio must be in (0, 1]")
        self.ratio_policy = ratio_policy
        self.pattern_mode = pattern_mode
        self.fixed_ratio = fixed_ratio
        self.ratio_min = ratio_min
        self.num_initial_partitions = num_initial_partitions
        self.accuracy_threshold = accuracy_threshold
        self.rho = rho
        self.importance_learning_rate = importance_learning_rate
        if ratio_policy != "pucbv":
            self.name = f"fedlps[{ratio_policy}/{pattern_mode}]"
        elif pattern_mode != "learnable":
            self.name = f"fedlps[{pattern_mode}]"

    # ------------------------------------------------------------ lifecycle
    def init_client_state(self, client: Client) -> None:
        """One client's persistent state, pure in ``(seed, client_id)``.

        Runs once per client — at setup with an eager fleet, on first
        materialization with a lazy one; both orders produce identical
        state because nothing here depends on other clients.
        """
        context = self._require_context()
        config = context.config
        # fleet size from the dataset, NOT len(context.clients): a broadcast
        # worker initializing a never-participating evaluation client holds
        # a single-client context map, but the session dataset always knows
        # the full federation size
        num_clients = max(context.dataset.num_clients, 1)
        selection_fraction = config.clients_per_round / num_clients
        baseline_accuracy = 100.0 / max(context.dataset.num_classes, 2)
        state = client.state
        state["importance"] = None
        state["prev_accuracy"] = baseline_accuracy
        state["personal_params"] = None
        state["personal_pattern"] = None
        if self.ratio_policy == "pucbv":
            agent = PUCBVAgent(
                total_rounds=config.num_rounds,
                num_clients=num_clients,
                selection_fraction=selection_fraction,
                num_initial_partitions=self.num_initial_partitions,
                accuracy_threshold=self.accuracy_threshold,
                rho=self.rho, ratio_min=self.ratio_min,
                seed=config.seed * 7919 + client.client_id)
            state["agent"] = agent
            state["ratio"] = agent.initial_ratio()
        elif self.ratio_policy == "fixed":
            state["agent"] = None
            state["ratio"] = self.fixed_ratio
        else:  # capability-controlled rigid rule
            state["agent"] = None
            state["ratio"] = affordable_ratio(client.capability)

    # --------------------------------------------------------- local update
    def local_update(self, round_index: int, client: Client) -> ClientUpdate:
        context = self._require_context()
        config = context.config
        state = client.state
        ratio = self._effective_ratio(client)
        rng = self._client_rng(round_index, client.client_id)

        if self.pattern_mode == "learnable":
            importance = state.get("importance")
            if importance is None:
                # initialize from the broadcast global model, not from whatever
                # scratch state a previous client's training left behind — the
                # initial importance must be a pure function of the broadcast
                # so results do not depend on execution order
                context.model.set_parameters(self.global_params)
                importance = initialize_importance(
                    context.model, seed=config.seed * 104_729 + client.client_id)
            result = learnable_sparse_training(
                context.model, self.global_params, importance, client.train_data,
                sparse_ratio=ratio, iterations=config.local_iterations,
                batch_size=config.batch_size, learning_rate=config.learning_rate,
                momentum=config.momentum, clip_norm=config.clip_norm,
                prox_mu=config.prox_mu,
                importance_lambda=config.importance_lambda,
                importance_learning_rate=self.importance_learning_rate, rng=rng)
            pattern = result.pattern
            residual = result.residual
            personalized = result.personalized_params
            state["importance"] = result.importance
            train_accuracy = result.train_accuracy
            train_loss = result.train_loss
        else:
            pattern, residual, personalized, train_accuracy, train_loss = \
                self._heuristic_update(round_index, client, ratio, rng)

        state["personal_params"] = personalized
        state["personal_pattern"] = pattern
        state["last_ratio"] = ratio

        flops, upload, download = self._round_footprint(client, pattern=pattern)
        return ClientUpdate(
            client_id=client.client_id, params=residual,
            num_examples=client.num_train_examples,
            train_accuracy=train_accuracy, train_loss=train_loss,
            pattern=pattern, sparse_ratio=ratio, flops=flops,
            upload_bytes=upload, download_bytes=download)

    # ------------------------------------------------------ cohort batching
    def cohort_batchable(self) -> bool:
        # only the learnable path has a batched twin; the heuristic pattern
        # ablations go through train_locally's per-client loop
        context = self._require_context()
        return (self.pattern_mode == "learnable"
                and batchable_model(context.model))

    def local_update_cohort(self, round_index: int,
                            clients: List[Client]
                            ) -> Optional[List[ClientUpdate]]:
        context = self._require_context()
        config = context.config
        importances: List[ImportanceIndicator] = []
        ratios: List[float] = []
        for client in clients:
            importance = client.state.get("importance")
            if importance is None:
                # same pure-function initialization as the per-client path:
                # from the broadcast global model and the client's seed only
                context.model.set_parameters(self.global_params)
                importance = initialize_importance(
                    context.model,
                    seed=config.seed * 104_729 + client.client_id)
            importances.append(importance)
            ratios.append(self._effective_ratio(client))
        results = learnable_sparse_training_cohort(
            context.model, self.global_params, importances,
            [client.train_data for client in clients],
            sparse_ratios=ratios, iterations=config.local_iterations,
            batch_size=config.batch_size, learning_rate=config.learning_rate,
            momentum=config.momentum, clip_norm=config.clip_norm,
            prox_mu=config.prox_mu,
            importance_lambda=config.importance_lambda,
            importance_learning_rate=self.importance_learning_rate,
            rngs=[self._client_rng(round_index, client.client_id)
                  for client in clients])
        updates = []
        for client, ratio, result in zip(clients, ratios, results):
            state = client.state
            state["importance"] = result.importance
            state["personal_params"] = result.personalized_params
            state["personal_pattern"] = result.pattern
            state["last_ratio"] = ratio
            flops, upload, download = self._round_footprint(
                client, pattern=result.pattern)
            updates.append(ClientUpdate(
                client_id=client.client_id, params=result.residual,
                num_examples=client.num_train_examples,
                train_accuracy=result.train_accuracy,
                train_loss=result.train_loss,
                pattern=result.pattern, sparse_ratio=ratio, flops=flops,
                upload_bytes=upload, download_bytes=download))
        return updates

    def _heuristic_update(self, round_index: int, client: Client, ratio: float,
                          rng: np.random.Generator
                          ) -> Tuple[UnitPattern, ParamDict, ParamDict, float, float]:
        """Pattern-ablation path: heuristic pattern + masked sparse training."""
        context = self._require_context()
        config = context.config
        context.model.set_parameters(self.global_params)
        pattern = heuristic_pattern(self.pattern_mode, context.model, ratio,
                                    round_index=round_index, rng=rng)
        param_mask = build_parameter_mask(context.model, pattern)
        result = train_locally(
            context.model, self.global_params, client.train_data,
            iterations=config.local_iterations, batch_size=config.batch_size,
            learning_rate=config.learning_rate, momentum=config.momentum,
            clip_norm=config.clip_norm, prox_mu=config.prox_mu,
            prox_center=self.global_params, pattern=pattern,
            param_mask=param_mask, rng=rng)
        personalized = multiply(result.params, param_mask)
        residual = multiply(subtract(self.global_params, result.params), param_mask)
        return pattern, residual, personalized, result.train_accuracy, result.train_loss

    def _effective_ratio(self, client: Client) -> float:
        """Cap the server-decided ratio by the client's capability (Sec. III-B).

        The cap uses :func:`affordable_ratio`, i.e. the capability translated
        into the largest sub-model fraction the device can host given this
        reproduction's scaled-down backbones (see DESIGN.md).
        """
        ratio = client.state.get("ratio", self.fixed_ratio)
        cap = affordable_ratio(client.capability)
        if self.ratio_policy == "capability":
            ratio = cap
        elif self.ratio_policy == "fixed":
            # the paper's fixed-ratio experiments (FLST, Figure 9) assign the
            # same ratio to every client regardless of capability
            ratio = self.fixed_ratio
            return float(np.clip(ratio, min(self.ratio_min, ratio), 1.0))
        ratio = min(ratio, cap)
        return float(np.clip(ratio, self.ratio_min, 1.0))

    # ----------------------------------------------------------- aggregation
    def aggregate(self, round_index: int, updates: List[ClientUpdate]) -> None:
        """FedLPS aggregation of masked residuals (Eq. 13)."""
        if not updates:
            return
        self.global_params = aggregate_residuals(
            self.global_params,
            [update.params for update in updates],
            [update.num_examples for update in updates])

    # ------------------------------------------------------------ evaluation
    def client_evaluation(self, client: Client) -> Tuple[ParamDict, Optional[UnitPattern]]:
        personal = client.state.get("personal_params")
        if personal is None:
            return self.global_params, None
        return personal, client.state.get("personal_pattern")

    # ------------------------------------------------------------- post-round
    def post_round(self, round_index: int, updates: List[ClientUpdate],
                   costs: Mapping[int, CostBreakdown]) -> None:
        """Online sparse-ratio decision for the clients that participated."""
        self._require_context()
        for update in updates:
            state = self._client_state(update.client_id)
            accuracy_percent = 100.0 * update.train_accuracy
            previous = state.get("prev_accuracy", accuracy_percent)
            if self.ratio_policy == "pucbv":
                agent: PUCBVAgent = state["agent"]
                cost_seconds = max(costs[update.client_id].total_seconds, 1e-9)
                next_ratio = agent.observe_and_select(
                    update.sparse_ratio, cost_seconds, accuracy_percent, previous)
                state["ratio"] = float(np.clip(next_ratio, self.ratio_min, 1.0))
            state["prev_accuracy"] = accuracy_percent
