"""Setuptools configuration.

``pip install -e .`` needs network access (or pre-installed ``setuptools``
and ``wheel``) to build the editable wheel; in fully offline environments
use ``python -m repro.cli`` directly — the test suite already adds ``src``
to the import path via pyproject's pytest configuration."""

from setuptools import find_packages, setup

setup(
    name="repro-fedlps",
    version="0.2.0",
    description=("Reproduction of FedLPS: learnable personalized sparsification "
                 "for heterogeneous federated learning"),
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
