"""Non-IID partitioning strategies for federated simulation.

The paper's main experiments use the *pathological* partition (every client
holds data from only a few classes).  The Dirichlet partition and the IID
partition are provided for the non-IID-level sweeps and as sanity baselines;
the Reddit-style corpus is partitioned naturally (one user = one client).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .dataset import ClientData, Dataset, FederatedDataset
from .synthetic import (IMAGE_SPECS, TextSpec, make_image_classification,
                        make_personalized_image_shards, synthetic_reddit_users)


def iid_partition(dataset: Dataset, num_clients: int, *, seed: int = 0
                  ) -> List[np.ndarray]:
    """Shuffle and deal examples evenly across clients."""
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset))
    return [np.sort(part) for part in np.array_split(order, num_clients)]


def pathological_partition(dataset: Dataset, num_clients: int,
                           classes_per_client: int, *, seed: int = 0
                           ) -> List[np.ndarray]:
    """Pathological label-skew partition.

    Every client is assigned ``classes_per_client`` classes and receives an
    equal share of the examples of each assigned class, following the shard
    construction used by the paper (and originally by McMahan et al.).

    The assignment guarantees every class lands on at least one client, so
    the returned partitions are disjoint AND exactly cover the dataset.
    When that is impossible (fewer client-class slots than classes) the
    partition would silently discard whole classes, so it raises instead.
    """
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")
    labels = dataset.y.astype(np.int64)
    num_classes = int(labels.max()) + 1
    if not 1 <= classes_per_client <= num_classes:
        raise ValueError(
            f"classes_per_client must be in [1, {num_classes}], "
            f"got {classes_per_client}")
    slots = num_clients * classes_per_client
    if slots < num_classes:
        raise ValueError(
            f"{num_clients} clients x {classes_per_client} classes each "
            f"cannot cover all {num_classes} classes; examples would be "
            "discarded — use more clients or classes_per_client")
    rng = np.random.default_rng(seed)

    # Spread the client-class slots as evenly as possible over the classes:
    # every class at least once (coverage) and never more often than there
    # are clients (a client holds each class at most once).
    multiplicity = np.full(num_classes, slots // num_classes, dtype=np.int64)
    remainder = slots - int(multiplicity.sum())
    if remainder:
        multiplicity[rng.choice(num_classes, size=remainder,
                                replace=False)] += 1

    # Deal the slots to clients, always taking the classes with the most
    # slots left (random stable tie-break).  Because no class ever has more
    # remaining slots than there are remaining clients, the greedy deal
    # always finds ``classes_per_client`` distinct classes per client.
    assignments: List[np.ndarray] = []
    remaining = multiplicity.copy()
    for _ in range(num_clients):
        order = rng.permutation(num_classes)
        ranked = sorted(order.tolist(), key=lambda c: -remaining[c])
        chosen = ranked[:classes_per_client]
        remaining[chosen] -= 1
        assignments.append(np.array(chosen))

    # Split every class's examples into equal shards among the clients that
    # requested the class.
    per_class_indices = {c: rng.permutation(np.where(labels == c)[0])
                         for c in range(num_classes)}
    demand = {c: 0 for c in range(num_classes)}
    for chosen in assignments:
        for c in chosen:
            demand[int(c)] += 1
    shards: Dict[int, List[np.ndarray]] = {}
    for c, indices in per_class_indices.items():
        splits = np.array_split(indices, max(demand[c], 1))
        shards[c] = list(splits)
    cursors = {c: 0 for c in range(num_classes)}

    partitions: List[np.ndarray] = []
    for chosen in assignments:
        pieces = []
        for c in chosen:
            c = int(c)
            shard = shards[c][cursors[c] % len(shards[c])]
            cursors[c] += 1
            pieces.append(shard)
        indices = np.concatenate(pieces) if pieces else np.zeros(0, dtype=np.int64)
        partitions.append(np.sort(indices.astype(np.int64)))
    return partitions


def dirichlet_partition(dataset: Dataset, num_clients: int, alpha: float, *,
                        seed: int = 0, min_examples: int = 2) -> List[np.ndarray]:
    """Dirichlet label-skew partition (lower ``alpha`` = more skew)."""
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    labels = dataset.y.astype(np.int64)
    num_classes = int(labels.max()) + 1
    rng = np.random.default_rng(seed)
    for _ in range(20):
        partitions: List[List[int]] = [[] for _ in range(num_clients)]
        for c in range(num_classes):
            class_indices = rng.permutation(np.where(labels == c)[0])
            proportions = rng.dirichlet(np.full(num_clients, alpha))
            boundaries = (np.cumsum(proportions) * len(class_indices)).astype(int)[:-1]
            for client, piece in enumerate(np.split(class_indices, boundaries)):
                partitions[client].extend(piece.tolist())
        if min(len(part) for part in partitions) >= min_examples:
            return [np.sort(np.array(part, dtype=np.int64)) for part in partitions]
    raise RuntimeError(
        "could not build a Dirichlet partition giving every client at least "
        f"{min_examples} examples; increase data size or alpha")


def partition_to_clients(dataset: Dataset, partitions: List[np.ndarray], *,
                         test_fraction: float = 0.2, seed: int = 0
                         ) -> Dict[int, ClientData]:
    """Turn index partitions into per-client train/test shards."""
    clients: Dict[int, ClientData] = {}
    for client_id, indices in enumerate(partitions):
        if len(indices) < 2:
            raise ValueError(
                f"client {client_id} received {len(indices)} examples; "
                "every client needs at least 2 to split into train/test")
        shard = dataset.subset(indices)
        train, test = shard.split(test_fraction, seed=seed + client_id)
        clients[client_id] = ClientData(client_id, train, test)
    return clients


def build_federated_dataset(name: str, num_clients: int, *,
                            partition: str = "pathological",
                            classes_per_client: int = 2,
                            dirichlet_alpha: float = 0.5,
                            examples_per_client: int = 60,
                            test_fraction: float = 0.25,
                            style_scale: float = 2.5,
                            seed: int = 0) -> FederatedDataset:
    """Build a federated dataset for one of the five paper benchmarks.

    The default ``pathological`` partition combines the paper's label-skew
    shards with a client-specific style shift (see
    :func:`make_personalized_image_shards`), which is what makes the data
    genuinely non-IID for a shared global model.  ``dirichlet`` and ``iid``
    partitions operate on a pooled dataset without styles and are provided
    for sweeps and sanity baselines.  The Reddit stand-in is always
    partitioned naturally (one synthetic user per client) because it is
    inherently non-IID, exactly as in the paper.
    """
    name = name.lower()
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")

    if name == "reddit":
        user_datasets, spec = synthetic_reddit_users(
            num_clients, examples_per_client, seed=seed)
        clients: Dict[int, ClientData] = {}
        for client_id, shard in enumerate(user_datasets):
            train, test = shard.split(test_fraction, seed=seed + client_id)
            clients[client_id] = ClientData(client_id, train, test)
        return FederatedDataset(
            name="reddit", clients=clients, num_classes=spec.vocab_size,
            input_shape=(spec.seq_len,),
            metadata={"task": "next_word", "vocab_size": spec.vocab_size,
                      "partition": "natural"})

    if name not in IMAGE_SPECS:
        raise ValueError(f"unknown dataset {name!r}")
    spec = IMAGE_SPECS[name]

    if partition == "pathological":
        shards = make_personalized_image_shards(
            spec, num_clients, classes_per_client, examples_per_client,
            style_scale=style_scale, seed=seed)
        clients = {}
        for client_id, shard in enumerate(shards):
            train, test = shard.split(test_fraction, seed=seed + client_id)
            clients[client_id] = ClientData(client_id, train, test)
    else:
        total_examples = examples_per_client * num_clients
        dataset = make_image_classification(spec, total_examples, seed=seed)
        if partition == "dirichlet":
            parts = dirichlet_partition(dataset, num_clients, dirichlet_alpha,
                                        seed=seed)
        elif partition == "iid":
            parts = iid_partition(dataset, num_clients, seed=seed)
        else:
            raise ValueError(f"unknown partition strategy {partition!r}")
        clients = partition_to_clients(dataset, parts,
                                       test_fraction=test_fraction, seed=seed)

    return FederatedDataset(
        name=name, clients=clients, num_classes=spec.num_classes,
        input_shape=(spec.channels, spec.image_size, spec.image_size),
        metadata={"task": "image_classification", "partition": partition,
                  "classes_per_client": classes_per_client,
                  "dirichlet_alpha": dirichlet_alpha,
                  "style_scale": style_scale})


def pathological_partition_missing_classes(dataset: Dataset, num_clients: int,
                                           missing_classes: int, *,
                                           seed: int = 0) -> List[np.ndarray]:
    """Partition used by the non-IID-level sweep (Figure 6).

    The paper's sweep is parameterized by how many classes each client *lacks*
    (``x`` on the horizontal axis); this wrapper converts that to the
    classes-per-client parameter of :func:`pathological_partition`.
    """
    labels = dataset.y.astype(np.int64)
    num_classes = int(labels.max()) + 1
    classes_per_client = num_classes - missing_classes
    if classes_per_client < 1:
        raise ValueError(
            f"missing_classes={missing_classes} leaves no class for clients")
    return pathological_partition(dataset, num_clients, classes_per_client, seed=seed)
