"""Dataset containers and batching utilities for federated simulation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np


@dataclass
class Dataset:
    """A supervised dataset: features ``x`` and integer labels ``y``.

    ``x`` keeps whatever shape the model expects (images ``(N, C, H, W)``,
    flat features ``(N, D)`` or token windows ``(N, T)``); ``y`` is ``(N,)``.
    """

    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x)
        self.y = np.asarray(self.y)
        if len(self.x) != len(self.y):
            raise ValueError(
                f"feature/label count mismatch: {len(self.x)} vs {len(self.y)}")

    def __len__(self) -> int:
        return int(len(self.y))

    @property
    def num_classes(self) -> int:
        """Number of distinct labels present (0 for an empty dataset)."""
        return int(len(np.unique(self.y))) if len(self.y) else 0

    def subset(self, indices: np.ndarray) -> "Dataset":
        """Dataset restricted to ``indices`` (copying the selected rows)."""
        indices = np.asarray(indices, dtype=np.int64)
        return Dataset(self.x[indices].copy(), self.y[indices].copy())

    def class_counts(self, num_classes: Optional[int] = None) -> np.ndarray:
        """Histogram of labels, length ``num_classes`` (inferred if omitted)."""
        if num_classes is None:
            num_classes = int(self.y.max()) + 1 if len(self.y) else 0
        return np.bincount(self.y.astype(np.int64), minlength=num_classes)

    def split(self, test_fraction: float, *, seed: int = 0) -> Tuple["Dataset", "Dataset"]:
        """Random train/test split preserving no particular class balance."""
        if not 0.0 < test_fraction < 1.0:
            raise ValueError("test_fraction must be in (0, 1)")
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self))
        n_test = max(1, int(round(test_fraction * len(self))))
        test_idx, train_idx = order[:n_test], order[n_test:]
        if len(train_idx) == 0:
            raise ValueError("split left no training examples")
        return self.subset(train_idx), self.subset(test_idx)


class DataLoader:
    """Mini-batch iterator with deterministic shuffling.

    Each call to :meth:`__iter__` reshuffles with a fresh stream drawn from
    the loader's generator, so successive epochs see different orders while
    the whole sequence stays reproducible for a given seed.
    """

    def __init__(self, dataset: Dataset, batch_size: int, *, shuffle: bool = True,
                 seed: int = 0, drop_last: bool = False) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if len(dataset) == 0:
            raise ValueError("cannot build a DataLoader over an empty dataset")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(indices)
        for start in range(0, len(indices), self.batch_size):
            batch = indices[start:start + self.batch_size]
            if self.drop_last and len(batch) < self.batch_size:
                break
            yield self.dataset.x[batch], self.dataset.y[batch]


@dataclass
class ClientData:
    """The local train/test shard owned by one simulated client."""

    client_id: int
    train: Dataset
    test: Dataset

    @property
    def num_train_examples(self) -> int:
        return len(self.train)


@dataclass
class FederatedDataset:
    """All client shards plus dataset-level metadata."""

    name: str
    clients: Dict[int, ClientData]
    num_classes: int
    input_shape: Tuple[int, ...]
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def num_clients(self) -> int:
        return len(self.clients)

    @property
    def client_ids(self) -> List[int]:
        return sorted(self.clients.keys())

    def client(self, client_id: int) -> ClientData:
        if client_id not in self.clients:
            raise KeyError(f"no client with id {client_id}")
        return self.clients[client_id]

    def total_train_examples(self) -> int:
        return int(sum(len(shard.train) for shard in self.clients.values()))

    def average_local_accuracy_weights(self) -> Dict[int, float]:
        """Per-client weights proportional to local train size (|D_k|)."""
        return {cid: float(len(shard.train)) for cid, shard in self.clients.items()}
