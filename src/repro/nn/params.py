"""Helpers for manipulating flat parameter dictionaries.

Federated learning moves parameter snapshots around constantly (global
parameters, local updates, residuals, masked uploads).  These helpers give
that traffic a single, explicit vocabulary: every snapshot is a
``{"layer.param": ndarray}`` dictionary and every operation returns a new
dictionary without mutating its inputs.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

import numpy as np

ParamDict = Dict[str, np.ndarray]


def copy_params(params: Mapping[str, np.ndarray]) -> ParamDict:
    """Deep-copy a parameter dictionary."""
    return {key: np.array(value, copy=True) for key, value in params.items()}


def zeros_like(params: Mapping[str, np.ndarray]) -> ParamDict:
    """A dictionary of zero arrays with the same keys/shapes."""
    return {key: np.zeros_like(value) for key, value in params.items()}


def add(left: Mapping[str, np.ndarray], right: Mapping[str, np.ndarray]) -> ParamDict:
    """Element-wise sum of two parameter dictionaries."""
    _check_same_keys(left, right)
    return {key: left[key] + right[key] for key in left}


def subtract(left: Mapping[str, np.ndarray], right: Mapping[str, np.ndarray]) -> ParamDict:
    """Element-wise difference ``left - right``."""
    _check_same_keys(left, right)
    return {key: left[key] - right[key] for key in left}


def scale(params: Mapping[str, np.ndarray], factor: float) -> ParamDict:
    """Multiply every entry by ``factor``."""
    return {key: value * factor for key, value in params.items()}


def multiply(left: Mapping[str, np.ndarray], right: Mapping[str, np.ndarray]) -> ParamDict:
    """Element-wise (Hadamard) product, e.g. ``omega * mask``."""
    _check_same_keys(left, right)
    return {key: left[key] * right[key] for key in left}


def weighted_average(param_dicts: Iterable[Mapping[str, np.ndarray]],
                     weights: Iterable[float]) -> ParamDict:
    """Weighted average of parameter dictionaries (weights are normalized)."""
    param_list = list(param_dicts)
    weight_list = [float(w) for w in weights]
    if not param_list:
        raise ValueError("cannot average an empty collection of parameters")
    if len(param_list) != len(weight_list):
        raise ValueError("parameter dictionaries and weights must have equal length")
    total = sum(weight_list)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    result = zeros_like(param_list[0])
    for params, weight in zip(param_list, weight_list):
        _check_same_keys(result, params)
        for key in result:
            result[key] += params[key] * (weight / total)
    return result


def flatten(params: Mapping[str, np.ndarray]) -> np.ndarray:
    """Concatenate all entries (sorted by key) into a single 1-D vector."""
    return np.concatenate([np.ravel(params[key]) for key in sorted(params)]) \
        if params else np.zeros(0)


def l2_norm(params: Mapping[str, np.ndarray]) -> float:
    """Global L2 norm of a parameter dictionary."""
    return float(np.sqrt(sum(float(np.sum(v ** 2)) for v in params.values())))


def l2_distance(left: Mapping[str, np.ndarray], right: Mapping[str, np.ndarray]) -> float:
    """Global L2 distance between two parameter dictionaries."""
    return l2_norm(subtract(left, right))


def num_parameters(params: Mapping[str, np.ndarray]) -> int:
    """Total number of scalar parameters."""
    return int(sum(value.size for value in params.values()))


def count_nonzero(params: Mapping[str, np.ndarray]) -> int:
    """Number of non-zero scalar entries (used for sparse upload accounting)."""
    return int(sum(np.count_nonzero(value) for value in params.values()))


def _check_same_keys(left: Mapping[str, np.ndarray], right: Mapping[str, np.ndarray]) -> None:
    if set(left.keys()) != set(right.keys()):
        missing = set(left.keys()) ^ set(right.keys())
        raise KeyError(f"parameter dictionaries differ in keys: {sorted(missing)}")
