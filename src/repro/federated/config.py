"""Configuration of a federated simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..scenarios.config import ScenarioConfig

if TYPE_CHECKING:  # pragma: no cover - import only for annotations
    from ..parallel.faults import FaultPlan

#: the aggregation modes the event-driven server core understands (see
#: ``repro.server.scheduler`` — sync is the paper's synchronous round loop,
#: fedasync aggregates every arrival with a staleness-decayed weight,
#: fedbuff aggregates buffered batches of ``buffer_size`` arrivals)
AGGREGATIONS = ("sync", "fedasync", "fedbuff")


@dataclass
class FleetConfig:
    """How the server materializes the client fleet.

    ``lazy=True`` (the default) keeps fleet construction O(cohort): client
    shards, device profiles and per-client state come into existence only
    when a client is dispatched (or evaluated).  ``shard_cache`` bounds
    each of the two pinning layers — the dataset's materialized-shard LRU
    and the server's client-facade LRU — so resident shard memory is at
    most 2x ``shard_cache`` in the worst case (disjoint working sets),
    and typically ~1x because facades reference the same shard objects.
    ``lazy=False`` retains the historical eager path — every client object
    built up front — which is bit-identical in results and useful for
    byte-level comparisons and eager validation.

    ``eval_clients`` caps the personalized-evaluation sweep, which is
    otherwise O(num_clients) per evaluated round: ``None`` evaluates every
    client (the paper's metric, the default), ``k > 0`` evaluates a fixed
    deterministic subset of ``k`` clients drawn once from the run seed, and
    ``0`` skips personalized evaluation entirely (reported accuracy 0.0) —
    for fleet-scale smoke runs where even one sweep would dominate.
    """

    lazy: bool = True
    shard_cache: int = 256
    eval_clients: Optional[int] = None

    def __post_init__(self) -> None:
        if self.shard_cache <= 0:
            raise ValueError("shard_cache must be positive")
        if self.eval_clients is not None and self.eval_clients < 0:
            raise ValueError("eval_clients must be non-negative or None")


@dataclass
class FederatedConfig:
    """Hyper-parameters shared by every strategy.

    The defaults are scaled-down versions of the paper's configuration
    (100 rounds, 10 selected clients per round, batch size 20, SGD with
    learning rate 0.1) so that simulations finish quickly on a CPU; the
    benchmark harness overrides them where a sweep requires it.
    """

    num_rounds: int = 20
    clients_per_round: int = 4
    local_iterations: int = 6
    batch_size: int = 16
    learning_rate: float = 0.1
    momentum: float = 0.0
    clip_norm: Optional[float] = 5.0
    # FedLPS loss weights (Eq. 9): mu scales the proximal term, lam the
    # importance regularizer.  The paper uses mu = lambda = 1 with full-size
    # backbones; on this reproduction's scaled-down models a mu of 1.0
    # overwhelms the task gradient, so the default is re-tuned (DESIGN.md).
    prox_mu: float = 0.05
    importance_lambda: float = 0.1
    # communication/computation trade-off weight in the cost model (Eq. 14)
    cost_alpha: float = 1.0
    # evaluate the personalized models every ``eval_every`` rounds
    eval_every: int = 1
    seed: int = 0
    # system-heterogeneity scenario (availability / stragglers / deadlines);
    # None runs the paper's ideal setting where every client always finishes
    scenario: Optional[ScenarioConfig] = None
    # server aggregation mode: "sync" (the paper's synchronous round loop),
    # "fedasync" (aggregate every arrival, staleness-weighted) or "fedbuff"
    # (aggregate buffered batches of ``buffer_size`` arrivals)
    aggregation: str = "sync"
    # FedAsync mixing rate: a fresh update moves the global model by
    # ``async_alpha``; an update ``s`` server versions stale by
    # ``async_alpha / (1 + s) ** staleness_exponent``
    async_alpha: float = 0.6
    staleness_exponent: float = 0.5
    # FedBuff buffer: aggregate every ``buffer_size`` arrivals; a partial
    # buffer at run end is never flushed
    buffer_size: int = 2
    # arrivals the async server consumes before dispatching the next round;
    # None picks the scheduler default (clients_per_round for fedasync,
    # buffer_size for fedbuff)
    async_arrivals_per_round: Optional[int] = None
    # wire codec for the parameter round trip (``repro.parallel.codec``):
    # "dense" is the historical raw-float64 wire format; "sparse" is a
    # lossless indexed-slice delta (bit-identical histories, fewer uplink
    # bytes); "int8"/"pq" are lossy low-precision modes with their own
    # golden fixtures
    codec: str = "dense"
    # deterministic fault injection (``repro.parallel.faults``): a chaos
    # schedule whose decisions are pure in (fault_seed, round, client,
    # attempt) — rides the checkpoint digest and result cache like every
    # other field; None runs fault-free
    faults: Optional["FaultPlan"] = None
    # supervised execution (``repro.parallel.supervision``): per-task
    # wall-clock timeout and bounded retries with exponential backoff; a
    # task that exhausts its retries degrades into a dropped client
    task_timeout: Optional[float] = None
    max_retries: int = 0
    # client-fleet materialization: lazy O(cohort) fleets (default) vs the
    # retained eager path, shard-cache bound, evaluation-sweep cap
    fleet: FleetConfig = field(default_factory=FleetConfig)
    # vectorized cohort training (``repro.federated.batched``): run a
    # round's same-architecture local updates as ONE batched tensor program
    # with the client dimension as the leading axis.  Bit-identical to the
    # per-client loop when the strategy/model pair supports it (the strategy
    # advertises via ``cohort_batchable``); unsupported pairs fall back to
    # the loop.  Off by default so existing histories stay byte-stable.
    batch_cohort: bool = False
    # sharded parameter-server aggregation (``repro.parallel.sharding``):
    # partition the parameter manifest by key across N reducer shards so
    # per-shard aggregation bandwidth scales ~1/N.  The key→shard map is a
    # pure function of the key name and shard count, and per-shard
    # reductions keep the input order, so histories stay bit-identical to
    # the serial reference at any shard count.
    reducer_shards: int = 1
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_rounds <= 0:
            raise ValueError("num_rounds must be positive")
        if self.clients_per_round <= 0:
            raise ValueError("clients_per_round must be positive")
        if self.local_iterations <= 0:
            raise ValueError("local_iterations must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.eval_every <= 0:
            raise ValueError("eval_every must be positive")
        if self.aggregation not in AGGREGATIONS:
            raise ValueError(
                f"unknown aggregation mode {self.aggregation!r}; "
                f"choose from {AGGREGATIONS}")
        if not 0.0 < self.async_alpha <= 1.0:
            raise ValueError("async_alpha must be in (0, 1]")
        if self.staleness_exponent < 0:
            raise ValueError("staleness_exponent must be non-negative")
        if self.buffer_size <= 0:
            raise ValueError("buffer_size must be positive")
        if (self.async_arrivals_per_round is not None
                and self.async_arrivals_per_round <= 0):
            raise ValueError("async_arrivals_per_round must be positive")
        # imported here to keep config importable without the parallel stack
        from ..parallel.codec import available_codecs

        if self.codec not in available_codecs():
            raise ValueError(f"unknown codec {self.codec!r}; "
                             f"choose from {available_codecs()}")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.faults is not None:
            # imported late for the same reason as the codec check above
            from ..parallel.faults import FaultPlan

            if not isinstance(self.faults, FaultPlan):
                raise TypeError("faults must be a FaultPlan")
        if not isinstance(self.fleet, FleetConfig):
            raise TypeError("fleet must be a FleetConfig")
        if self.reducer_shards <= 0:
            raise ValueError("reducer_shards must be positive")
