"""Synthetic stand-ins for the paper's benchmark datasets.

The evaluation in the paper uses MNIST, CIFAR-10, CIFAR-100, Tiny-ImageNet
and the LEAF Reddit corpus.  None of those can be downloaded in this offline
environment, so this module generates synthetic datasets that preserve the
properties the experiments rely on:

* image classification with a configurable number of classes, where classes
  are separable but noisy (class-prototype Gaussians with smooth structure),
  so accuracy responds to model capacity, sparsity and data skew the same way
  the real benchmarks do qualitatively;
* a naturally non-IID next-word-prediction corpus where every user has its
  own token distribution (per-user Markov chains), mirroring Reddit's
  "different users speak differently" property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .dataset import Dataset


@dataclass(frozen=True)
class ImageSpec:
    """Shape and difficulty knobs of a synthetic image classification task."""

    num_classes: int
    channels: int
    image_size: int
    noise_scale: float = 0.6
    prototype_scale: float = 1.0


IMAGE_SPECS: Dict[str, ImageSpec] = {
    # Small class counts / resolutions chosen so CPU-only federated runs stay
    # fast; the class-count ordering (10 < 10 < 20 < 40) and the noise levels
    # mirror the paper's MNIST < CIFAR10 < CIFAR100 < Tiny-ImageNet difficulty
    # ordering.
    "mnist": ImageSpec(num_classes=10, channels=1, image_size=16, noise_scale=1.0),
    "cifar10": ImageSpec(num_classes=10, channels=3, image_size=16, noise_scale=1.2),
    "cifar100": ImageSpec(num_classes=20, channels=3, image_size=16, noise_scale=1.2),
    "tinyimagenet": ImageSpec(num_classes=40, channels=3, image_size=16,
                              noise_scale=1.4),
}


def _smooth_prototype(rng: np.random.Generator, channels: int,
                      size: int) -> np.ndarray:
    """A spatially smooth random pattern acting as one class's prototype."""
    coarse = rng.standard_normal((channels, max(size // 4, 2), max(size // 4, 2)))
    upsampled = np.repeat(np.repeat(coarse, 4, axis=1), 4, axis=2)
    return upsampled[:, :size, :size]


def make_image_classification(spec: ImageSpec, num_examples: int, *,
                              seed: int = 0) -> Dataset:
    """Generate a class-prototype Gaussian image classification dataset."""
    if num_examples <= 0:
        raise ValueError("num_examples must be positive")
    rng = np.random.default_rng(seed)
    prototypes = np.stack([
        spec.prototype_scale * _smooth_prototype(rng, spec.channels, spec.image_size)
        for _ in range(spec.num_classes)
    ])
    labels = rng.integers(0, spec.num_classes, size=num_examples)
    noise = rng.standard_normal(
        (num_examples, spec.channels, spec.image_size, spec.image_size))
    images = prototypes[labels] + spec.noise_scale * noise
    return Dataset(images.astype(np.float64), labels.astype(np.int64))


def image_prototypes(spec: ImageSpec, *, seed: int = 0) -> np.ndarray:
    """The class prototypes shared by every client of one federation.

    A pure function of ``(spec, seed)``: the prototypes draw from a fresh
    ``default_rng(seed)`` and nothing else, so eager and lazy shard builders
    agree bit-for-bit.
    """
    rng = np.random.default_rng(seed)
    return np.stack([
        spec.prototype_scale * _smooth_prototype(rng, spec.channels, spec.image_size)
        for _ in range(spec.num_classes)
    ])


def personalized_image_shard(spec: ImageSpec, client_id: int,
                             classes_per_client: int,
                             examples_per_client: int,
                             prototypes: np.ndarray, *,
                             style_scale: float = 1.0,
                             seed: int = 0) -> Dataset:
    """One client's personalized shard, pure in ``(seed, client_id)``.

    This is the loop body of :func:`make_personalized_image_shards` factored
    out so a virtual fleet can materialize a single client without touching
    the other ``num_clients - 1``.
    """
    if examples_per_client <= 0:
        raise ValueError("examples_per_client must be positive")
    if not 1 <= classes_per_client <= spec.num_classes:
        raise ValueError(
            f"classes_per_client must be in [1, {spec.num_classes}]")
    client_rng = np.random.default_rng(seed * 99_991 + client_id + 17)
    classes = client_rng.choice(spec.num_classes, size=classes_per_client,
                                replace=False)
    style = style_scale * _smooth_prototype(client_rng, spec.channels,
                                            spec.image_size)
    labels = client_rng.choice(classes, size=examples_per_client)
    noise = client_rng.standard_normal(
        (examples_per_client, spec.channels, spec.image_size, spec.image_size))
    images = prototypes[labels] + style[None] + spec.noise_scale * noise
    return Dataset(images.astype(np.float64), labels.astype(np.int64))


def make_personalized_image_shards(spec: ImageSpec, num_clients: int,
                                   classes_per_client: int,
                                   examples_per_client: int, *,
                                   style_scale: float = 1.0,
                                   seed: int = 0) -> List[Dataset]:
    """Per-client image shards with label skew *and* client-specific style.

    Every client is assigned ``classes_per_client`` classes (pathological
    label skew) and, in addition, a private "style" offset added to all of its
    images.  The style models the user-specific appearance drift that makes
    real federated image data personal (lighting, sensor, handwriting):
    a single global model must become style-invariant, whereas a personalized
    model only has to separate its own classes under its own style.  This is
    the property that drives the personalized-vs-conventional accuracy gap in
    the paper's evaluation.
    """
    if num_clients <= 0 or examples_per_client <= 0:
        raise ValueError("num_clients and examples_per_client must be positive")
    prototypes = image_prototypes(spec, seed=seed)
    return [personalized_image_shard(spec, client, classes_per_client,
                                     examples_per_client, prototypes,
                                     style_scale=style_scale, seed=seed)
            for client in range(num_clients)]


def synthetic_mnist(num_examples: int = 2000, *, seed: int = 0) -> Dataset:
    """Synthetic MNIST stand-in: 10 classes, single channel."""
    return make_image_classification(IMAGE_SPECS["mnist"], num_examples, seed=seed)


def synthetic_cifar10(num_examples: int = 2000, *, seed: int = 0) -> Dataset:
    """Synthetic CIFAR-10 stand-in: 10 classes, three channels, noisier."""
    return make_image_classification(IMAGE_SPECS["cifar10"], num_examples, seed=seed)


def synthetic_cifar100(num_examples: int = 2000, *, seed: int = 0) -> Dataset:
    """Synthetic CIFAR-100 stand-in (20 super-classes)."""
    return make_image_classification(IMAGE_SPECS["cifar100"], num_examples, seed=seed)


def synthetic_tinyimagenet(num_examples: int = 2000, *, seed: int = 0) -> Dataset:
    """Synthetic Tiny-ImageNet stand-in (40 classes, highest noise)."""
    return make_image_classification(IMAGE_SPECS["tinyimagenet"], num_examples,
                                     seed=seed)


# --------------------------------------------------------------------------
# Reddit-style next-word prediction
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class TextSpec:
    """Knobs of the synthetic per-user language-modelling corpus."""

    vocab_size: int = 60
    seq_len: int = 8
    base_concentration: float = 0.3
    user_concentration: float = 0.15


def _user_transition_matrix(rng: np.random.Generator, base: np.ndarray,
                            spec: TextSpec) -> np.ndarray:
    """Mix the shared base Markov chain with a user-specific perturbation."""
    user = rng.dirichlet(np.full(spec.vocab_size, spec.user_concentration),
                         size=spec.vocab_size)
    mixed = 0.5 * base + 0.5 * user
    return mixed / mixed.sum(axis=1, keepdims=True)


def reddit_base_chain(spec: TextSpec, *, seed: int = 0) -> np.ndarray:
    """The shared base Markov chain of one federation (pure in the seed)."""
    rng = np.random.default_rng(seed)
    return rng.dirichlet(np.full(spec.vocab_size, spec.base_concentration),
                         size=spec.vocab_size)


def reddit_user_shard(user: int, base: np.ndarray, spec: TextSpec,
                      examples_per_user: int, *, seed: int = 0) -> Dataset:
    """One user's next-word shard, pure in ``(seed, user)`` given ``base``."""
    user_rng = np.random.default_rng(seed * 100_003 + user + 1)
    transition = _user_transition_matrix(user_rng, base, spec)
    count = int(np.clip(
        round(examples_per_user * float(np.exp(user_rng.normal(0.0, 0.4)))),
        spec.seq_len + 2, 4 * examples_per_user))
    tokens = np.empty(count + spec.seq_len + 1, dtype=np.int64)
    tokens[0] = user_rng.integers(0, spec.vocab_size)
    for t in range(1, len(tokens)):
        tokens[t] = user_rng.choice(spec.vocab_size, p=transition[tokens[t - 1]])
    windows = np.stack([tokens[i:i + spec.seq_len] for i in range(count)])
    targets = tokens[spec.seq_len:spec.seq_len + count]
    return Dataset(windows, targets)


def synthetic_reddit_users(num_users: int, examples_per_user: int = 120, *,
                           spec: TextSpec | None = None,
                           seed: int = 0) -> Tuple[List[Dataset], TextSpec]:
    """Generate one next-word-prediction dataset per simulated user.

    Every user owns a distinct Markov chain over the shared vocabulary, so the
    federation is inherently non-IID, and users receive different sample
    counts (drawn log-uniformly around ``examples_per_user``) to mirror the
    LEAF Reddit statistics.
    """
    if num_users <= 0:
        raise ValueError("num_users must be positive")
    spec = spec or TextSpec()
    base = reddit_base_chain(spec, seed=seed)
    datasets = [reddit_user_shard(user, base, spec, examples_per_user,
                                  seed=seed)
                for user in range(num_users)]
    return datasets, spec


def synthetic_reddit(num_examples: int = 2000, *, num_users: int = 20,
                     seed: int = 0) -> Dataset:
    """A pooled (non-federated) view of the synthetic Reddit corpus."""
    # per-user sample counts are randomized, so over-generate and trim
    per_user = max(2 * num_examples // num_users, 20)
    datasets, _ = synthetic_reddit_users(num_users, per_user, seed=seed)
    x = np.concatenate([d.x for d in datasets])
    y = np.concatenate([d.y for d in datasets])
    while len(y) < num_examples:
        x = np.concatenate([x, x])
        y = np.concatenate([y, y])
    return Dataset(x[:num_examples], y[:num_examples])


DATASET_BUILDERS = {
    "mnist": synthetic_mnist,
    "cifar10": synthetic_cifar10,
    "cifar100": synthetic_cifar100,
    "tinyimagenet": synthetic_tinyimagenet,
    "reddit": synthetic_reddit,
}
