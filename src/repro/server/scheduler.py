"""Schedulers: the *shape* of federated training on the server core.

A :class:`Scheduler` turns the services of a
:class:`~repro.server.core.ServerCore` into a complete training run:

* :class:`SyncScheduler` — the paper's synchronous loop, extracted verbatim
  from the old monolithic ``FederatedTrainer._run``: select, fan out, wait
  for the whole cohort, aggregate.  Its histories are bit-identical to the
  pre-refactor trainer (the golden-history fixtures enforce this).
* :class:`AsyncScheduler` — FedAsync-style (Xie et al., asynchronous
  federated optimization): the server consumes client completions in sim
  order and folds **every arrival** into the global model immediately, with
  the staleness-decayed weight ``alpha / (1 + staleness)^a``.
* :class:`BufferedScheduler` — FedBuff-style (Nguyen et al., buffered
  asynchronous aggregation): arrivals accumulate in a buffer that is
  aggregated every ``buffer_size`` arrivals; a partial buffer at run end is
  never flushed.

Fleet contract
    Schedulers operate on client *ids* against the core's fleet view: the
    only ``Client`` objects that come into existence are the facades the
    core materializes for the dispatched cohort (and the evaluation sweep),
    so a scheduler never needs — and never causes — O(num_clients) work.
    Per-client bookkeeping here (``in_flight``, FedBuff buffers) must stay
    sparse: sets of ids for clients that actually have work outstanding.

Determinism contract
    The asynchronous schedulers consume completions in the order of the
    pure sort key ``(finish_time, client_id)`` — never real arrival time.
    Finish times come from the scenario/cost-model latency of the dispatch
    round, so the consumption order (and every aggregation) is a pure
    function of ``(seed, round, client)`` and histories stay bit-identical
    across the serial/thread/process backends.  The pool still runs a
    dispatch cohort's clients concurrently in *real* time (``map_unordered``
    fan-out, no result-order barrier); only the simulated order is pinned.

Async round shape
    Each simulated "round" dispatches a fresh cohort (same selection,
    availability and over-selection machinery as sync — clients still busy
    with an earlier dispatch are skipped) and then consumes
    ``async_arrivals_per_round`` completions from the global in-flight pool
    before the next dispatch.  Because the earliest completions win,
    stragglers no longer gate the round cadence: their updates land rounds
    later with a staleness discount, while the sim clock advances at the
    pace of the fast clients.  In-flight work left at run end is discarded
    (its compute/upload cost was already billed at dispatch), matching the
    synchronous engine's treatment of dropped stragglers.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Type

import numpy as np

from contextlib import contextmanager

from ..checkpoint import (CheckpointManager, RunCheckpoint,
                          TrainingInterrupted, restore_run)
from ..federated.config import AGGREGATIONS, FederatedConfig
from ..systems.cost import CostBreakdown, LocalCostModel
from ..systems.metrics import RoundRecord, TrainingHistory
from .clock import ClientEvent, EventQueue, SimClock
from .core import ServerCore
from .policy import AggregationPolicy, Arrival


@contextmanager
def _emergency_guard(checkpointer: Optional[CheckpointManager]):
    """Persist the last round boundary before an unrecoverable crash.

    Any exception escaping the round loop (exhausted supervision budget
    with no degradation path, a broken pool on a backend that cannot
    replenish, a genuine bug) first flushes the most recent round-boundary
    capsule to disk — if one exists and is not already saved — so the run
    can be resumed with ``--resume`` instead of restarting from round 0.
    :class:`TrainingInterrupted` is the checkpointer's own control-flow
    signal (``stop_after_round``); it already saved, so it passes through
    untouched.  The exception is re-raised either way.
    """
    try:
        yield
    except TrainingInterrupted:
        raise
    except Exception:
        if checkpointer is not None:
            checkpointer.emergency()
        raise


class Scheduler:
    """Protocol: drive a :class:`ServerCore` through one training run.

    Checkpoint contract
        ``run`` accepts an optional :class:`~repro.checkpoint
        .CheckpointManager` (round-boundary snapshots) and an optional
        :class:`~repro.checkpoint.RunCheckpoint` to resume from.  A
        scheduler exposes its *own* mutable run state — beyond what the
        core/strategy/history carry — through ``state_dict`` /
        ``load_state_dict``; restoration happens after ``setup``/``reset``
        and must make the continued run bit-identical to one that never
        stopped (the golden resume suite enforces this per scheduler).
    """

    name = "base"

    def reset(self) -> None:
        """Clear per-run state; called at the start of every :meth:`run`."""

    def state_dict(self) -> Dict[str, Any]:
        """Scheduler-owned mutable state at a round boundary."""
        return {}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Inverse of :meth:`state_dict`; called on a freshly reset instance."""

    def run(self, core: ServerCore, *,
            checkpointer: Optional[CheckpointManager] = None,
            resume: Optional[RunCheckpoint] = None) -> TrainingHistory:
        raise NotImplementedError


class SyncScheduler(Scheduler):
    """The paper's synchronous round loop (select -> fan out -> wait -> merge).

    This is the old ``FederatedTrainer._run`` body verbatim, expressed in
    terms of the core's services; any numeric drift from the monolithic loop
    is a bug (the golden-history suite pins it bit-for-bit).
    """

    name = "sync"

    def run(self, core: ServerCore, *,
            checkpointer: Optional[CheckpointManager] = None,
            resume: Optional[RunCheckpoint] = None) -> TrainingHistory:
        with _emergency_guard(checkpointer):
            return self._run(core, checkpointer=checkpointer, resume=resume)

    def _run(self, core: ServerCore, *,
             checkpointer: Optional[CheckpointManager],
             resume: Optional[RunCheckpoint]) -> TrainingHistory:
        config = core.config
        history = TrainingHistory(method=core.strategy.name,
                                  dataset=core.dataset.name)
        core.strategy.setup(core.context)
        self.reset()
        start_round = 0
        if resume is not None:
            # after setup: restoration overwrites the fresh-run state that
            # setup installed (global params, state store, context rng)
            start_round = restore_run(core, self, resume, history)
        # the cumulative counters are recoverable from the history itself,
        # so they are round-boundary state that never needs separate capture
        last = history.records[-1] if history.records else None
        cumulative_flops = last.cumulative_flops if last else 0.0
        cumulative_time = last.cumulative_time_seconds if last else 0.0
        cumulative_sim_time = last.cumulative_sim_time if last else 0.0
        for round_index in range(start_round, config.num_rounds):
            selected = core.select_clients(round_index)
            active, unavailable = core.split_available(round_index, selected)
            updates = core.run_local_updates(round_index, active)
            # supervision accounting of the fan-out (one-shot, like the wire
            # report): fault_* counters for extras, exhausted-retry clients
            # for the dropped list — they never reach aggregate/post_round
            fault_extras, failed = core.take_fault_report()

            costs = core.client_costs(round_index, updates)
            round_flops = float(sum(u.flops for u in updates))
            upload = float(sum(u.upload_bytes for u in updates))
            download = float(sum(u.download_bytes for u in updates))
            round_time = LocalCostModel.round_time(costs.values())
            outcome = core.resolve_round(round_index, costs)
            kept = set(outcome.participants)
            kept_updates = [u for u in updates if u.client_id in kept]
            kept_costs = {u.client_id: costs[u.client_id]
                          for u in kept_updates}
            with core.reduce_context():
                core.strategy.aggregate(round_index, kept_updates)
            core.strategy.post_round(round_index, kept_updates, kept_costs)

            cumulative_flops += round_flops
            cumulative_time += round_time
            cumulative_sim_time += outcome.sim_time
            train_accuracy = (float(np.mean([u.train_accuracy
                                             for u in kept_updates]))
                              if kept_updates else 0.0)
            should_eval = ((round_index + 1) % config.eval_every == 0
                           or round_index == config.num_rounds - 1)
            # when evaluation is skipped this round, the last fresh value is
            # carried forward and flagged as such via ``evaluated=False``
            test_accuracy = (core.evaluate_personalized()
                             if should_eval else
                             (history.records[-1].test_accuracy
                              if history.records else 0.0))
            history.append(RoundRecord(
                round_index=round_index, selected_clients=selected,
                train_accuracy=train_accuracy, test_accuracy=test_accuracy,
                round_flops=round_flops, round_time_seconds=round_time,
                upload_bytes=upload, download_bytes=download,
                cumulative_flops=cumulative_flops,
                cumulative_time_seconds=cumulative_time,
                sparse_ratios={u.client_id: u.sparse_ratio for u in updates},
                # wire byte accounting of the fan-out, present only under a
                # non-dense codec; fault_* counters only under supervision
                # (so default histories stay byte-stable either way)
                extras={**(core.take_wire_report() or {}), **fault_extras},
                evaluated=should_eval,
                sim_time=outcome.sim_time,
                cumulative_sim_time=cumulative_sim_time,
                dropped=sorted(unavailable) + failed
                        + list(outcome.stragglers),
                straggler_count=len(outcome.stragglers)))
            if checkpointer is not None:
                checkpointer.after_round(core, self, history, round_index)
        return history


class _EventDrivenScheduler(Scheduler):
    """Shared machinery of the asynchronous (event-consuming) schedulers.

    Subclasses decide what happens per consumed completion
    (:meth:`consume`) and how many completions a round waits for
    (:meth:`arrivals_per_round`); the base class owns the dispatch loop,
    the event queue, the sim clock and the per-round record bookkeeping.
    """

    def __init__(self) -> None:
        self._version = 0
        self._queue = EventQueue()
        self._clock = SimClock()
        self._in_flight: set = set()

    # ------------------------------------------------------------- subclass
    def reset(self) -> None:
        """Clear per-run state; called at the start of every :meth:`run`."""
        self._version = 0
        self._queue = EventQueue()
        self._clock = SimClock()
        self._in_flight = set()

    def state_dict(self) -> Dict[str, Any]:
        """Version counter, sim clock, in-flight pool and queued events.

        The events ride in the queue's deterministic ``(finish_time,
        client_id)`` snapshot order, so two checkpoints of the same run
        state are byte-identical regardless of internal heap layout.
        """
        return {
            "version": self._version,
            "clock_now": self._clock.now,
            "in_flight": sorted(self._in_flight),
            "events": self._queue.snapshot(),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self._version = int(state["version"])
        self._clock = SimClock(state["clock_now"])
        self._in_flight = set(state["in_flight"])
        self._queue = EventQueue()
        for event in state["events"]:
            self._queue.push(event)

    def arrivals_per_round(self, config: FederatedConfig) -> int:
        raise NotImplementedError

    def consume(self, core: ServerCore, policy: AggregationPolicy,
                round_index: int, event: ClientEvent) -> List[Arrival]:
        """Fold one completion in; returns the arrivals aggregated *now*."""
        raise NotImplementedError

    def pending_buffer(self) -> int:
        """Arrivals held back for a future aggregation (FedBuff buffer)."""
        return 0

    def pending_clients(self) -> set:
        """Clients whose consumed arrival has not been aggregated yet.

        They count as busy alongside the in-flight set: at most one
        un-incorporated update per client may exist at any time, so a flush
        batch can never carry the same client twice and the per-round
        ``{client_id: cost}`` bookkeeping handed to ``post_round`` stays
        one-to-one with the aggregated updates.
        """
        return set()

    # ------------------------------------------------------------------ run
    def run(self, core: ServerCore, *,
            checkpointer: Optional[CheckpointManager] = None,
            resume: Optional[RunCheckpoint] = None) -> TrainingHistory:
        with _emergency_guard(checkpointer):
            return self._run(core, checkpointer=checkpointer, resume=resume)

    def _run(self, core: ServerCore, *,
             checkpointer: Optional[CheckpointManager],
             resume: Optional[RunCheckpoint]) -> TrainingHistory:
        config = core.config
        policy = AggregationPolicy(alpha=config.async_alpha,
                                   exponent=config.staleness_exponent)
        history = TrainingHistory(method=core.strategy.name,
                                  dataset=core.dataset.name)
        core.strategy.setup(core.context)
        self.reset()
        start_round = 0
        if resume is not None:
            # restores the version counter, sim clock, in-flight pool and
            # queued events (and the FedBuff buffer) alongside the core
            start_round = restore_run(core, self, resume, history)
        queue = self._queue
        clock = self._clock
        in_flight = self._in_flight
        last = history.records[-1] if history.records else None
        cumulative_flops = last.cumulative_flops if last else 0.0
        cumulative_time = last.cumulative_time_seconds if last else 0.0
        target = self.arrivals_per_round(config)
        for round_index in range(start_round, config.num_rounds):
            round_start = clock.now
            selected = core.select_clients(round_index)
            available, unavailable = core.split_available(round_index,
                                                          selected)
            # a client still computing an earlier dispatch — or whose update
            # is still waiting in the aggregation buffer — cannot take a new
            # one; it is reported alongside the unavailable clients
            blocked = in_flight | self.pending_clients()
            busy = sorted(cid for cid in available if cid in blocked)
            ready = [cid for cid in available if cid not in blocked]
            updates = core.run_local_updates(round_index, ready,
                                             ordered=False)
            # supervision accounting (one-shot): exhausted-retry clients are
            # dropped — never dispatched into the event queue
            fault_extras, failed = core.take_fault_report()
            # completion order is real-time nondeterministic; re-impose the
            # pure client-id order before any float accumulation so sums and
            # cost iteration stay bit-identical across backends
            updates.sort(key=lambda update: update.client_id)
            costs = core.client_costs(round_index, updates)
            round_flops = float(sum(u.flops for u in updates))
            upload = float(sum(u.upload_bytes for u in updates))
            download = float(sum(u.download_bytes for u in updates))
            # the synchronous-equivalent Eq. 18 round time of the dispatched
            # cohort keeps ``cumulative_time_seconds`` comparable with sync
            round_time = LocalCostModel.round_time(costs.values())
            for update in updates:
                client_id = update.client_id
                latency = core.latency(round_index, client_id,
                                       costs[client_id].total_seconds)
                queue.push(ClientEvent(
                    finish_time=clock.now + latency, client_id=client_id,
                    round_index=round_index, dispatch_version=self._version,
                    update=update, cost=costs[client_id]))
                in_flight.add(client_id)

            aggregated: List[Arrival] = []
            aggregated_costs: Dict[int, CostBreakdown] = {}
            processed = 0
            while processed < target and queue:
                event = queue.pop()
                clock.advance_to(event.finish_time)
                in_flight.discard(event.client_id)
                processed += 1
                for arrival in self.consume(core, policy, round_index, event):
                    aggregated.append(arrival)
                    aggregated_costs[arrival.update.client_id] = arrival.cost

            kept_updates = [a.update for a in aggregated]
            core.strategy.post_round(round_index, kept_updates,
                                     aggregated_costs)

            cumulative_flops += round_flops
            cumulative_time += round_time
            staleness_mean = (float(np.mean([a.staleness for a in aggregated]))
                              if aggregated else 0.0)
            train_accuracy = (float(np.mean([u.train_accuracy
                                             for u in kept_updates]))
                              if kept_updates else 0.0)
            should_eval = ((round_index + 1) % config.eval_every == 0
                           or round_index == config.num_rounds - 1)
            test_accuracy = (core.evaluate_personalized()
                             if should_eval else
                             (history.records[-1].test_accuracy
                              if history.records else 0.0))
            history.append(RoundRecord(
                round_index=round_index, selected_clients=selected,
                train_accuracy=train_accuracy, test_accuracy=test_accuracy,
                round_flops=round_flops, round_time_seconds=round_time,
                upload_bytes=upload, download_bytes=download,
                cumulative_flops=cumulative_flops,
                cumulative_time_seconds=cumulative_time,
                sparse_ratios={u.client_id: u.sparse_ratio for u in updates},
                extras={**(core.take_wire_report() or {}), **fault_extras},
                evaluated=should_eval,
                sim_time=clock.now - round_start,
                cumulative_sim_time=clock.now,
                dropped=sorted(unavailable) + busy + failed,
                staleness_mean=staleness_mean,
                buffer_size=self.pending_buffer()))
            if checkpointer is not None:
                checkpointer.after_round(core, self, history, round_index)
        # in-flight work (and any partial buffer) at run end is discarded:
        # the server stopped training, exactly like a synchronous run drops
        # stragglers — their compute/upload was already billed at dispatch
        return history


class AsyncScheduler(_EventDrivenScheduler):
    """FedAsync: every arrival immediately moves the global model."""

    name = "fedasync"

    def arrivals_per_round(self, config: FederatedConfig) -> int:
        if config.async_arrivals_per_round is not None:
            return config.async_arrivals_per_round
        return max(1, config.clients_per_round)

    def consume(self, core, policy, round_index, event):
        arrival = Arrival(update=event.update,
                          staleness=self._version - event.dispatch_version,
                          cost=event.cost)
        with core.reduce_context():
            policy.merge(core.strategy, round_index, [arrival])
        self._version += 1
        return [arrival]


class BufferedScheduler(_EventDrivenScheduler):
    """FedBuff: aggregate every ``buffer_size`` arrivals as one batch.

    Buffered clients stay blocked until their update is flushed (one
    un-incorporated update per client), so ``buffer_size`` must not exceed
    the number of clients — a larger buffer can never fill and the global
    model would never move.
    """

    name = "fedbuff"

    def __init__(self) -> None:
        super().__init__()
        self._buffer: List[ClientEvent] = []

    def reset(self) -> None:
        # a reused scheduler instance must not leak the previous run's
        # never-flushed tail into the next run's first flush
        super().reset()
        self._buffer = []

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        state["buffer"] = list(self._buffer)
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        super().load_state_dict(state)
        self._buffer = list(state["buffer"])

    def arrivals_per_round(self, config: FederatedConfig) -> int:
        if config.async_arrivals_per_round is not None:
            return config.async_arrivals_per_round
        return max(config.buffer_size,
                   math.ceil(config.clients_per_round / 2))

    def pending_buffer(self) -> int:
        return len(self._buffer)

    def pending_clients(self) -> set:
        return {event.client_id for event in self._buffer}

    def consume(self, core, policy, round_index, event):
        self._buffer.append(event)
        if len(self._buffer) < core.config.buffer_size:
            return []
        # staleness is measured at flush time, against the current version
        batch = [Arrival(update=e.update,
                         staleness=self._version - e.dispatch_version,
                         cost=e.cost)
                 for e in self._buffer]
        with core.reduce_context():
            policy.merge(core.strategy, round_index, batch)
        self._version += 1
        self._buffer = []
        return batch


SCHEDULERS: Dict[str, Type[Scheduler]] = {
    "sync": SyncScheduler,
    "fedasync": AsyncScheduler,
    "fedbuff": BufferedScheduler,
}

assert tuple(sorted(SCHEDULERS)) == tuple(sorted(AGGREGATIONS))


def available_aggregations() -> List[str]:
    """Names accepted by ``FederatedConfig.aggregation`` / the CLI."""
    return list(AGGREGATIONS)


def build_scheduler(config: FederatedConfig,
                    aggregation: Optional[str] = None) -> Scheduler:
    """Instantiate the scheduler for a config's aggregation mode."""
    key = (aggregation or config.aggregation).lower()
    if key not in SCHEDULERS:
        raise ValueError(f"unknown aggregation mode {key!r}; "
                         f"choose from {available_aggregations()}")
    return SCHEDULERS[key]()
