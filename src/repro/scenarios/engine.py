"""Deterministic per-round resolution of a scenario.

Every decision the engine makes — is a client reachable, does it straggle,
who survives the participation policy — is a pure function of
``(seed, round_index, client_id)`` plus the latencies handed in by the cost
model.  Nothing reads a real clock or shares mutable random state, so the
engine composes with the executor contract from ``repro.parallel``: running
client updates on threads or processes cannot change a history bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Mapping, Sequence, Tuple

import numpy as np

from .config import ScenarioConfig

#: salts separating the engine's independent random decision streams
_AVAILABILITY_SALT = 101
_STRAGGLER_SALT = 211


@dataclass(frozen=True)
class RoundOutcome:
    """What the participation policy decided for one round.

    ``participants`` contributed their update to aggregation;
    ``stragglers`` ran (burning compute and uplink) but were dropped by the
    policy; ``sim_time`` is the simulated wall-clock the server spent on the
    round; ``deadline`` is the cutoff that was applied, if any.
    """

    participants: Tuple[int, ...]
    stragglers: Tuple[int, ...]
    sim_time: float
    deadline: float | None = None


class ScenarioEngine:
    """Applies a :class:`ScenarioConfig` to the federated round loop."""

    def __init__(self, scenario: ScenarioConfig, *, seed: int = 0) -> None:
        self.scenario = scenario
        self.seed = seed
        # trace rounds are stored as tuples; membership tests against them
        # are O(num_clients), which a fleet-scale cohort pays per invited
        # client — memoize each round's set once instead
        self._trace_sets: dict = {}

    # -------------------------------------------------------------- selection
    def selection_target(self, clients_per_round: int) -> int:
        """How many clients the server should invite (over-selection)."""
        return int(math.ceil(clients_per_round * self.scenario.over_selection))

    # ----------------------------------------------------------- availability
    def is_available(self, round_index: int, client_id: int) -> bool:
        """Whether a client is reachable this round.

        A trace, when present, is authoritative; otherwise availability is a
        Bernoulli draw from a generator derived from
        ``(seed, round_index, client_id)`` so that repeated simulations (and
        all executor backends) agree.
        """
        trace = self.scenario.availability_trace
        if trace is not None:
            available = trace.get(round_index)
            if available is None:
                return True
            cached = self._trace_sets.get(round_index)
            if cached is None:
                cached = self._trace_sets[round_index] = frozenset(available)
            return client_id in cached
        if self.scenario.availability >= 1.0:
            return True
        rng = self._rng(round_index, client_id, _AVAILABILITY_SALT)
        return bool(rng.random() < self.scenario.availability)

    def split_available(self, round_index: int, client_ids: Sequence[int]
                        ) -> Tuple[List[int], List[int]]:
        """Partition invited clients into (reachable, unreachable)."""
        available: List[int] = []
        unavailable: List[int] = []
        for client_id in client_ids:
            bucket = (available if self.is_available(round_index, client_id)
                      else unavailable)
            bucket.append(client_id)
        return available, unavailable

    # --------------------------------------------------------------- latency
    def latency(self, round_index: int, client_id: int,
                base_seconds: float) -> float:
        """The client's round latency, with a possible straggler spike.

        ``base_seconds`` is the cost model's ``T_k`` (compute + transfer);
        with probability ``straggler_prob`` the client is additionally slowed
        by ``straggler_slowdown`` — a background-load spike on top of any
        fluctuation the device profile itself models.
        """
        if base_seconds < 0:
            raise ValueError("base_seconds must be non-negative")
        total = float(base_seconds)
        if self.scenario.straggler_prob > 0.0:
            rng = self._rng(round_index, client_id, _STRAGGLER_SALT)
            if rng.random() < self.scenario.straggler_prob:
                total *= self.scenario.straggler_slowdown
        return total

    # ---------------------------------------------------------------- policy
    def resolve(self, round_index: int,
                latencies: Mapping[int, float]) -> RoundOutcome:
        """Apply the participation policy to this round's latencies.

        An empty round (every invited client unavailable) is billed the
        absolute deadline when one is configured — the server idled until
        the cutoff — and zero seconds otherwise: relative deadlines and
        fastest-k have no latency reference to derive a waiting time from,
        so their empty rounds are deliberately free.  Keep that bias in
        mind when comparing ``sim_time`` across deadline variants under
        heavy unavailability.
        """
        scenario = self.scenario
        if not latencies:
            sim_time = (scenario.deadline_seconds
                        if scenario.policy == "deadline"
                        and scenario.deadline_seconds is not None else 0.0)
            return RoundOutcome((), (), float(sim_time))
        # deterministic ordering: by latency, ties broken by client id
        ordered = sorted(latencies.items(), key=lambda item: (item[1], item[0]))

        if scenario.policy == "wait-all":
            kept = [client_id for client_id, _ in ordered]
            return RoundOutcome(tuple(sorted(kept)), (),
                                max(latencies.values()))

        if scenario.policy == "fastest-k":
            count = min(scenario.fastest_k, len(ordered))
            count = max(count, min(scenario.min_participants, len(ordered)))
            kept = ordered[:count]
            dropped = ordered[count:]
            return RoundOutcome(
                tuple(sorted(client_id for client_id, _ in kept)),
                tuple(sorted(client_id for client_id, _ in dropped)),
                kept[-1][1] if kept else 0.0)

        # deadline policy
        fastest = ordered[0][1]
        cutoff = (scenario.deadline_seconds
                  if scenario.deadline_seconds is not None
                  else scenario.deadline_factor * fastest)
        kept = [(client_id, lat) for client_id, lat in ordered if lat <= cutoff]
        quorum = min(scenario.min_participants, len(ordered))
        if len(kept) < quorum:
            # the server waits past the deadline for the fastest quorum
            kept = ordered[:quorum]
        dropped = ordered[len(kept):]
        slowest_kept = kept[-1][1] if kept else 0.0
        sim_time = max(slowest_kept, cutoff) if dropped else slowest_kept
        return RoundOutcome(
            tuple(sorted(client_id for client_id, _ in kept)),
            tuple(sorted(client_id for client_id, _ in dropped)),
            float(sim_time), deadline=float(cutoff))

    # --------------------------------------------------------------- helpers
    def _rng(self, round_index: int, client_id: int,
             salt: int) -> np.random.Generator:
        """A fresh generator keyed by (seed, round, client, decision salt)."""
        return np.random.default_rng(
            (self.seed, round_index, client_id, salt))
