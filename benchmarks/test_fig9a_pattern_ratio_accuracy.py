"""Figure 9a: accuracy versus sparse ratio for the different pattern strategies."""

from __future__ import annotations

import pytest

from repro.experiments import pattern_ratio_sweep

from conftest import bench_overrides, print_rows

RATIOS = (0.2, 0.4, 0.6, 0.8)
PATTERNS = ("learnable", "random", "ordered", "magnitude")


@pytest.mark.benchmark(group="figure9a")
def test_fig9a_pattern_ratio_accuracy(benchmark):
    overrides = bench_overrides()

    def run():
        return pattern_ratio_sweep(dataset="mnist", ratios=RATIOS,
                                   patterns=PATTERNS, overrides=overrides)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_rows("Figure 9a: accuracy vs sparse ratio per pattern", rows)
    assert len(rows) == len(RATIOS) * len(PATTERNS)
    assert all(0.0 <= row["accuracy"] <= 1.0 for row in rows)

    def flops_of(pattern, ratio):
        return next(r["total_flops"] for r in rows
                    if r["pattern"] == pattern and r["sparse_ratio"] == ratio)

    # larger sparse ratios cost strictly more computation for every pattern;
    # the accuracy ordering across patterns is discussed in EXPERIMENTS.md
    # (it is too noisy to assert at CI scale).
    for pattern in PATTERNS:
        assert flops_of(pattern, 0.8) > flops_of(pattern, 0.2)
