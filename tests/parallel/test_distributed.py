"""Socket-backend contracts: golden parity, fault recovery, both shapes.

The distributed executor's headline promise is that moving execution onto
real TCP-connected worker processes — at any reducer shard count — does
not change a single bit of any training history.  That is asserted here
against the committed golden fixtures directly: every pinned spec is
re-run over the socket backend with the shard count rotating through
1/2/4, and compared bit-for-bit with zero regeneration.

Failure semantics are chaos-tested for real: an injected ``crashy`` plan
(``os._exit`` inside a worker) and an external SIGKILL mid-round must
both recover through ``replenish()`` + bounded retries with the same
deterministic ``fault_*`` counters the serial backend charges.
"""

from __future__ import annotations

import importlib.util
import json
import os
import pickle
import signal
import socket as socket_module
import struct
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import preset_for, run_method, scaled
from repro.parallel import (BrokenSocketPool, RemoteTaskError, SocketExecutor,
                            resolve_executor)
from repro.parallel.framing import (NONCE_BYTES, FrameError, FrameKind,
                                    read_frame, send_frame)

_SPEC = importlib.util.spec_from_file_location(
    "golden_fixtures",
    Path(__file__).resolve().parents[1] / "fixtures" / "regenerate_golden.py")
golden = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(golden)

SPECS = golden.golden_specs()

#: the shard counts the golden parity sweep rotates through — every spec
#: runs at one of them, and together they cover the full fixture set at
#: each count without tripling the suite's runtime
SHARD_ROTATION = (1, 2, 4)


#: flipped if an unauthenticated payload ever reaches pickle.loads in the
#: executor process — see _PickleCanary
_CANARY_TRIPS: list = []


class _PickleCanary:
    """Pickles to a call that records the unpickle — an RCE tripwire."""

    def __reduce__(self):
        return (_CANARY_TRIPS.append, ("unauthenticated bytes unpickled",))


# task functions live at module level so the socket workers can import them
def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("three is right out")
    return x


def _echo_array(array):
    return array * 2.0


def _exit_hard(_):
    os._exit(137)


@pytest.fixture(scope="module")
def executor():
    with SocketExecutor(workers=2) as shared:
        shared.warm_up()
        yield shared


def _strip_faults(history_dict):
    for record in history_dict.get("records", []):
        extras = record.get("extras") or {}
        record["extras"] = {key: value for key, value in extras.items()
                            if not key.startswith("fault_")}
    return history_dict


# ----------------------------------------------------------------- basics
class TestSocketExecutorBasics:
    def test_map_ordered(self, executor):
        assert executor.map_ordered(_square, range(8)) == \
            [x * x for x in range(8)]

    def test_map_unordered_covers_all_indices(self, executor):
        results = executor.map_unordered(_square, range(8))
        assert sorted(results) == [(i, i * i) for i in range(8)]

    def test_task_exception_propagates(self, executor):
        with pytest.raises(ValueError, match="three"):
            executor.map_ordered(_fail_on_three, range(5))
        # the worker survives a task error — the pool is still usable
        assert executor.map_ordered(_square, [9]) == [81]

    def test_large_array_round_trip_bitwise(self, executor):
        array = np.random.default_rng(0).standard_normal(1 << 16)
        [result] = executor.map_ordered(_echo_array, [array])
        assert result.tobytes() == (array * 2.0).tobytes()

    def test_unpicklable_task_fails_its_future_only(self, executor):
        with pytest.raises(Exception):
            executor.map_ordered(lambda x: x, [1])  # lambdas cannot pickle
        assert executor.map_ordered(_square, [5]) == [25]

    def test_oversized_task_fails_its_future_only(self, executor,
                                                  monkeypatch):
        """A task too big to frame is the caller's error, not worker loss.

        The real ceiling is 2 GiB — impractical to allocate here — so the
        send path is narrowed to a 1 KiB limit; the FrameError it raises
        is exactly the one encode_frame produces pre-wire.
        """
        from repro.parallel import distributed as dist_mod
        real_send = dist_mod.send_frame

        def limited_send(sock, kind, payload):
            if kind == FrameKind.TASK and len(payload) > 1024:
                raise FrameError(
                    f"frame payload of {len(payload)} bytes exceeds the "
                    f"1024-byte limit")
            real_send(sock, kind, payload)

        monkeypatch.setattr(dist_mod, "send_frame", limited_send)
        with pytest.raises(FrameError, match="exceeds"):
            executor.map_ordered(_echo_array, [np.zeros(4096)])
        # the worker was never marked dead — small tasks still flow
        assert executor.map_ordered(_square, [7]) == [49]

    def test_transport_bytes_are_counted(self, executor):
        before = executor.bytes_sent, executor.bytes_received
        executor.map_ordered(_square, range(4))
        assert executor.bytes_sent > before[0]
        assert executor.bytes_received > before[1]

    def test_backend_capabilities(self, executor):
        assert executor.backend == "socket"
        assert executor.supports_broadcast
        assert executor.supports_real_faults
        assert executor.can_replenish

    def test_closed_executor_refuses_reuse(self):
        ex = SocketExecutor(workers=1)
        ex.close()
        with pytest.raises(RuntimeError, match="closed"):
            ex.map_ordered(_square, [1])

    def test_replenish_restores_service(self):
        with SocketExecutor(workers=2) as ex:
            ex.warm_up()
            first_pids = {c.remote_pid for c in ex._connections}
            ex.replenish()
            assert ex.map_ordered(_square, range(4)) == [0, 1, 4, 9]
            ex.warm_up()
            assert {c.remote_pid for c in ex._connections} \
                .isdisjoint(first_pids)

    def test_resolve_executor_builds_socket_backend(self):
        with resolve_executor("socket", 1) as ex:
            assert isinstance(ex, SocketExecutor)

    def test_hosts_mode_requires_token(self):
        with pytest.raises(ValueError, match="token"):
            SocketExecutor(hosts=["127.0.0.1:1"])

    def test_hosts_flags_rejected_for_other_backends(self):
        with pytest.raises(ValueError, match="socket"):
            resolve_executor("thread", 2, hosts=["127.0.0.1:1"],
                             worker_token="t")


# ----------------------------------------------------------- daemon shape
class TestWorkerDaemon:
    def test_connect_to_a_listening_daemon(self):
        """The multi-host shape: a pre-started --listen worker daemon."""
        with socket_module.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [entry for entry in sys.path if entry])
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro.parallel.worker",
             "--listen", f"127.0.0.1:{port}", "--token", "secret"],
            env=env, stdin=subprocess.DEVNULL, stdout=subprocess.DEVNULL)
        try:
            with SocketExecutor(hosts=[f"127.0.0.1:{port}"],
                                token="secret") as ex:
                ex.warm_up()
                assert ex.workers == 1
                assert ex.map_ordered(_square, range(5)) == \
                    [0, 1, 4, 9, 16]
        finally:
            daemon.terminate()
            daemon.wait(timeout=10)

    def test_wrong_token_is_rejected(self):
        with socket_module.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [entry for entry in sys.path if entry])
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro.parallel.worker",
             "--listen", f"127.0.0.1:{port}", "--token", "right"],
            env=env, stdin=subprocess.DEVNULL, stdout=subprocess.DEVNULL)
        try:
            with pytest.raises(BrokenSocketPool):
                SocketExecutor(hosts=[f"127.0.0.1:{port}"], token="wrong",
                               start_timeout=10.0)
        finally:
            daemon.terminate()
            daemon.wait(timeout=10)

    def test_daemon_reveals_no_secret_to_an_unauthenticated_client(self):
        """Anyone can connect to a --listen port; they must learn nothing.

        The daemon's opening HELLO is a random nonce plus its pid — no
        token — and a client that cannot prove the token gets dropped
        before a single TASK frame would be accepted.
        """
        token = "deep-dark-secret"
        with socket_module.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [entry for entry in sys.path if entry])
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro.parallel.worker",
             "--listen", f"127.0.0.1:{port}", "--token", token],
            env=env, stdin=subprocess.DEVNULL, stdout=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 10.0
            while True:
                try:
                    attacker = socket_module.create_connection(
                        ("127.0.0.1", port), timeout=5.0)
                    break
                except OSError:
                    if time.monotonic() >= deadline:
                        raise
                    time.sleep(0.1)
            try:
                kind, payload = read_frame(attacker)
                assert kind == FrameKind.HELLO
                assert len(payload) == NONCE_BYTES + 8  # nonce + pid only
                assert token.encode() not in payload
                # answer the challenge without the token: a well-formed
                # WELCOME whose proof is a guess
                send_frame(attacker, FrameKind.WELCOME,
                           os.urandom(NONCE_BYTES) + os.urandom(32))
                # the daemon must hang up, never reaching the TASK loop
                attacker.settimeout(10.0)
                assert attacker.recv(1) == b""
            finally:
                attacker.close()
        finally:
            daemon.terminate()
            daemon.wait(timeout=10)


# ----------------------------------------------------- handshake security
class TestListenerSecurity:
    """The executor's loopback listener against unauthenticated peers."""

    def test_unauthenticated_bytes_are_never_unpickled(self, executor):
        """A pickle bomb in a HELLO frame must not reach pickle.loads."""
        _CANARY_TRIPS.clear()
        attacker = socket_module.create_connection(
            ("127.0.0.1", executor._port), timeout=5.0)
        try:
            send_frame(attacker, FrameKind.HELLO,
                       pickle.dumps(_PickleCanary()))
            attacker.settimeout(10.0)
            assert attacker.recv(1) == b""  # dropped, no WELCOME
        finally:
            attacker.close()
        assert _CANARY_TRIPS == []

    def test_forged_proof_is_not_adopted(self, executor):
        """A well-formed handshake with a guessed proof gets rejected."""
        with executor._lock:
            before = len(executor._connections)
        attacker = socket_module.create_connection(
            ("127.0.0.1", executor._port), timeout=5.0)
        try:
            send_frame(attacker, FrameKind.HELLO,
                       os.urandom(NONCE_BYTES) + struct.pack(">Q", 4242))
            attacker.settimeout(10.0)
            kind, _ = read_frame(attacker)
            assert kind == FrameKind.WELCOME
            send_frame(attacker, FrameKind.AUTH, os.urandom(32))
            assert attacker.recv(1) == b""  # hung up on, not adopted
        finally:
            attacker.close()
        with executor._lock:
            assert len(executor._connections) == before
        # the pool is unbothered by the attempt
        assert executor.map_ordered(_square, [6]) == [36]


# ---------------------------------------------------------- golden parity
@pytest.mark.parametrize("name,method,scenario,aggregation,codec,shards",
                         [spec + (SHARD_ROTATION[i % len(SHARD_ROTATION)],)
                          for i, spec in enumerate(SPECS)],
                         ids=[f"{spec[0]}-shards{SHARD_ROTATION[i % 3]}"
                              for i, spec in enumerate(SPECS)])
def test_socket_backend_reproduces_golden_fixture(executor, name, method,
                                                  scenario, aggregation,
                                                  codec, shards):
    """Every pinned trajectory, over real TCP, sharded — zero drift.

    The committed fixtures are NOT regenerated for the distributed
    backend: whatever bytes the serial reference produced, the socket
    backend at every rotated shard count must reproduce exactly (wire
    reports included — codec blocks ride the socket natively).
    """
    payload = json.loads(golden.fixture_path(name).read_text())
    preset = scaled(golden.golden_preset(scenario, aggregation, codec),
                    reducer_shards=shards)
    history = run_method(method, preset, executor=executor)
    fresh = json.loads(json.dumps(history.to_dict()))
    assert fresh == payload["history"], (
        f"socket backend drifted {method!r} ({scenario}, {aggregation}, "
        f"{codec}) at {shards} reducer shards off the golden fixture")


@pytest.mark.parametrize("shards", SHARD_ROTATION[1:])
def test_serial_sharded_reproduces_golden_fixture(shards):
    """Shard counts alone (no sockets) leave the fixtures untouched too."""
    name, method, scenario, aggregation, codec = SPECS[0]
    payload = json.loads(golden.fixture_path(name).read_text())
    preset = scaled(golden.golden_preset(scenario, aggregation, codec),
                    reducer_shards=shards)
    fresh = json.loads(json.dumps(run_method(method, preset).to_dict()))
    assert fresh == payload["history"]


# ------------------------------------------------------------ chaos cells
class TestFaultRecovery:
    CHAOS_OVERRIDES = dict(num_clients=4, num_rounds=2, clients_per_round=4,
                           examples_per_client=20, local_iterations=2,
                           batch_size=8)

    def test_injected_crash_charges_identical_fault_counters(self):
        """crashy plan: a real os._exit in a socket worker vs simulated.

        Seed 0 schedules one crash at (round 0, client 1); the socket
        backend realizes it as a dead worker process and must recover to
        the exact history — fault counters included — the serial
        backend's simulated crash produces.
        """
        preset = scaled(preset_for("mnist"), seed=0, fault_plan="crashy",
                        max_retries=4, task_timeout=30.0,
                        **self.CHAOS_OVERRIDES)
        serial = run_method("fedavg", preset).to_dict()
        assert serial["records"][0]["extras"]["fault_worker_restarts"] == 1.0
        with SocketExecutor(workers=2) as ex:
            ex.warm_up()
            sock = run_method("fedavg", preset, executor=ex).to_dict()
            # the crash really killed a worker: a second generation spawned
            assert ex._worker_seq > 2
        assert sock == serial

    def test_sigkill_mid_round_recovers_bit_identical(self):
        """An external SIGKILL (no fault plan) recovers via replenish().

        The recovered history must match the clean serial run exactly
        once the ``fault_*`` recovery counters (the one legitimate
        difference) are stripped.
        """
        preset = scaled(preset_for("mnist"), seed=11, max_retries=3,
                        task_timeout=30.0, **self.CHAOS_OVERRIDES)
        clean = _strip_faults(run_method("fedavg", preset).to_dict())
        with SocketExecutor(workers=2) as ex:
            ex.warm_up()
            submitted = []

            def witness(item):
                submitted.append(1)
                if len(submitted) == 2:  # mid-round-0 fan-out
                    def kill():
                        time.sleep(0.005)
                        with ex._lock:
                            live = [c for c in ex._connections if not c.dead]
                        if live:
                            os.kill(live[0].remote_pid, signal.SIGKILL)
                    threading.Thread(target=kill, daemon=True).start()

            ex.payload_witness = witness
            recovered = run_method("fedavg", preset, executor=ex).to_dict()
        assert _strip_faults(json.loads(json.dumps(recovered))) == clean

    def test_unsupervised_worker_loss_surfaces_as_broken_pool(self):
        with SocketExecutor(workers=1) as ex:
            ex.warm_up()
            with pytest.raises(BrokenSocketPool):
                ex.map_ordered(_exit_hard, [None])
            ex.replenish()
            ex.warm_up()
            assert ex.map_ordered(_square, [3]) == [9]

    def test_submit_after_total_worker_loss_fails_fast(self):
        """A task queued after the pool died must not wait forever.

        The process-exit and connection-retire events that normally fail
        the queue all fired before this submit — the submit itself has to
        notice the dead pool.
        """
        with SocketExecutor(workers=1) as ex:
            ex.warm_up()
            with pytest.raises(BrokenSocketPool):
                ex.map_ordered(_exit_hard, [None])
            # let the watcher threads finish their post-mortem events
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                with ex._lock:
                    quiet = not ex._connections and all(
                        process.poll() is not None
                        for process, _ in ex._processes)
                if quiet:
                    break
                time.sleep(0.02)
            future = ex.submit(_square, 2)
            with pytest.raises(BrokenSocketPool):
                future.result(timeout=10)
