"""Convergence-analysis helpers (Lemma 1 and Theorem 1).

These functions implement the closed-form bounds of the paper's analysis so
that tests can check (a) the algebraic behaviour of the bounds (monotonicity
in the problem constants, vanishing as ``R`` grows) and (b) that simulated
runs on toy problems respect the Lemma 1 parameter-gap bound when the
learning-rate constraint is satisfied.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np


def max_learning_rate(local_iterations: int, total_rounds: int, v_max: float,
                      smoothness: float) -> float:
    """The learning-rate ceiling ``eta_r <= sqrt(1 / (24 E R V_r L^2))``."""
    if local_iterations <= 0 or total_rounds <= 0:
        raise ValueError("local_iterations and total_rounds must be positive")
    if v_max <= 0 or smoothness <= 0:
        raise ValueError("v_max and smoothness must be positive")
    return float(np.sqrt(1.0 / (24.0 * local_iterations * total_rounds
                                * v_max * smoothness ** 2)))


def lemma1_gap_bound(local_iterations: int, learning_rate: float,
                     gradient_bias: float, gradient_distance: float,
                     gradient_norm: float) -> float:
    """Lemma 1: bound on the mean squared gap between local and global params.

    ``5 E eta^2 (sigma^2 + 6 E B^2 + 18 E H^2)``.
    """
    if local_iterations <= 0:
        raise ValueError("local_iterations must be positive")
    if learning_rate <= 0:
        raise ValueError("learning_rate must be positive")
    e = local_iterations
    return float(5.0 * e * learning_rate ** 2
                 * (gradient_bias ** 2 + 6.0 * e * gradient_distance ** 2
                    + 18.0 * e * gradient_norm ** 2))


def theorem1_bound(total_rounds: int, local_iterations: int, num_clients: int,
                   initial_gap: float, *, gradient_bias: float,
                   gradient_distance: float, gradient_norm: float,
                   smoothness: float, v_max: float) -> float:
    """Theorem 1: bound on the average squared gradient norm over ``R`` rounds."""
    if total_rounds <= 0 or local_iterations <= 0 or num_clients <= 0:
        raise ValueError("rounds, iterations and clients must be positive")
    if initial_gap < 0:
        raise ValueError("initial_gap (f0 - f*) must be non-negative")
    r = float(total_rounds)
    e = float(local_iterations)
    phi = 4.0 * np.sqrt(6.0) * smoothness * np.sqrt(v_max)
    varphi = np.sqrt(e / (6.0 * v_max))
    sigma2 = gradient_bias ** 2
    variance_term = (sigma2 + 6.0 * e * gradient_distance ** 2
                     + 18.0 * e * gradient_norm ** 2)
    bound = (phi / np.sqrt(e * r) * initial_gap
             + varphi / np.sqrt(r) * (2.0 * gradient_norm ** 2
                                      + sigma2 / (num_clients * e))
             + (5.0 / (24.0 * r) + 5.0 * varphi / (12.0 * r * np.sqrt(r)))
             * variance_term)
    return float(bound)


def empirical_parameter_gap(local_params: Iterable[Mapping[str, np.ndarray]],
                            global_params: Mapping[str, np.ndarray]) -> float:
    """Mean squared L2 gap between a set of local snapshots and the global one."""
    gaps = []
    for params in local_params:
        total = 0.0
        for key, value in global_params.items():
            diff = np.asarray(params[key]) - np.asarray(value)
            total += float(np.sum(diff ** 2))
        gaps.append(total)
    if not gaps:
        raise ValueError("no local parameter snapshots provided")
    return float(np.mean(gaps))


def gradient_norm_trajectory(gradient_norms: Sequence[float]) -> float:
    """Average squared gradient norm over a trajectory (the Theorem 1 LHS)."""
    if not gradient_norms:
        raise ValueError("gradient_norms must not be empty")
    return float(np.mean(np.square(gradient_norms)))
