"""Unit tests for the sim clock and the completion-event queue."""

import pytest

from repro.server.clock import ClientEvent, EventQueue, SimClock
from repro.federated.strategy import ClientUpdate
from repro.systems.cost import CostBreakdown


def event(finish_time, client_id, round_index=0, version=0):
    update = ClientUpdate(client_id=client_id, params={}, num_examples=1,
                          train_accuracy=0.0, train_loss=0.0)
    return ClientEvent(finish_time=finish_time, client_id=client_id,
                       round_index=round_index, dispatch_version=version,
                       update=update, cost=CostBreakdown(0.0, 0.0))


class TestEventQueue:
    def test_orders_by_finish_time(self):
        queue = EventQueue()
        for finish, cid in [(3.0, 1), (1.0, 2), (2.0, 3)]:
            queue.push(event(finish, cid))
        assert [e.client_id for e in queue.drain()] == [2, 3, 1]

    def test_ties_break_on_client_id(self):
        queue = EventQueue()
        for cid in (5, 1, 3):
            queue.push(event(1.0, cid))
        assert [e.client_id for e in queue.drain()] == [1, 3, 5]

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_does_not_remove(self):
        queue = EventQueue()
        queue.push(event(1.0, 4))
        assert queue.peek().client_id == 4
        assert len(queue) == 1

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue and len(queue) == 0
        queue.push(event(1.0, 0))
        assert queue and len(queue) == 1


class TestSimClock:
    def test_advances_forward(self):
        clock = SimClock()
        assert clock.advance_to(2.5) == 2.5
        assert clock.now == 2.5

    def test_never_moves_backwards(self):
        # a straggler from an old round can finish "before" the current sim
        # time; consuming it must not rewind the clock
        clock = SimClock()
        clock.advance_to(5.0)
        assert clock.advance_to(3.0) == 5.0
        assert clock.now == 5.0
