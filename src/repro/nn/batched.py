"""Batched (cohort-axis) kernels: run a whole cohort as one tensor program.

Vectorized cohort training stacks the same-architecture models of ``C``
cohort clients along a leading client axis, so each training step runs one
batched ``(C, N, K) @ (C, K, M)`` matmul per layer instead of ``C`` small
2-D ones.  Per-client unit-gate patterns become multiplicative gates of
shape ``(C, n_units)`` broadcast along the client axis, and per-client
mask/learning-rate/prox terms broadcast the same way.

Bit-identity contract
---------------------
The batched kernels are written so every per-client slice reproduces the
sequential :mod:`repro.nn` layers bit-for-bit:

* batched matmuls are slice-identical to their 2-D counterparts (each
  output row is an independent dot product; verified on the stacked,
  transposed and padded operand layouts used here);
* single-axis reductions (``axis=1`` of a ``(C, B, U)`` stack) are
  slice-identical to ``axis=0`` of the ``(B, U)`` slice;
* multi-axis reductions are NOT assumed slice-identical — the conv gate
  gradient therefore reduces per-client slices in a short Python loop,
  reproducing the sequential computation on identical shapes;
* ragged cohorts (clients with fewer examples than the padded batch) are
  NOT fed through the batched matmuls: GEMM results depend on the row
  count (edge micro-kernels regroup the k accumulation), so with
  ``batch_counts`` installed every matmul and ``np.sum`` reduction runs
  the sequential 2-D computation on each client's leading ``counts[c]``
  real rows (padded rows sit in a trailing block and stay exactly zero
  through forward and backward).

The equivalence suite in ``tests/federated/test_batched.py`` pins this
contract against the per-client loop across masks, patterns, prox, momentum,
clipping and ragged shard sizes.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .activations import Flatten, ReLU, Sigmoid, Tanh
from .base import Array, Layer
from .conv import AvgPool2d, Conv2d, MaxPool2d, _col2im, _im2col
from .dense import Dense
from .model import Sequential, UnitGroup
from .params import ParamDict

#: layer types with a batched kernel (exact types: a subclass may override
#: semantics the batched kernels do not reproduce)
_STACKED_TYPES = (Dense, Conv2d)
_FOLDED_TYPES = (MaxPool2d, AvgPool2d)
_ELEMENTWISE_TYPES = (ReLU, Tanh, Sigmoid)


def batchable_model(model: Sequential) -> bool:
    """True when every layer of ``model`` has a batched kernel.

    Dropout (its own sequential RNG stream), embeddings and recurrent layers
    have no batched counterpart — models containing them fall back to the
    per-client loop.
    """
    layers = getattr(model, "layers", None)
    if not layers:
        return False
    supported = _STACKED_TYPES + _FOLDED_TYPES + _ELEMENTWISE_TYPES + (Flatten,)
    return all(type(layer) in supported for layer in layers)


def stack_param_dicts(param_dicts: Sequence[Mapping[str, np.ndarray]]) -> ParamDict:
    """Stack per-client parameter dictionaries along a new leading axis."""
    if not param_dicts:
        raise ValueError("cannot stack an empty cohort")
    first = param_dicts[0]
    return {key: np.stack([np.asarray(params[key], dtype=np.float64)
                           for params in param_dicts])
            for key in first}


def unstack_param_dict(stacked: Mapping[str, np.ndarray], index: int) -> ParamDict:
    """Extract client ``index``'s parameter dictionary from a stacked one."""
    return {key: np.array(value[index], copy=True)
            for key, value in stacked.items()}


class _BatchedLayer:
    """Common state for layers carrying stacked ``(C, ...)`` parameters."""

    trainable = True
    sparsifiable = False

    def __init__(self, template: Layer, cohort: int) -> None:
        self.name = template.name
        self.cohort = cohort
        self.params: ParamDict = {
            key: np.repeat(value[None], cohort, axis=0)
            for key, value in template.params.items()}
        self.grads: ParamDict = {}
        self.unit_gate: Optional[Array] = None
        self.unit_gate_grad: Optional[Array] = None
        #: per-client real-row counts when the padded batch is ragged;
        #: ``None`` selects the fully batched reductions
        self.batch_counts: Optional[np.ndarray] = None
        self.zero_grad()

    @property
    def n_units(self) -> int:
        return 0

    def zero_grad(self) -> None:
        for key, value in self.params.items():
            self.grads[key] = np.zeros_like(value)
        if self.sparsifiable and self.n_units > 0:
            self.unit_gate_grad = np.zeros((self.cohort, self.n_units),
                                           dtype=np.float64)

    def set_unit_gate(self, gate: Optional[Array]) -> None:
        if gate is None:
            self.unit_gate = None
            return
        gate = np.asarray(gate, dtype=np.float64)
        if gate.shape != (self.cohort, self.n_units):
            raise ValueError(
                f"batched layer {self.name!r} expects a gate of shape "
                f"({self.cohort}, {self.n_units}), got {gate.shape}")
        self.unit_gate = gate

    def forward(self, x: Array, *, train: bool = True) -> Array:
        raise NotImplementedError

    def backward(self, grad_out: Array) -> Array:
        raise NotImplementedError


class BatchedDense(_BatchedLayer):
    """``C`` affine layers as one ``(C, B, in) @ (C, in, out)`` matmul."""

    def __init__(self, template: Dense, cohort: int) -> None:
        self.in_features = template.in_features
        self.out_features = template.out_features
        self.sparsifiable = template.sparsifiable
        super().__init__(template, cohort)
        self._x: Optional[Array] = None
        self._pre_gate: Optional[Array] = None

    @property
    def n_units(self) -> int:
        return self.out_features if self.sparsifiable else 0

    def unit_weight_magnitude(self, index: int) -> Array:
        """Client ``index``'s per-unit ``|omega|_J`` — the sequential
        computation on the client's contiguous parameter slice."""
        return (np.sum(np.abs(self.params["W"][index]), axis=0)
                + np.abs(self.params["b"][index]))

    def forward(self, x: Array, *, train: bool = True) -> Array:
        if x.ndim != 3 or x.shape[0] != self.cohort or x.shape[2] != self.in_features:
            raise ValueError(
                f"{self.name}: expected input of shape "
                f"({self.cohort}, B, {self.in_features}), got {x.shape}")
        self._x = x
        if self.batch_counts is None:
            self._pre_gate = np.matmul(x, self.params["W"]) \
                + self.params["b"][:, None, :]
        else:
            # GEMM row results are not independent of the row count (edge
            # micro-kernels regroup the k accumulation), so ragged batches
            # run the sequential 2-D matmul on each client's real rows;
            # padded rows stay exactly zero
            self._pre_gate = np.zeros(x.shape[:2] + (self.out_features,))
            for i, count in enumerate(self.batch_counts):
                self._pre_gate[i, :count] = \
                    x[i, :count] @ self.params["W"][i] + self.params["b"][i]
        if self.unit_gate is None:
            return self._pre_gate
        return self._pre_gate * self.unit_gate[:, None, :]

    def backward(self, grad_out: Array) -> Array:
        if self._x is None or self._pre_gate is None:
            raise RuntimeError("backward called before forward")
        grad_pre = grad_out
        if self.unit_gate is not None:
            if self.batch_counts is None:
                self.unit_gate_grad += np.sum(grad_out * self._pre_gate, axis=1)
            else:
                for i, count in enumerate(self.batch_counts):
                    self.unit_gate_grad[i] += np.sum(
                        grad_out[i, :count] * self._pre_gate[i, :count], axis=0)
            grad_pre = grad_out * self.unit_gate[:, None, :]
        if self.batch_counts is None:
            self.grads["W"] += np.matmul(self._x.transpose(0, 2, 1), grad_pre)
            self.grads["b"] += np.sum(grad_pre, axis=1)
            return np.matmul(grad_pre, self.params["W"].transpose(0, 2, 1))
        grad_x = np.zeros_like(self._x)
        for i, count in enumerate(self.batch_counts):
            self.grads["W"][i] += self._x[i, :count].T @ grad_pre[i, :count]
            self.grads["b"][i] += np.sum(grad_pre[i, :count], axis=0)
            grad_x[i, :count] = grad_pre[i, :count] @ self.params["W"][i].T
        return grad_x


class BatchedConv2d(_BatchedLayer):
    """``C`` convolutions as one matmul over the cohort's im2col patches."""

    def __init__(self, template: Conv2d, cohort: int) -> None:
        self.in_channels = template.in_channels
        self.out_channels = template.out_channels
        self.kernel_size = template.kernel_size
        self.stride = template.stride
        self.padding = template.padding
        self.sparsifiable = template.sparsifiable
        super().__init__(template, cohort)
        self._cols3: Optional[Array] = None
        self._x_shape: Optional[Tuple[int, ...]] = None
        self._out_hw: Optional[Tuple[int, int]] = None
        self._pre_gate: Optional[Array] = None

    @property
    def n_units(self) -> int:
        return self.out_channels if self.sparsifiable else 0

    def _weight_matrix(self) -> Array:
        return self.params["W"].reshape(self.cohort, self.out_channels, -1)

    def unit_weight_magnitude(self, index: int) -> Array:
        """Client ``index``'s per-unit ``|omega|_J`` — the sequential
        computation on the client's contiguous parameter slice."""
        return (np.sum(np.abs(self.params["W"][index]), axis=(1, 2, 3))
                + np.abs(self.params["b"][index]))

    def forward(self, x: Array, *, train: bool = True) -> Array:
        if x.ndim != 5 or x.shape[0] != self.cohort or x.shape[2] != self.in_channels:
            raise ValueError(
                f"{self.name}: expected input "
                f"({self.cohort}, B, {self.in_channels}, H, W), got {x.shape}")
        cohort, batch = x.shape[:2]
        folded = np.ascontiguousarray(x).reshape((cohort * batch,) + x.shape[2:])
        cols, out_h, out_w = _im2col(folded, self.kernel_size, self.stride,
                                     self.padding)
        cols3 = cols.reshape(cohort, batch * out_h * out_w, -1)
        w_mat = self._weight_matrix()
        if self.batch_counts is None:
            out = np.matmul(cols3, w_mat.transpose(0, 2, 1)) \
                + self.params["b"][:, None, :]
        else:
            # sequential 2-D matmul per client on the real rows (see
            # BatchedDense.forward); padded rows stay exactly zero
            positions = out_h * out_w
            out = np.zeros((cohort, batch * positions, self.out_channels))
            for i, count in enumerate(self.batch_counts):
                rows = count * positions
                out[i, :rows] = cols3[i, :rows] @ w_mat[i].T + self.params["b"][i]
        out = out.reshape(cohort, batch, out_h, out_w, self.out_channels)
        out = out.transpose(0, 1, 4, 2, 3)
        self._cols3 = cols3
        self._x_shape = x.shape
        self._out_hw = (out_h, out_w)
        self._pre_gate = out
        if self.unit_gate is None:
            return out
        return out * self.unit_gate[:, None, :, None, None]

    def backward(self, grad_out: Array) -> Array:
        if self._cols3 is None or self._x_shape is None or self._out_hw is None:
            raise RuntimeError("backward called before forward")
        cohort, batch = self._x_shape[:2]
        out_h, out_w = self._out_hw
        grad_pre = grad_out
        if self.unit_gate is not None:
            # multi-axis reductions are not in the verified slice-identical
            # class, so the gate gradient reduces per-client slices exactly
            # as the sequential layer does
            for i in range(cohort):
                count = None if self.batch_counts is None else self.batch_counts[i]
                g_slice = grad_out[i] if count is None else grad_out[i, :count]
                p_slice = (self._pre_gate[i] if count is None
                           else self._pre_gate[i, :count])
                self.unit_gate_grad[i] += np.sum(g_slice * p_slice, axis=(0, 2, 3))
            grad_pre = grad_out * self.unit_gate[:, None, :, None, None]
        grad_mat = grad_pre.transpose(0, 1, 3, 4, 2).reshape(
            cohort, batch * out_h * out_w, self.out_channels)
        if self.batch_counts is None:
            self.grads["W"] += np.matmul(
                grad_mat.transpose(0, 2, 1), self._cols3).reshape(
                    self.params["W"].shape)
            self.grads["b"] += np.sum(grad_mat, axis=1)
            grad_cols = np.matmul(grad_mat, self._weight_matrix())
        else:
            # like BatchedDense.backward: the sequential 2-D matmuls per
            # client on the leading real rows; padded rows stay exactly zero
            positions = out_h * out_w
            kernel_shape = self.params["W"].shape[1:]
            w_mat = self._weight_matrix()
            grad_cols = np.zeros_like(self._cols3)
            for i, count in enumerate(self.batch_counts):
                rows = count * positions
                self.grads["W"][i] += (
                    grad_mat[i, :rows].T @ self._cols3[i, :rows]
                ).reshape(kernel_shape)
                self.grads["b"][i] += np.sum(grad_mat[i, :rows], axis=0)
                grad_cols[i, :rows] = grad_mat[i, :rows] @ w_mat[i]
        folded_shape = (cohort * batch,) + self._x_shape[2:]
        grad_x = _col2im(grad_cols.reshape(cohort * batch * out_h * out_w, -1),
                         folded_shape, self.kernel_size, self.stride,
                         self.padding, out_h, out_w)
        return grad_x.reshape(self._x_shape)


class _FoldedLayer:
    """Run a per-sample layer on ``(C * B, ...)`` by folding the client axis.

    Pooling is sample-local, so folding the cohort into the batch axis
    reproduces the sequential layer bit-for-bit by construction — the inner
    layer IS the sequential implementation.
    """

    trainable = False
    sparsifiable = False
    n_units = 0

    def __init__(self, inner: Layer) -> None:
        self.inner = inner
        self.name = inner.name
        self.params: ParamDict = {}
        self.grads: ParamDict = {}
        self.batch_counts = None
        self._lead: Optional[Tuple[int, int]] = None

    def zero_grad(self) -> None:
        pass

    def forward(self, x: Array, *, train: bool = True) -> Array:
        self._lead = x.shape[:2]
        folded = np.ascontiguousarray(x).reshape(
            (x.shape[0] * x.shape[1],) + x.shape[2:])
        out = self.inner.forward(folded, train=train)
        return out.reshape(self._lead + out.shape[1:])

    def backward(self, grad_out: Array) -> Array:
        if self._lead is None:
            raise RuntimeError("backward called before forward")
        folded = np.ascontiguousarray(grad_out).reshape(
            (grad_out.shape[0] * grad_out.shape[1],) + grad_out.shape[2:])
        out = self.inner.backward(folded)
        return out.reshape(self._lead + out.shape[1:])


class _BatchedFlatten:
    """Flatten everything after the ``(C, B)`` leading axes."""

    trainable = False
    sparsifiable = False
    n_units = 0

    def __init__(self, name: str) -> None:
        self.name = name
        self.params: ParamDict = {}
        self.grads: ParamDict = {}
        self.batch_counts = None
        self._input_shape: Optional[Tuple[int, ...]] = None

    def zero_grad(self) -> None:
        pass

    def forward(self, x: Array, *, train: bool = True) -> Array:
        self._input_shape = x.shape
        return np.ascontiguousarray(x).reshape(x.shape[0], x.shape[1], -1)

    def backward(self, grad_out: Array) -> Array:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        return grad_out.reshape(self._input_shape)


def _batch_layer(layer: Layer, cohort: int):
    if type(layer) is Dense:
        return BatchedDense(layer, cohort)
    if type(layer) is Conv2d:
        return BatchedConv2d(layer, cohort)
    if type(layer) is MaxPool2d:
        return _FoldedLayer(MaxPool2d(layer.kernel_size, layer.name))
    if type(layer) is AvgPool2d:
        return _FoldedLayer(AvgPool2d(layer.kernel_size, layer.name))
    if type(layer) is Flatten:
        return _BatchedFlatten(layer.name)
    if type(layer) in _ELEMENTWISE_TYPES:
        # element-wise layers are shape-agnostic: reuse the sequential
        # implementation directly on the (C, B, ...) stack
        return type(layer)(layer.name)
    raise ValueError(
        f"layer {layer.name!r} ({type(layer).__name__}) has no batched kernel")


class BatchedModel:
    """A cohort of ``C`` same-architecture models as one stacked program.

    Built from a :class:`~repro.nn.model.Sequential` template; parameters,
    gradients, unit gates and gate gradients all carry a leading client
    axis.  The layer/parameter layout (keys ``"layer.param"``, unit groups)
    mirrors the template so per-client slices drop straight into the
    sequential code paths.
    """

    def __init__(self, template: Sequential, cohort: int) -> None:
        if cohort <= 0:
            raise ValueError("cohort size must be positive")
        if not batchable_model(template):
            raise ValueError(
                f"model {template.name!r} contains layers without batched "
                f"kernels; use batchable_model() to pre-check")
        self.template = template
        self.cohort = cohort
        self.layers = [_batch_layer(layer, cohort) for layer in template.layers]
        self._unit_groups: List[UnitGroup] = template.unit_groups

    # ------------------------------------------------------------- forward
    def forward(self, x: Array, *, train: bool = True) -> Array:
        out = x
        for layer in self.layers:
            out = layer.forward(out, train=train)
        return out

    def backward(self, grad_out: Array) -> Array:
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    # ---------------------------------------------------------- parameters
    def set_parameters(self, stacked: Mapping[str, np.ndarray]) -> None:
        """Load a stacked ``(C, ...)`` parameter snapshot."""
        for layer in self.layers:
            for key in layer.params:
                full_key = f"{layer.name}.{key}"
                if full_key not in stacked:
                    raise KeyError(f"missing parameter {full_key!r}")
                value = np.asarray(stacked[full_key], dtype=np.float64)
                if value.shape != layer.params[key].shape:
                    raise ValueError(
                        f"shape mismatch for {full_key!r}: "
                        f"{value.shape} vs {layer.params[key].shape}")
                layer.params[key] = np.array(value, copy=True)

    def get_parameters(self) -> ParamDict:
        snapshot: ParamDict = {}
        for layer in self.layers:
            for key, value in layer.params.items():
                snapshot[f"{layer.name}.{key}"] = np.array(value, copy=True)
        return snapshot

    def get_gradients(self) -> ParamDict:
        grads: ParamDict = {}
        for layer in self.layers:
            for key, value in layer.grads.items():
                grads[f"{layer.name}.{key}"] = np.array(value, copy=True)
        return grads

    def live_parameters(self) -> Dict[str, np.ndarray]:
        """The live stacked parameter arrays (no copies) for in-place SGD."""
        live: Dict[str, np.ndarray] = {}
        for layer in self.layers:
            for key in layer.params:
                live[f"{layer.name}.{key}"] = layer.params[key]
        return live

    # --------------------------------------------------------------- units
    @property
    def unit_groups(self) -> List[UnitGroup]:
        return list(self._unit_groups)

    def layer_by_name(self, name: str):
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no layer named {name!r}")

    def set_unit_gates(self, gates: Optional[Mapping[str, np.ndarray]]) -> None:
        """Install per-client ``(C, n_units)`` gates; ``None`` clears them."""
        for group in self._unit_groups:
            layer = self.layer_by_name(group.layer_name)
            layer.set_unit_gate(
                None if gates is None else gates.get(group.layer_name))

    def gate_gradients(self) -> Dict[str, np.ndarray]:
        """Stacked ``(C, n_units)`` gate gradients per sparsifiable layer."""
        grads: Dict[str, np.ndarray] = {}
        for group in self._unit_groups:
            layer = self.layer_by_name(group.layer_name)
            grad = layer.unit_gate_grad
            grads[group.layer_name] = (
                np.zeros((self.cohort, group.n_units)) if grad is None
                else np.array(grad, copy=True))
        return grads

    def unit_weight_magnitudes(self, index: int) -> Dict[str, np.ndarray]:
        """Client ``index``'s per-unit magnitudes, keyed like the template's
        ``unit_weight_magnitudes`` (one entry per sparsifiable layer)."""
        return {group.layer_name:
                self.layer_by_name(group.layer_name).unit_weight_magnitude(index)
                for group in self._unit_groups}

    # ------------------------------------------------------------- ragged
    def set_batch_counts(self, counts: Optional[Sequence[int]]) -> None:
        """Install per-client real-row counts for ragged padded batches.

        ``None`` (or counts all equal to the padded batch size) selects the
        fully batched reductions; otherwise ``np.sum``-based reductions only
        run over each client's leading ``counts[c]`` rows so the summation
        trees match the sequential loop exactly.
        """
        if counts is not None:
            counts = np.asarray(counts, dtype=np.int64)
        for layer in self.layers:
            layer.batch_counts = counts
