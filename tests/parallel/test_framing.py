"""Framing-protocol conformance: every split of the stream must parse.

TCP gives no message boundaries, so :class:`FrameDecoder` must reassemble
frames correctly under *every* possible chunking of the byte stream —
that's a property, so it's property-tested.  The header checks (magic,
kind, declared length) must fire before a payload is buffered, and the
socket wrappers must map EOF onto :class:`ConnectionClosed` with the
mid-frame bit set exactly when the stream died inside a frame.
"""

from __future__ import annotations

import socket
import struct
import threading

import pytest
from hypothesis import given, settings, strategies as st

import repro.parallel.framing as framing
from repro.parallel.framing import (HEADER_BYTES, MAGIC, NONCE_BYTES,
                                    ConnectionClosed, FrameDecoder,
                                    FrameError, FrameKind, encode_frame,
                                    read_frame, send_frame,
                                    server_handshake, worker_handshake)

_KINDS = st.sampled_from(FrameKind.ALL)
_PAYLOADS = st.binary(max_size=256)


def _chunked(data: bytes, cut_points) -> list:
    """Split ``data`` at the given sorted cut offsets."""
    pieces = []
    previous = 0
    for cut in sorted(cut_points):
        pieces.append(data[previous:cut])
        previous = cut
    pieces.append(data[previous:])
    return pieces


# ------------------------------------------------------------- round trips
class TestDecoderRoundTrip:
    @given(kind=_KINDS, payload=_PAYLOADS)
    def test_single_frame_whole(self, kind, payload):
        frames = FrameDecoder().feed(encode_frame(kind, payload))
        assert frames == [(kind, payload)]

    @given(kind=_KINDS, payload=_PAYLOADS, data=st.data())
    def test_single_frame_any_chunking(self, kind, payload, data):
        wire = encode_frame(kind, payload)
        cuts = data.draw(st.lists(
            st.integers(min_value=0, max_value=len(wire)), max_size=8))
        decoder = FrameDecoder()
        frames = []
        for piece in _chunked(wire, cuts):
            frames.extend(decoder.feed(piece))
        assert frames == [(kind, payload)]
        assert decoder.pending_bytes == 0

    @given(messages=st.lists(st.tuples(_KINDS, _PAYLOADS), max_size=6),
           data=st.data())
    def test_many_frames_any_chunking(self, messages, data):
        wire = b"".join(encode_frame(kind, payload)
                        for kind, payload in messages)
        cuts = data.draw(st.lists(
            st.integers(min_value=0, max_value=len(wire)), max_size=10))
        decoder = FrameDecoder()
        frames = []
        for piece in _chunked(wire, cuts):
            frames.extend(decoder.feed(piece))
        assert frames == messages
        assert decoder.pending_bytes == 0

    @settings(max_examples=25)
    @given(payload=_PAYLOADS)
    def test_byte_at_a_time(self, payload):
        decoder = FrameDecoder()
        frames = []
        for offset, byte in enumerate(encode_frame(FrameKind.TASK, payload)):
            assert not frames  # nothing complete until the last byte
            frames.extend(decoder.feed(bytes([byte])))
        assert frames == [(FrameKind.TASK, payload)]

    def test_partial_frame_stays_pending(self):
        decoder = FrameDecoder()
        wire = encode_frame(FrameKind.BLOB, b"x" * 64)
        assert decoder.feed(wire[:-1]) == []
        assert decoder.pending_bytes == 63  # header consumed, payload partial
        assert decoder.feed(wire[-1:]) == [(FrameKind.BLOB, b"x" * 64)]


# ------------------------------------------------------------ header checks
class TestHeaderValidation:
    def test_bad_magic_rejected(self):
        wire = b"NOPE" + encode_frame(FrameKind.TASK, b"payload")[4:]
        with pytest.raises(FrameError, match="magic"):
            FrameDecoder().feed(wire)

    def test_unknown_kind_rejected(self):
        wire = struct.pack(">4sBQ", MAGIC, 99, 0)
        with pytest.raises(FrameError, match="kind"):
            FrameDecoder().feed(wire)

    def test_oversized_length_rejected_before_payload(self):
        # the header alone must trigger the error — no payload is buffered
        wire = struct.pack(">4sBQ", MAGIC, FrameKind.BLOB, 1 << 40)
        decoder = FrameDecoder(max_frame_bytes=1 << 20)
        with pytest.raises(FrameError, match="exceeds"):
            decoder.feed(wire)

    def test_encode_refuses_oversized_payload(self):
        with pytest.raises(FrameError, match="exceeds"):
            encode_frame(FrameKind.BLOB, b"x" * 128, max_frame_bytes=64)

    def test_encode_refuses_unknown_kind(self):
        with pytest.raises(FrameError, match="kind"):
            encode_frame(42, b"")

    @given(junk=st.binary(min_size=HEADER_BYTES, max_size=64))
    def test_random_junk_never_parses_silently(self, junk):
        # random bytes either fail loudly or stay pending — a full frame
        # only ever comes out if the junk really was a valid frame prefix
        decoder = FrameDecoder()
        try:
            frames = decoder.feed(junk)
        except FrameError:
            return
        for kind, payload in frames:
            assert kind in FrameKind.ALL


# ------------------------------------------------------------ socket layer
class TestSocketWrappers:
    def test_send_read_round_trip(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, FrameKind.RESULT, b"hello")
            assert read_frame(right) == (FrameKind.RESULT, b"hello")
        finally:
            left.close()
            right.close()

    def test_clean_eof_between_frames(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, FrameKind.BYE, b"")
            left.close()
            assert read_frame(right) == (FrameKind.BYE, b"")
            with pytest.raises(ConnectionClosed) as closed:
                read_frame(right)
            assert closed.value.partial is False
        finally:
            right.close()

    def test_abrupt_eof_mid_frame(self):
        left, right = socket.socketpair()
        try:
            wire = encode_frame(FrameKind.BLOB, b"y" * 1024)
            left.sendall(wire[:HEADER_BYTES + 100])
            left.close()
            with pytest.raises(ConnectionClosed) as closed:
                read_frame(right)
            assert closed.value.partial is True
        finally:
            right.close()

    def test_abrupt_eof_mid_header(self):
        left, right = socket.socketpair()
        try:
            left.sendall(encode_frame(FrameKind.TASK, b"z")[:5])
            left.close()
            with pytest.raises(ConnectionClosed) as closed:
                read_frame(right)
            assert closed.value.partial is True
        finally:
            right.close()

    def test_read_frame_enforces_max_bytes(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">4sBQ", MAGIC, FrameKind.BLOB, 1 << 40))
            with pytest.raises(FrameError, match="exceeds"):
                read_frame(right, max_frame_bytes=1 << 20)
        finally:
            left.close()
            right.close()

    def test_large_frame_crosses_in_pieces(self):
        # bigger than any single recv: exercises the reassembly loop
        payload = bytes(range(256)) * 4096  # 1 MiB
        left, right = socket.socketpair()
        try:
            writer = threading.Thread(
                target=send_frame, args=(left, FrameKind.BLOB, payload))
            writer.start()
            kind, received = read_frame(right)
            writer.join()
            assert kind == FrameKind.BLOB
            assert received == payload
        finally:
            left.close()
            right.close()


# -------------------------------------------------------------- handshake
class TestHandshake:
    """Mutual challenge-response: both sides verify, token stays secret."""

    def _run(self, worker_token, server_token):
        """Both handshake halves over a socketpair; their outcomes."""
        left, right = socket.socketpair()
        left.settimeout(5.0)
        right.settimeout(5.0)
        outcome = {}

        def worker_side():
            try:
                worker_handshake(left, worker_token)
                outcome["worker"] = "ok"
            except Exception as exc:
                outcome["worker"] = exc
            finally:
                left.close()

        thread = threading.Thread(target=worker_side)
        thread.start()
        try:
            outcome["pid"] = server_handshake(right, server_token)
            outcome["server"] = "ok"
        except Exception as exc:
            outcome["server"] = exc
        finally:
            thread.join(timeout=5)
            right.close()
        return outcome

    def test_matching_tokens_authenticate_both_sides(self):
        import os
        outcome = self._run("sesame", "sesame")
        assert outcome["worker"] == "ok"
        assert outcome["server"] == "ok"
        assert outcome["pid"] == os.getpid()

    def test_token_mismatch_fails_on_the_worker_side_first(self):
        # the worker verifies the executor's proof before answering: a
        # connecting party without the token gets rejected, not served
        outcome = self._run("right", "wrong")
        assert isinstance(outcome["worker"], FrameError)
        assert "authentication" in str(outcome["worker"])
        assert outcome["server"] != "ok"

    def test_server_rejects_a_forged_proof(self):
        # an attacker who answers the challenge without the token (any
        # guessed MAC) must not authenticate
        left, right = socket.socketpair()
        left.settimeout(5.0)
        right.settimeout(5.0)
        outcome = {}

        def attacker():
            send_frame(left, FrameKind.HELLO,
                       b"\x00" * NONCE_BYTES + struct.pack(">Q", 1234))
            kind, _ = read_frame(left)
            assert kind == FrameKind.WELCOME
            send_frame(left, FrameKind.AUTH, b"\x00" * 32)

        thread = threading.Thread(target=attacker)
        thread.start()
        try:
            with pytest.raises(FrameError, match="authentication"):
                server_handshake(right, "the-real-token")
        finally:
            thread.join(timeout=5)
            left.close()
            right.close()

    def test_server_rejects_a_malformed_hello_without_unpickling(self):
        # pre-auth payloads are validated as fixed-length raw bytes;
        # arbitrary (e.g. pickled) HELLO payloads are refused outright
        left, right = socket.socketpair()
        right.settimeout(5.0)
        try:
            send_frame(left, FrameKind.HELLO, b"not a nonce")
            with pytest.raises(FrameError, match="malformed HELLO"):
                server_handshake(right, "token")
        finally:
            left.close()
            right.close()

    def test_token_never_crosses_the_wire(self, monkeypatch):
        token = "hunter2-super-secret"
        recorded = []
        real_send = framing.send_frame

        def sniffing_send(sock, kind, payload):
            recorded.append(payload)
            real_send(sock, kind, payload)

        monkeypatch.setattr(framing, "send_frame", sniffing_send)
        outcome = self._run(token, token)
        assert outcome["worker"] == "ok" and outcome["server"] == "ok"
        assert len(recorded) == 3  # HELLO, WELCOME, AUTH
        for payload in recorded:
            assert token.encode() not in payload
