"""Personalized *sparse* federated learning baselines.

LotteryFL, Hermes, FedSpa and FedP3 all give every client its own sparse
sub-model.  They differ in how the personal mask evolves (dense-to-sparse
magnitude pruning, sparse-to-sparse prune-and-regrow, capability-driven
dropout) and in whether the sparse ratio is fixed, decayed or set by device
capability.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..federated.aggregation import masked_average
from ..federated.client import Client
from ..federated.local import train_locally
from ..federated.strategy import ClientUpdate, Strategy
from ..nn.params import ParamDict, copy_params, multiply
from ..sparsity.masks import UnitPattern, build_parameter_mask
from ..sparsity.patterns import magnitude_pattern, ordered_pattern, random_pattern
from ..systems.devices import affordable_ratio
from .personalized import head_keys


class PersonalSparseStrategy(Strategy):
    """Shared plumbing for per-client sparse personalization baselines."""

    name = "personal_sparse"

    # ------------------------------------------------------------- hooks
    def current_ratio(self, client: Client, round_index: int) -> float:
        raise NotImplementedError

    def current_pattern(self, client: Client, ratio: float,
                        round_index: int) -> UnitPattern:
        raise NotImplementedError

    def after_training(self, client: Client, params: ParamDict,
                       pattern: UnitPattern, ratio: float,
                       train_accuracy: float) -> None:
        """Update per-client mask/ratio state after a round (default: keep)."""

    # ------------------------------------------------------ local update
    def local_update(self, round_index: int, client: Client) -> ClientUpdate:
        context = self._require_context()
        config = context.config
        ratio = float(np.clip(self.current_ratio(client, round_index), 0.05, 1.0))
        context.model.set_parameters(self.global_params)
        pattern = self.current_pattern(client, ratio, round_index)
        param_mask = build_parameter_mask(context.model, pattern)
        result = train_locally(
            context.model, self.global_params, client.train_data,
            iterations=config.local_iterations, batch_size=config.batch_size,
            learning_rate=config.learning_rate, momentum=config.momentum,
            clip_norm=config.clip_norm, pattern=pattern, param_mask=param_mask,
            rng=self._client_rng(round_index, client.client_id))
        personal = multiply(result.params, param_mask)
        client.state["personal_params"] = personal
        client.state["personal_pattern"] = pattern
        self.after_training(client, result.params, pattern, ratio,
                            result.train_accuracy)
        flops, upload, download = self._round_footprint(client, pattern=pattern)
        return ClientUpdate(
            client_id=client.client_id, params=personal,
            num_examples=client.num_train_examples,
            train_accuracy=result.train_accuracy, train_loss=result.train_loss,
            pattern=pattern, sparse_ratio=ratio, flops=flops,
            upload_bytes=upload, download_bytes=download)

    # --------------------------------------------------------- aggregation
    def aggregate(self, round_index: int, updates: List[ClientUpdate]) -> None:
        if not updates:
            return
        context = self._require_context()
        masks = []
        for update in updates:
            context.model.set_parameters(self.global_params)
            masks.append(build_parameter_mask(context.model, update.pattern))
        self.global_params = masked_average(
            self.global_params, [u.params for u in updates], masks,
            [u.num_examples for u in updates])

    # ---------------------------------------------------------- evaluation
    def client_evaluation(self, client: Client) -> Tuple[ParamDict, Optional[UnitPattern]]:
        personal = client.state.get("personal_params")
        if personal is None:
            return self.global_params, None
        return personal, client.state.get("personal_pattern")


class LotteryFL(PersonalSparseStrategy):
    """LotteryFL: per-client lottery tickets found by gradual magnitude pruning.

    A client's ratio starts at 1 and is multiplied by ``prune_rate`` whenever
    its local training accuracy exceeds ``accuracy_threshold``, down to
    ``min_ratio``; the ticket mask is the magnitude pattern of the current
    global model at that ratio.
    """

    name = "lotteryfl"

    def __init__(self, prune_rate: float = 0.8, accuracy_threshold: float = 0.5,
                 min_ratio: float = 0.3) -> None:
        super().__init__()
        if not 0.0 < prune_rate < 1.0:
            raise ValueError("prune_rate must be in (0, 1)")
        if not 0.0 < min_ratio <= 1.0:
            raise ValueError("min_ratio must be in (0, 1]")
        self.prune_rate = prune_rate
        self.accuracy_threshold = accuracy_threshold
        self.min_ratio = min_ratio

    def current_ratio(self, client: Client, round_index: int) -> float:
        return client.state.get("ratio", 1.0)

    def current_pattern(self, client: Client, ratio: float,
                        round_index: int) -> UnitPattern:
        return magnitude_pattern(self._require_context().model, ratio)

    def after_training(self, client: Client, params: ParamDict,
                       pattern: UnitPattern, ratio: float,
                       train_accuracy: float) -> None:
        if train_accuracy >= self.accuracy_threshold:
            client.state["ratio"] = max(self.min_ratio, ratio * self.prune_rate)
        else:
            client.state["ratio"] = ratio


class Hermes(PersonalSparseStrategy):
    """Hermes: structured magnitude pruning of personal models with decayed ratio.

    The personal mask is re-derived from the *client's own* trained weights
    (not the global model) so the retained channels track what matters for the
    local data; the ratio shrinks by ``prune_step`` every ``prune_every``
    rounds of participation until ``min_ratio``.
    """

    name = "hermes"

    def __init__(self, prune_step: float = 0.1, prune_every: int = 2,
                 min_ratio: float = 0.4) -> None:
        super().__init__()
        if not 0.0 < prune_step < 1.0:
            raise ValueError("prune_step must be in (0, 1)")
        if prune_every <= 0:
            raise ValueError("prune_every must be positive")
        self.prune_step = prune_step
        self.prune_every = prune_every
        self.min_ratio = min_ratio

    def current_ratio(self, client: Client, round_index: int) -> float:
        return client.state.get("ratio", 1.0)

    def current_pattern(self, client: Client, ratio: float,
                        round_index: int) -> UnitPattern:
        context = self._require_context()
        personal = client.state.get("personal_params")
        if personal is not None:
            # score units by the client's own trained weight magnitudes
            context.model.set_parameters(personal)
            pattern = magnitude_pattern(context.model, ratio)
            context.model.set_parameters(self.global_params)
            return pattern
        return magnitude_pattern(context.model, ratio)

    def after_training(self, client: Client, params: ParamDict,
                       pattern: UnitPattern, ratio: float,
                       train_accuracy: float) -> None:
        participations = client.state.get("participations", 0) + 1
        client.state["participations"] = participations
        if participations % self.prune_every == 0:
            client.state["ratio"] = max(self.min_ratio, ratio - self.prune_step)
        else:
            client.state["ratio"] = ratio


class FedSpa(PersonalSparseStrategy):
    """FedSpa: sparse-to-sparse personalization with a constant uniform ratio.

    Every client always trains at ``ratio``; its personal pattern evolves by
    dropping the lowest-magnitude retained units and regrowing the same number
    of random pruned units each round (a structured RigL-style update).
    """

    name = "fedspa"

    def __init__(self, ratio: float = 0.5, regrow_fraction: float = 0.2) -> None:
        super().__init__()
        if not 0.0 < ratio <= 1.0:
            raise ValueError("ratio must be in (0, 1]")
        if not 0.0 <= regrow_fraction <= 1.0:
            raise ValueError("regrow_fraction must be in [0, 1]")
        self.ratio = ratio
        self.regrow_fraction = regrow_fraction

    def current_ratio(self, client: Client, round_index: int) -> float:
        return self.ratio

    def current_pattern(self, client: Client, ratio: float,
                        round_index: int) -> UnitPattern:
        context = self._require_context()
        pattern = client.state.get("personal_pattern")
        if pattern is None:
            rng = self._client_rng(round_index, client.client_id)
            return random_pattern(context.model, ratio, rng=rng)
        return self._prune_and_regrow(client, pattern, round_index)

    def _prune_and_regrow(self, client: Client, pattern: UnitPattern,
                          round_index: int) -> UnitPattern:
        context = self._require_context()
        rng = self._client_rng(round_index, client.client_id)
        personal = client.state.get("personal_params", self.global_params)
        context.model.set_parameters(personal)
        magnitudes = context.model.unit_weight_magnitudes()
        context.model.set_parameters(self.global_params)
        new_pattern: UnitPattern = {}
        for name, mask in pattern.items():
            mask = np.asarray(mask, dtype=bool).copy()
            kept = np.where(mask)[0]
            pruned = np.where(~mask)[0]
            swaps = min(len(pruned),
                        max(0, int(round(self.regrow_fraction * len(kept)))))
            if swaps > 0 and len(kept) > swaps:
                scores = magnitudes[name][kept]
                drop = kept[np.argsort(scores)[:swaps]]
                grow = rng.choice(pruned, size=swaps, replace=False)
                mask[drop] = False
                mask[grow] = True
            new_pattern[name] = mask
        return new_pattern


class FedP3(PersonalSparseStrategy):
    """FedP3: capability-driven dropout plus a personal head (no learned pattern).

    The body is pruned with an ordered pattern sized by the client capability;
    the output head is kept personal exactly as in FedPer.  This mirrors the
    paper's description: personalization under model heterogeneity but with a
    heuristic (uniform/ordered) pattern.
    """

    name = "fedp3"

    def current_ratio(self, client: Client, round_index: int) -> float:
        return affordable_ratio(client.capability)

    def current_pattern(self, client: Client, ratio: float,
                        round_index: int) -> UnitPattern:
        return ordered_pattern(self._require_context().model, ratio)

    def local_update(self, round_index: int, client: Client) -> ClientUpdate:
        update = super().local_update(round_index, client)
        # keep the head personal: remember it and strip it from what is shared
        personal = client.state["personal_params"]
        client.state["personal_head"] = {key: personal[key]
                                         for key in head_keys(personal)}
        return update

    def aggregate(self, round_index: int, updates: List[ClientUpdate]) -> None:
        if not updates:
            return
        previous_head = {key: np.array(value, copy=True)
                         for key, value in self.global_params.items()
                         if key in head_keys(self.global_params)}
        super().aggregate(round_index, updates)
        self.global_params.update(previous_head)

    def client_evaluation(self, client: Client) -> Tuple[ParamDict, Optional[UnitPattern]]:
        params, pattern = super().client_evaluation(client)
        personal_head = client.state.get("personal_head")
        if personal_head is not None:
            params = copy_params(params)
            params.update(personal_head)
        return params, pattern
