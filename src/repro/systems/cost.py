"""Local and global time-cost model (Eq. 14 and Eq. 18 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..sparsity.accounting import SparseCost
from .devices import DeviceProfile


@dataclass(frozen=True)
class CostBreakdown:
    """Time cost of one client's round, split into compute and communication."""

    computation_seconds: float
    communication_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.computation_seconds + self.communication_seconds


class LocalCostModel:
    """Implements ``T_k = F_hat / F_k + alpha * B_hat / B_k`` (Eq. 14).

    ``alpha`` weighs communication against computation exactly as in the
    paper; the available compute ``F_k`` reflects the device's (possibly
    fluctuating) capability in the current round.
    """

    def __init__(self, alpha: float = 1.0, *, seed: int = 0) -> None:
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self.seed = seed

    def client_cost(self, device: DeviceProfile, cost: SparseCost,
                    round_index: int = 0) -> CostBreakdown:
        """Time needed by ``device`` to execute a round with footprint ``cost``."""
        capability = device.available_capability(round_index, seed=self.seed)
        flops_per_second = capability * device.flops_per_second / device.capability
        computation = cost.flops / flops_per_second if flops_per_second > 0 else 0.0
        transferred = cost.upload_bytes + cost.download_bytes
        communication = (self.alpha * transferred
                         / device.bandwidth_bytes_per_second)
        return CostBreakdown(computation, communication)

    @staticmethod
    def round_time(client_costs: Iterable[CostBreakdown]) -> float:
        """Synchronous round time: the slowest selected client (Eq. 18)."""
        costs = [cost.total_seconds for cost in client_costs]
        return max(costs) if costs else 0.0

    @staticmethod
    def round_time_by_client(client_costs: Mapping[int, CostBreakdown]) -> float:
        """Same as :meth:`round_time` for a ``{client_id: cost}`` mapping."""
        return LocalCostModel.round_time(client_costs.values())
