"""FedLPS reproduction: learnable sparse customization for heterogeneous FL.

Public API overview
-------------------

* :mod:`repro.nn` — numpy neural-network substrate (layers, losses, SGD).
* :mod:`repro.models` — CPU-sized backbones with structured-unit layouts.
* :mod:`repro.data` — synthetic federated datasets and non-IID partitioners.
* :mod:`repro.sparsity` — sparse patterns, masks and cost accounting.
* :mod:`repro.systems` — device capabilities, cost model and metrics.
* :mod:`repro.federated` — clients, strategies, trainer and aggregation.
* :mod:`repro.core` — FedLPS itself: importance learning, learnable sparse
  training and the P-UCBV bandit.
* :mod:`repro.baselines` — the 20 comparison methods of the paper.
* :mod:`repro.experiments` — presets plus per-table/figure reproduction.

Quickstart::

    from repro.core import FedLPS
    from repro.data import build_federated_dataset
    from repro.federated import FederatedConfig, run_federated
    from repro.models import build_model_for_dataset

    dataset = build_federated_dataset("mnist", num_clients=16)
    history = run_federated(
        FedLPS(), dataset, lambda: build_model_for_dataset("mnist"),
        config=FederatedConfig(num_rounds=20))
    print(history.final_accuracy(), history.total_flops)
"""

from . import baselines, core, data, experiments, federated, models, nn, sparsity, systems
from .baselines import build_strategy
from .core import FedLPS
from .data import build_federated_dataset
from .federated import FederatedConfig, FederatedTrainer, run_federated
from .models import build_model_for_dataset

__version__ = "1.0.0"

__all__ = [
    "nn",
    "models",
    "data",
    "sparsity",
    "systems",
    "federated",
    "core",
    "baselines",
    "experiments",
    "FedLPS",
    "build_strategy",
    "build_federated_dataset",
    "build_model_for_dataset",
    "FederatedConfig",
    "FederatedTrainer",
    "run_federated",
    "__version__",
]
