"""Evaluation of global and personalized models on client test shards."""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from ..data.dataset import Dataset
from ..nn import accuracy, softmax_cross_entropy
from ..nn.model import Sequential
from ..sparsity.masks import gates_from_pattern


def evaluate_params(model: Sequential, params: Mapping[str, np.ndarray],
                    dataset: Dataset, *, batch_size: int = 64,
                    pattern: Optional[Mapping[str, np.ndarray]] = None
                    ) -> Dict[str, float]:
    """Loss and accuracy of ``params`` on ``dataset``.

    ``pattern`` installs structured gates for methods whose inference model is
    a sub-model of the global architecture.
    """
    if len(dataset) == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    model.set_parameters(params)
    if pattern is not None:
        model.set_unit_gates(gates_from_pattern(pattern))
    losses = []
    correct = 0.0
    total = 0
    for start in range(0, len(dataset), batch_size):
        batch_x = dataset.x[start:start + batch_size]
        batch_y = dataset.y[start:start + batch_size]
        logits = model.forward(batch_x, train=False)
        loss, _ = softmax_cross_entropy(logits, batch_y)
        losses.append(loss * len(batch_y))
        correct += accuracy(logits, batch_y) * len(batch_y)
        total += len(batch_y)
    model.set_unit_gates(None)
    return {"loss": float(np.sum(losses) / total), "accuracy": float(correct / total)}


def average_personalized_accuracy(model: Sequential,
                                  params_by_client: Mapping[int, Mapping[str, np.ndarray]],
                                  test_sets: Mapping[int, Dataset], *,
                                  patterns_by_client: Optional[
                                      Mapping[int, Mapping[str, np.ndarray]]] = None,
                                  batch_size: int = 64) -> float:
    """The paper's headline metric: mean local-test accuracy across clients."""
    if not params_by_client:
        raise ValueError("no client parameters to evaluate")
    accuracies = []
    for client_id, params in params_by_client.items():
        pattern = None
        if patterns_by_client is not None:
            pattern = patterns_by_client.get(client_id)
        result = evaluate_params(model, params, test_sets[client_id],
                                 batch_size=batch_size, pattern=pattern)
        accuracies.append(result["accuracy"])
    return float(np.mean(accuracies))
