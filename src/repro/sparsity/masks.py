"""Unit masks and the mask-construction operator ``M(P | omega, s)``.

Terminology follows the paper:

* a **sparse ratio** ``s`` in ``(0, 1]`` is the fraction of units retained;
* a **sparse pattern** ``P`` is a binary choice of which units are retained;
* the **local mask** ``m`` is the parameter-level binary mask obtained by
  expanding the pattern over the model parameters (Eq. 2 / Eq. 5).

Patterns are stored per layer as ``{layer_name: bool array of length
n_units}`` and parameter masks as ``{"layer.param": array}`` matching the
parameter snapshots used everywhere else.
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from ..nn.model import Sequential

UnitPattern = Dict[str, np.ndarray]
ParamMask = Dict[str, np.ndarray]


def validate_sparse_ratio(ratio: float) -> float:
    """Check that a sparse ratio is usable (fraction of *retained* units)."""
    ratio = float(ratio)
    if not 0.0 < ratio <= 1.0:
        raise ValueError(f"sparse ratio must be in (0, 1], got {ratio}")
    return ratio


def units_to_keep(n_units: int, ratio: float) -> int:
    """Number of units retained in a layer of ``n_units`` at ``ratio``.

    At least one unit is always kept so that the network never collapses,
    matching how structured-sparsity FL implementations behave in practice.
    """
    ratio = validate_sparse_ratio(ratio)
    return int(np.clip(int(round(ratio * n_units)), 1, n_units))


def pattern_from_scores(model: Sequential, scores: Mapping[str, np.ndarray],
                        ratio: float) -> UnitPattern:
    """Keep the highest-scoring units of each layer at the given ratio.

    This is the layer-wise ``(1 - s)``-quantile thresholding of Eq. (4): the
    retained units are exactly those whose score is at or above the
    layer-wise threshold.  Ties are broken deterministically by unit index.
    """
    ratio = validate_sparse_ratio(ratio)
    pattern: UnitPattern = {}
    for group in model.unit_groups:
        layer_scores = np.asarray(scores[group.layer_name], dtype=np.float64)
        if layer_scores.shape != (group.n_units,):
            raise ValueError(
                f"scores for {group.layer_name!r} must have shape "
                f"({group.n_units},), got {layer_scores.shape}")
        keep = units_to_keep(group.n_units, ratio)
        # argsort is ascending; take the `keep` largest scores.
        order = np.argsort(layer_scores, kind="stable")
        kept_indices = order[-keep:]
        mask = np.zeros(group.n_units, dtype=bool)
        mask[kept_indices] = True
        pattern[group.layer_name] = mask
    return pattern


def importance_threshold(scores: np.ndarray, ratio: float) -> float:
    """The ``(1 - s)``-quantile threshold ``tau`` of Eq. (4) for one layer."""
    ratio = validate_sparse_ratio(ratio)
    scores = np.asarray(scores, dtype=np.float64)
    if scores.size == 0:
        raise ValueError("cannot compute a threshold over zero units")
    return float(np.quantile(scores, 1.0 - ratio))


def full_pattern(model: Sequential) -> UnitPattern:
    """A pattern keeping every unit (the dense model)."""
    return {group.layer_name: np.ones(group.n_units, dtype=bool)
            for group in model.unit_groups}


def build_parameter_mask(model: Sequential, pattern: Mapping[str, np.ndarray]
                         ) -> ParamMask:
    """Expand a unit pattern into a parameter-level binary mask, ``M(P|omega, s)``."""
    unit_masks = {name: np.asarray(mask, dtype=np.float64)
                  for name, mask in pattern.items()}
    return model.expand_unit_masks(unit_masks)


def pattern_keep_ratio(pattern: Mapping[str, np.ndarray]) -> float:
    """Fraction of units retained across the whole pattern."""
    total = sum(int(np.asarray(mask).size) for mask in pattern.values())
    kept = sum(int(np.count_nonzero(mask)) for mask in pattern.values())
    if total == 0:
        return 1.0
    return kept / total


def per_layer_keep_ratio(pattern: Mapping[str, np.ndarray]) -> Dict[str, float]:
    """Fraction of units retained per layer."""
    ratios = {}
    for name, mask in pattern.items():
        mask = np.asarray(mask)
        ratios[name] = float(np.count_nonzero(mask)) / mask.size if mask.size else 1.0
    return ratios


def pattern_overlap(left: Mapping[str, np.ndarray],
                    right: Mapping[str, np.ndarray]) -> float:
    """Jaccard overlap between two patterns' retained unit sets."""
    intersection = 0
    union = 0
    for name in left:
        a = np.asarray(left[name], dtype=bool)
        b = np.asarray(right[name], dtype=bool)
        intersection += int(np.count_nonzero(a & b))
        union += int(np.count_nonzero(a | b))
    return intersection / union if union else 1.0


def gates_from_pattern(pattern: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Convert a boolean pattern into float unit gates (1.0 keep / 0.0 prune)."""
    return {name: np.asarray(mask, dtype=np.float64) for name, mask in pattern.items()}
