"""Training history and evaluation metrics for federated simulations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class RoundRecord:
    """Everything the simulator measured about one communication round."""

    round_index: int
    selected_clients: List[int]
    train_accuracy: float
    test_accuracy: float
    round_flops: float
    round_time_seconds: float
    upload_bytes: float
    download_bytes: float
    cumulative_flops: float
    cumulative_time_seconds: float
    sparse_ratios: Dict[int, float] = field(default_factory=dict)
    extras: Dict[str, float] = field(default_factory=dict)
    #: False when evaluation was skipped this round and ``test_accuracy``
    #: merely carries the last fresh value forward (``eval_every > 1``)
    evaluated: bool = True
    #: simulated wall-clock the server spent on the round under the active
    #: scenario (equals ``round_time_seconds`` in the ideal setting, but can
    #: exceed it when the server idles until a deadline, or undercut it when
    #: stragglers are dropped early)
    sim_time: float = 0.0
    cumulative_sim_time: float = 0.0
    #: invited clients that did not contribute to aggregation — unavailable
    #: at invitation time or cut by the participation policy
    dropped: List[int] = field(default_factory=list)
    #: how many of ``dropped`` ran their update but were cut as stragglers
    straggler_count: int = 0
    #: mean staleness (in server versions) of the updates aggregated this
    #: round — always 0 under synchronous aggregation
    staleness_mean: float = 0.0
    #: FedBuff buffer occupancy at the end of the round (0 outside fedbuff)
    buffer_size: int = 0

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON representation (used by the sweep result cache).

        The asynchronous-aggregation fields (``staleness_mean``,
        ``buffer_size``) are only emitted when non-default, so synchronous
        histories — including every golden fixture — serialize exactly as
        they did before the event-driven server core existed.
        """
        payload: Dict[str, object] = {
            "round_index": self.round_index,
            "selected_clients": list(self.selected_clients),
            "train_accuracy": self.train_accuracy,
            "test_accuracy": self.test_accuracy,
            "round_flops": self.round_flops,
            "round_time_seconds": self.round_time_seconds,
            "upload_bytes": self.upload_bytes,
            "download_bytes": self.download_bytes,
            "cumulative_flops": self.cumulative_flops,
            "cumulative_time_seconds": self.cumulative_time_seconds,
            "sparse_ratios": {str(cid): ratio
                              for cid, ratio in self.sparse_ratios.items()},
            "extras": dict(self.extras),
            "evaluated": self.evaluated,
            "sim_time": self.sim_time,
            "cumulative_sim_time": self.cumulative_sim_time,
            "dropped": list(self.dropped),
            "straggler_count": self.straggler_count,
        }
        if self.staleness_mean or self.buffer_size:
            payload["staleness_mean"] = self.staleness_mean
            payload["buffer_size"] = self.buffer_size
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RoundRecord":
        """Inverse of :meth:`to_dict` (JSON string keys become ints again)."""
        data = dict(payload)
        data["selected_clients"] = [int(cid)
                                    for cid in data.get("selected_clients", [])]
        data["sparse_ratios"] = {
            int(cid): float(ratio)
            for cid, ratio in dict(data.get("sparse_ratios", {})).items()}
        data["extras"] = dict(data.get("extras", {}))
        data.setdefault("evaluated", True)
        data.setdefault("sim_time", 0.0)
        data.setdefault("cumulative_sim_time", 0.0)
        data["dropped"] = [int(cid) for cid in data.get("dropped", [])]
        data.setdefault("straggler_count", 0)
        data.setdefault("staleness_mean", 0.0)
        data.setdefault("buffer_size", 0)
        return cls(**data)


@dataclass
class TrainingHistory:
    """Ordered per-round records plus convenience accessors.

    ``test_accuracy`` is the paper's headline metric: the average accuracy of
    all clients' (personalized) models on their local test data.
    """

    method: str
    dataset: str
    records: List[RoundRecord] = field(default_factory=list)

    def append(self, record: RoundRecord) -> None:
        if self.records and record.round_index <= self.records[-1].round_index:
            raise ValueError("round records must be appended in increasing order")
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------- series
    @property
    def accuracies(self) -> List[float]:
        return [record.test_accuracy for record in self.records]

    @property
    def cumulative_flops(self) -> List[float]:
        return [record.cumulative_flops for record in self.records]

    @property
    def cumulative_time(self) -> List[float]:
        return [record.cumulative_time_seconds for record in self.records]

    @property
    def total_flops(self) -> float:
        return self.records[-1].cumulative_flops if self.records else 0.0

    @property
    def total_time_seconds(self) -> float:
        return self.records[-1].cumulative_time_seconds if self.records else 0.0

    @property
    def total_upload_bytes(self) -> float:
        return float(sum(record.upload_bytes for record in self.records))

    @property
    def total_sim_time(self) -> float:
        """Simulated wall-clock under the scenario (0 for pre-scenario runs)."""
        return self.records[-1].cumulative_sim_time if self.records else 0.0

    @property
    def total_dropped(self) -> int:
        """Invited-but-not-aggregated client slots across the whole run."""
        return int(sum(len(record.dropped) for record in self.records))

    @property
    def total_stragglers(self) -> int:
        return int(sum(record.straggler_count for record in self.records))

    @property
    def mean_staleness(self) -> float:
        """Average per-round mean staleness (0 for synchronous histories)."""
        if not self.records:
            return 0.0
        return float(sum(record.staleness_mean for record in self.records)
                     / len(self.records))

    # ------------------------------------------------------------ summaries
    def final_accuracy(self, last_rounds: int = 3) -> float:
        """Average accuracy over the trailing ``last_rounds`` rounds."""
        if not self.records:
            return 0.0
        tail = self.records[-max(1, last_rounds):]
        return float(sum(record.test_accuracy for record in tail) / len(tail))

    def best_accuracy(self) -> float:
        return max(self.accuracies) if self.records else 0.0

    def time_to_accuracy(self, target: float) -> Optional[float]:
        """Simulated seconds until ``target`` accuracy is first reached."""
        for record in self.records:
            if record.test_accuracy >= target:
                return record.cumulative_time_seconds
        return None

    def sim_time_to_accuracy(self, target: float) -> Optional[float]:
        """Simulated scenario seconds until ``target`` accuracy is reached."""
        for record in self.records:
            if record.test_accuracy >= target:
                return record.cumulative_sim_time
        return None

    def time_to_fraction(self, fraction: float = 0.9) -> Optional[float]:
        """Scenario seconds until ``fraction`` of the run's best accuracy.

        Expressing the target relative to the run's own best keeps
        time-to-accuracy comparable across datasets and scenarios, where
        absolute targets may never be reached.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        best = self.best_accuracy()
        if best <= 0.0:
            return None
        return self.sim_time_to_accuracy(fraction * best)

    def flops_to_accuracy(self, target: float) -> Optional[float]:
        """Cumulative FLOPs until ``target`` accuracy is first reached."""
        for record in self.records:
            if record.test_accuracy >= target:
                return record.cumulative_flops
        return None

    def accuracy_at_flops(self, budget: float) -> float:
        """Best accuracy achieved within a FLOP budget."""
        best = 0.0
        for record in self.records:
            if record.cumulative_flops > budget:
                break
            best = max(best, record.test_accuracy)
        return best

    def as_rows(self) -> List[Dict[str, float]]:
        """Flatten the history into plain dictionaries (for tables / CSV)."""
        return [{
            "round": record.round_index,
            "test_accuracy": record.test_accuracy,
            "train_accuracy": record.train_accuracy,
            "cumulative_flops": record.cumulative_flops,
            "cumulative_time_seconds": record.cumulative_time_seconds,
            "cumulative_sim_time": record.cumulative_sim_time,
            "upload_bytes": record.upload_bytes,
            "dropped": len(record.dropped),
            "stragglers": record.straggler_count,
            "staleness_mean": record.staleness_mean,
        } for record in self.records]

    # --------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON representation (used by the sweep result cache)."""
        return {
            "method": self.method,
            "dataset": self.dataset,
            "records": [record.to_dict() for record in self.records],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TrainingHistory":
        """Rebuild a history from :meth:`to_dict` output."""
        history = cls(method=str(payload["method"]),
                      dataset=str(payload["dataset"]))
        for record in payload.get("records", []):
            history.append(RoundRecord.from_dict(record))
        return history
