"""Figure 6: accuracy under increasing non-IID levels (MNIST)."""

from __future__ import annotations

import pytest

from repro.experiments import noniid_level_sweep

from conftest import bench_overrides, print_rows

METHODS = ("fedper", "hermes", "fedspa", "perfedavg", "fedlps")
MISSING_CLASSES = (2, 4, 6, 8)


@pytest.mark.benchmark(group="figure6")
def test_fig6_noniid_level_sweep(benchmark):
    overrides = bench_overrides()

    def run():
        return noniid_level_sweep(dataset="mnist",
                                  missing_classes=MISSING_CLASSES,
                                  methods=METHODS, overrides=overrides)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_rows("Figure 6: accuracy vs non-IID level (missing classes)", rows)
    assert len(rows) == len(METHODS) * len(MISSING_CLASSES)
    assert all(0.0 <= row["accuracy"] <= 1.0 for row in rows)
