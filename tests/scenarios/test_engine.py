"""Unit tests for the scenario engine: configs, availability, policies."""

from __future__ import annotations

import pytest

from repro.scenarios import (RoundOutcome, ScenarioConfig, ScenarioEngine,
                             available_scenarios, build_scenario,
                             synthetic_availability_trace)


class TestScenarioConfigValidation:
    def test_defaults_are_valid(self):
        ScenarioConfig()

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            ScenarioConfig(policy="vote")

    def test_availability_bounds(self):
        with pytest.raises(ValueError):
            ScenarioConfig(availability=0.0)
        with pytest.raises(ValueError):
            ScenarioConfig(availability=1.5)

    def test_deadline_needs_exactly_one_cutoff(self):
        with pytest.raises(ValueError):
            ScenarioConfig(policy="deadline")
        with pytest.raises(ValueError):
            ScenarioConfig(policy="deadline", deadline_seconds=1.0,
                           deadline_factor=2.0)
        ScenarioConfig(policy="deadline", deadline_seconds=1.0)
        ScenarioConfig(policy="deadline", deadline_factor=2.0)

    def test_fastest_k_needs_k(self):
        with pytest.raises(ValueError):
            ScenarioConfig(policy="fastest-k")
        ScenarioConfig(policy="fastest-k", fastest_k=2)

    def test_over_selection_lower_bound(self):
        with pytest.raises(ValueError):
            ScenarioConfig(over_selection=0.5)

    def test_trace_is_normalized(self):
        config = ScenarioConfig(
            availability_trace={"1": [3, 1, 2]})  # JSON-style keys/values
        assert config.availability_trace == {1: (1, 2, 3)}


class TestAvailability:
    def test_full_availability_never_drops(self):
        engine = ScenarioEngine(ScenarioConfig(availability=1.0), seed=0)
        available, unavailable = engine.split_available(0, range(50))
        assert list(available) == list(range(50))
        assert unavailable == []

    def test_decisions_are_deterministic(self):
        first = ScenarioEngine(ScenarioConfig(availability=0.5), seed=7)
        second = ScenarioEngine(ScenarioConfig(availability=0.5), seed=7)
        decisions = [(r, c, first.is_available(r, c))
                     for r in range(10) for c in range(10)]
        assert decisions == [(r, c, second.is_available(r, c))
                             for r in range(10) for c in range(10)]

    def test_decisions_depend_on_seed(self):
        a = ScenarioEngine(ScenarioConfig(availability=0.5), seed=0)
        b = ScenarioEngine(ScenarioConfig(availability=0.5), seed=1)
        grid = [(r, c) for r in range(20) for c in range(20)]
        assert ([a.is_available(r, c) for r, c in grid]
                != [b.is_available(r, c) for r, c in grid])

    def test_bernoulli_rate_is_plausible(self):
        engine = ScenarioEngine(ScenarioConfig(availability=0.3), seed=0)
        draws = [engine.is_available(r, c)
                 for r in range(40) for c in range(40)]
        rate = sum(draws) / len(draws)
        assert 0.25 < rate < 0.35

    def test_trace_overrides_bernoulli(self):
        config = ScenarioConfig(availability_trace={0: (1, 3)})
        engine = ScenarioEngine(config, seed=0)
        available, unavailable = engine.split_available(0, [0, 1, 2, 3])
        assert available == [1, 3] and unavailable == [0, 2]
        # rounds missing from the trace leave everyone available
        available, unavailable = engine.split_available(5, [0, 1, 2, 3])
        assert available == [0, 1, 2, 3]


class TestLatency:
    def test_no_stragglers_means_cost_model_latency(self):
        engine = ScenarioEngine(ScenarioConfig(), seed=0)
        assert engine.latency(0, 0, 2.5) == 2.5

    def test_straggler_spike_multiplies(self):
        engine = ScenarioEngine(
            ScenarioConfig(straggler_prob=1.0, straggler_slowdown=4.0), seed=0)
        assert engine.latency(3, 7, 2.0) == pytest.approx(8.0)

    def test_straggler_draws_are_deterministic(self):
        config = ScenarioConfig(straggler_prob=0.5, straggler_slowdown=3.0)
        a = ScenarioEngine(config, seed=9)
        b = ScenarioEngine(config, seed=9)
        values = [a.latency(r, c, 1.0) for r in range(10) for c in range(10)]
        assert values == [b.latency(r, c, 1.0)
                          for r in range(10) for c in range(10)]
        assert set(values) == {1.0, 3.0}

    def test_negative_latency_rejected(self):
        engine = ScenarioEngine(ScenarioConfig(), seed=0)
        with pytest.raises(ValueError):
            engine.latency(0, 0, -1.0)


class TestPolicies:
    LAT = {0: 1.0, 1: 4.0, 2: 2.0, 3: 10.0}

    def test_wait_all_keeps_everyone(self):
        engine = ScenarioEngine(ScenarioConfig(policy="wait-all"), seed=0)
        outcome = engine.resolve(0, self.LAT)
        assert outcome.participants == (0, 1, 2, 3)
        assert outcome.stragglers == ()
        assert outcome.sim_time == 10.0

    def test_absolute_deadline_drops_stragglers(self):
        engine = ScenarioEngine(
            ScenarioConfig(policy="deadline", deadline_seconds=5.0), seed=0)
        outcome = engine.resolve(0, self.LAT)
        assert outcome.participants == (0, 1, 2)
        assert outcome.stragglers == (3,)
        # the server waited the full deadline for the dropped client
        assert outcome.sim_time == 5.0
        assert outcome.deadline == 5.0

    def test_absolute_deadline_without_stragglers_closes_early(self):
        engine = ScenarioEngine(
            ScenarioConfig(policy="deadline", deadline_seconds=50.0), seed=0)
        outcome = engine.resolve(0, self.LAT)
        assert outcome.participants == (0, 1, 2, 3)
        assert outcome.sim_time == 10.0

    def test_relative_deadline_scales_with_fastest(self):
        engine = ScenarioEngine(
            ScenarioConfig(policy="deadline", deadline_factor=2.0), seed=0)
        outcome = engine.resolve(0, self.LAT)
        # cutoff = 2 * 1.0: keeps clients 0 (1.0) and 2 (2.0)
        assert outcome.participants == (0, 2)
        assert outcome.stragglers == (1, 3)
        assert outcome.sim_time == 2.0

    def test_deadline_quorum_waits_past_cutoff(self):
        engine = ScenarioEngine(
            ScenarioConfig(policy="deadline", deadline_seconds=0.5,
                           min_participants=2), seed=0)
        outcome = engine.resolve(0, self.LAT)
        # nobody met the deadline; the server waits for the fastest two
        assert outcome.participants == (0, 2)
        assert outcome.sim_time == 2.0

    def test_fastest_k(self):
        engine = ScenarioEngine(
            ScenarioConfig(policy="fastest-k", fastest_k=2), seed=0)
        outcome = engine.resolve(0, self.LAT)
        assert outcome.participants == (0, 2)
        assert outcome.stragglers == (1, 3)
        assert outcome.sim_time == 2.0

    def test_fastest_k_ties_break_by_client_id(self):
        engine = ScenarioEngine(
            ScenarioConfig(policy="fastest-k", fastest_k=1), seed=0)
        outcome = engine.resolve(0, {5: 1.0, 2: 1.0})
        assert outcome.participants == (2,)

    def test_empty_round(self):
        engine = ScenarioEngine(
            ScenarioConfig(policy="deadline", deadline_seconds=3.0), seed=0)
        outcome = engine.resolve(0, {})
        assert outcome == RoundOutcome((), (), 3.0)

    def test_selection_target_rounds_up(self):
        engine = ScenarioEngine(ScenarioConfig(over_selection=1.5), seed=0)
        assert engine.selection_target(4) == 6
        assert engine.selection_target(3) == 5


class TestNamedScenarios:
    def test_registry_names(self):
        assert available_scenarios() == ["ideal", "flaky", "deadline-tight",
                                         "trace"]

    def test_ideal_is_none(self):
        assert build_scenario("ideal", num_clients=4, num_rounds=2) is None

    @pytest.mark.parametrize("name", ["flaky", "deadline-tight", "trace"])
    def test_named_scenarios_build(self, name):
        scenario = build_scenario(name, num_clients=6, num_rounds=4, seed=1)
        assert scenario is not None and scenario.name == name

    def test_unknown_scenario(self):
        with pytest.raises(ValueError):
            build_scenario("chaos", num_clients=4, num_rounds=2)

    def test_trace_covers_every_round_with_someone(self):
        trace = synthetic_availability_trace(8, 30, seed=3)
        assert set(trace) == set(range(30))
        assert all(len(available) >= 1 for available in trace.values())
        assert all(0 <= cid < 8
                   for available in trace.values() for cid in available)

    def test_trace_is_deterministic(self):
        assert (synthetic_availability_trace(8, 30, seed=3)
                == synthetic_availability_trace(8, 30, seed=3))
        assert (synthetic_availability_trace(8, 30, seed=3)
                != synthetic_availability_trace(8, 30, seed=4))
