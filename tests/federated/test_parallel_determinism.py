"""Determinism suite: histories must be bit-identical across backends.

The parallel subsystem's contract is that an executor changes wall-clock,
never results: every per-client quantity is derived from seeds carried in the
payloads, and all cross-client state flows through ``client.state`` which
workers ship back to the server.  These tests enforce the contract for every
registry strategy (serial vs thread) and for the state-heaviest strategies
through a real spawned process pool.
"""

from __future__ import annotations

import pickle

import pytest

from repro.baselines import available_strategies, build_strategy
from repro.experiments import preset_for, run_method, scaled
from repro.federated import FederatedConfig
from repro.federated.trainer import FederatedTrainer
from repro.models import build_model_for_dataset
from repro.parallel import (ProcessPoolExecutor, SerialExecutor,
                            ThreadPoolExecutor)

TINY = dict(num_clients=4, num_rounds=2, clients_per_round=2,
            examples_per_client=20, local_iterations=2, batch_size=8, seed=3)

#: strategies exercising the riskiest state flows: learnable importance +
#: P-UCBV (fedlps), per-client UCB bandit (fedmp), personal models (ditto)
STATEFUL_METHODS = ["fedlps", "fedmp", "ditto"]

#: scenarios that exercise dropout + deadline decisions on top of fan-out
SCENARIOS = ["flaky", "deadline-tight", "trace"]

#: asynchronous aggregation modes of the event-driven server core
ASYNC_MODES = ["fedasync", "fedbuff"]


def tiny_preset(scenario="ideal", aggregation="sync"):
    return scaled(preset_for("mnist"), scenario=scenario,
                  aggregation=aggregation, **TINY)


def assert_histories_identical(reference, candidate):
    """Field-by-field bitwise comparison of two training histories."""
    assert len(reference.records) == len(candidate.records)
    assert reference.method == candidate.method
    assert reference.to_dict() == candidate.to_dict()


class TestSerialExecutorMatchesInline:
    def test_serial_executor_is_the_reference(self):
        reference = run_method("fedlps", tiny_preset())
        with SerialExecutor() as executor:
            candidate = run_method("fedlps", tiny_preset(), executor=executor)
        assert_histories_identical(reference, candidate)


class TestThreadBackendDeterminism:
    @pytest.mark.parametrize("method", available_strategies())
    def test_every_registry_strategy(self, method):
        reference = run_method(method, tiny_preset())
        with ThreadPoolExecutor(2) as executor:
            candidate = run_method(method, tiny_preset(), executor=executor)
        assert_histories_identical(reference, candidate)


class TestScenarioDeterminism:
    """Scenario engines (dropout, stragglers, deadlines) must not perturb the
    executor contract: the engine's decisions are server-side functions of
    (seed, round, client), so deadline cuts and availability draws cannot
    depend on which worker ran an update or in which order results arrived."""

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_scenarios_identical_serial_vs_thread(self, scenario):
        reference = run_method("fedlps", tiny_preset(scenario))
        with ThreadPoolExecutor(2) as executor:
            candidate = run_method("fedlps", tiny_preset(scenario),
                                   executor=executor)
        assert_histories_identical(reference, candidate)

    def test_scenario_history_actually_drops_clients(self):
        # guard against the scenario silently degenerating to ideal, which
        # would make the cross-backend comparisons above vacuous
        history = run_method("fedlps", tiny_preset("deadline-tight"))
        assert history.total_dropped > 0


class TestAsyncDeterminism:
    """The async schedulers consume completions in (finish_time, client_id)
    order — a pure function of (seed, round, client) — never in real arrival
    order.  Fan-out goes through ``map_unordered``, so these tests would
    catch any leak of real completion order into aggregation."""

    @pytest.mark.parametrize("aggregation", ASYNC_MODES)
    @pytest.mark.parametrize("method", STATEFUL_METHODS)
    def test_async_identical_serial_vs_thread(self, aggregation, method):
        reference = run_method(method, tiny_preset(aggregation=aggregation))
        with ThreadPoolExecutor(2) as executor:
            candidate = run_method(method,
                                   tiny_preset(aggregation=aggregation),
                                   executor=executor)
        assert_histories_identical(reference, candidate)

    @pytest.mark.parametrize("aggregation", ASYNC_MODES)
    def test_async_scenarios_identical_serial_vs_thread(self, aggregation):
        reference = run_method("fedavg",
                               tiny_preset("flaky", aggregation))
        with ThreadPoolExecutor(2) as executor:
            candidate = run_method("fedavg", tiny_preset("flaky", aggregation),
                                   executor=executor)
        assert_histories_identical(reference, candidate)

    def test_async_actually_accumulates_staleness(self):
        # guard against the async path degenerating to sync, which would
        # make the cross-backend comparisons above vacuous
        history = run_method("fedavg", tiny_preset("flaky", "fedasync"))
        assert history.mean_staleness > 0


class TestProcessBackendDeterminism:
    @pytest.fixture(scope="class")
    def pool(self):
        with ProcessPoolExecutor(2) as executor:
            yield executor

    @pytest.mark.parametrize("method", STATEFUL_METHODS)
    def test_stateful_strategies(self, method, pool):
        reference = run_method(method, tiny_preset())
        candidate = run_method(method, tiny_preset(), executor=pool)
        assert_histories_identical(reference, candidate)

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_scenarios_through_processes(self, scenario, pool):
        # the acceptance-criteria scenario: a deadline/dropout run through a
        # real spawned process pool, bit-identical to the serial reference
        reference = run_method("fedavg", tiny_preset(scenario))
        candidate = run_method("fedavg", tiny_preset(scenario), executor=pool)
        assert_histories_identical(reference, candidate)

    @pytest.mark.parametrize("aggregation", ASYNC_MODES)
    def test_async_through_processes(self, aggregation, pool):
        # the acceptance-criteria scenario: fedasync/fedbuff histories are
        # bit-identical between the serial reference and a real spawned
        # process pool consuming completions out of real-time order
        reference = run_method("fedavg", tiny_preset("flaky", aggregation))
        candidate = run_method("fedavg", tiny_preset("flaky", aggregation),
                               executor=pool)
        assert_histories_identical(reference, candidate)

    def test_sweep_jobs_through_processes(self, pool):
        # the acceptance-criteria scenario: a >=2-method sweep dispatched as
        # whole-run jobs through a 2-worker process pool
        from repro.experiments import run_methods

        reference = run_methods(["fedavg", "fedlps"], tiny_preset())
        candidate = run_methods(["fedavg", "fedlps"], tiny_preset(),
                                executor=pool)
        assert set(reference) == set(candidate)
        for method in reference:
            assert_histories_identical(reference[method], candidate[method])


class TestStrategyPickling:
    @pytest.mark.parametrize("method", available_strategies())
    def test_fresh_strategy_round_trips(self, method):
        strategy = build_strategy(method)
        clone = pickle.loads(pickle.dumps(strategy))
        assert type(clone) is type(strategy)
        assert clone.name == strategy.name

    @pytest.mark.parametrize("method", available_strategies())
    def test_configured_strategy_round_trips(self, method, small_fed_dataset,
                                             small_fleet):
        config = FederatedConfig(num_rounds=1, clients_per_round=2,
                                 local_iterations=1, batch_size=8, seed=0)
        trainer = FederatedTrainer(
            build_strategy(method), small_fed_dataset,
            lambda: build_model_for_dataset("mnist", seed=0),
            config=config, fleet=small_fleet)
        trainer.strategy.setup(trainer.context)
        clone = pickle.loads(pickle.dumps(trainer.strategy))
        assert clone.global_params.keys() == trainer.strategy.global_params.keys()
        for key, value in trainer.strategy.global_params.items():
            assert (clone.global_params[key] == value).all()
