"""Remote worker process for the socket backend.

Run as a module::

    python -m repro.parallel.worker --connect HOST:PORT --token TOK
    python -m repro.parallel.worker --listen  HOST:PORT --token TOK

``--connect`` is the localhost shape: :class:`SocketExecutor` spawns this
process and it dials back into the executor's listener, serves tasks until
the connection closes, then exits.  ``--listen`` is the multi-host daemon
shape: the process binds the given address, serves one executor connection
at a time, and goes back to accepting when the connection ends — so it
survives server restarts and ``replenish()`` reconnects.

The serve loop is deliberately tiny: authenticate (a mutual HMAC
challenge-response over the shared token — the executor must prove it
holds the token before a single task is accepted, and the token itself
never crosses the wire; see :mod:`repro.parallel.framing`), then for
each ``TASK`` frame unpickle ``(task_id, fn, payload)``, swap any
shared-memory broadcast handles in the payload for inline ones (digest
cache first, ``FETCH``/``BLOB`` round trip on a miss), run ``fn`` and
answer with one ``RESULT`` or ``FAILED``.  Injected faults
run *inside* ``fn`` (the supervision wrapper travels with the task), so a
real crash (``os._exit``) kills this process and a real hang stalls it —
exactly the failure modes the executor's supervision contract recovers
from.
"""

from __future__ import annotations

import argparse
import pickle
import socket
import sys
from typing import Optional

from ..util import BoundedLRU
from .distributed import RemoteTaskError, resolve_handles
from .framing import (HANDSHAKE_TIMEOUT, MAX_FRAME_BYTES, ConnectionClosed,
                      FrameError, FrameKind, read_frame, send_frame,
                      worker_handshake)

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

#: broadcast segments cached by digest — the run-invariant session plus the
#: current round's broadcasts, with slack, mirroring the materialize cache
SEGMENT_CACHE_LIMIT = 8


def _pickle_failure(task_id: int, exc: BaseException) -> bytes:
    """The FAILED payload for ``exc``, degrading to a picklable stand-in."""
    try:
        return pickle.dumps((task_id, exc), protocol=_PICKLE_PROTOCOL)
    except Exception:
        stand_in = RemoteTaskError(f"{type(exc).__name__}: {exc}")
        return pickle.dumps((task_id, stand_in), protocol=_PICKLE_PROTOCOL)


def serve_connection(sock: socket.socket, token: str,
                     max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
    """Authenticate mutually, then serve tasks until the peer goes away.

    The handshake must finish within :data:`HANDSHAKE_TIMEOUT` and the
    peer must prove the token (critical in the ``--listen`` daemon
    shape, where anyone who can reach the port may connect) before the
    first ``TASK`` frame — whose payload gets unpickled — is accepted.

    Raises :class:`ConnectionClosed` when the executor disconnects (the
    normal end of a localhost worker's life) and :class:`FrameError` on
    protocol violations, including a peer that fails authentication.
    """
    sock.settimeout(HANDSHAKE_TIMEOUT)
    worker_handshake(sock, token, max_frame_bytes)
    sock.settimeout(None)

    segments = BoundedLRU(SEGMENT_CACHE_LIMIT)

    def fetch(handle) -> bytes:
        blob = segments.get(handle.digest)
        if blob is None:
            send_frame(sock, FrameKind.FETCH, handle.digest.encode("ascii"))
            reply_kind, payload = read_frame(sock, max_frame_bytes)
            if reply_kind != FrameKind.BLOB:
                raise FrameError(
                    f"expected BLOB for FETCH, got kind {reply_kind}")
            if not payload:
                raise RuntimeError(
                    f"server could not serve broadcast segment "
                    f"{handle.digest} (evicted or unlinked)")
            blob = payload
            segments.put(handle.digest, blob)
        return blob

    while True:
        kind, payload = read_frame(sock, max_frame_bytes)
        if kind == FrameKind.BYE:
            return
        if kind != FrameKind.TASK:
            raise FrameError(f"unexpected frame kind {kind} while idle")
        try:
            task_id, fn, item = pickle.loads(payload)
        except Exception as exc:
            # a task that cannot even unpickle is a task error, not a dead
            # worker: answer FAILED (the server ignores the echoed id) so a
            # deterministic pickling problem doesn't masquerade as worker
            # loss and burn replenish cycles
            send_frame(sock, FrameKind.FAILED, _pickle_failure(
                -1, RemoteTaskError(f"could not unpickle the task: {exc}")))
            continue
        try:
            result = fn(resolve_handles(item, fetch))
        except Exception as exc:
            send_frame(sock, FrameKind.FAILED, _pickle_failure(task_id, exc))
            continue
        send_frame(sock, FrameKind.RESULT,
                   pickle.dumps((task_id, result),
                                protocol=_PICKLE_PROTOCOL))


def _parse_address(spec: str) -> tuple:
    host, sep, port = spec.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise SystemExit(f"address must be HOST:PORT, got {spec!r}")
    return host, int(port)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.parallel.worker",
        description="Socket-backend worker process (see "
                    "repro.parallel.distributed)")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--connect", metavar="HOST:PORT",
                      help="dial into a SocketExecutor listener and exit "
                           "when it disconnects (localhost worker shape)")
    mode.add_argument("--listen", metavar="HOST:PORT",
                      help="bind this address and serve executor "
                           "connections forever (multi-host daemon shape)")
    parser.add_argument("--token", required=True,
                        help="shared secret authenticating both peers")
    parser.add_argument("--max-frame-bytes", type=int,
                        default=MAX_FRAME_BYTES,
                        help="frame size limit (protocol safety valve)")
    args = parser.parse_args(argv)

    if args.connect:
        host, port = _parse_address(args.connect)
        sock = socket.create_connection((host, port),
                                        timeout=HANDSHAKE_TIMEOUT)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            serve_connection(sock, args.token, args.max_frame_bytes)
        except ConnectionClosed:
            pass  # the executor went away — a localhost worker's normal end
        finally:
            sock.close()
        return 0

    host, port = _parse_address(args.listen)
    server = socket.create_server((host, port))
    while True:
        conn, _ = server.accept()
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            serve_connection(conn, args.token, args.max_frame_bytes)
        except (ConnectionClosed, FrameError, OSError):
            pass  # drop the connection, go back to accepting
        finally:
            try:
                conn.close()
            except OSError:
                pass


if __name__ == "__main__":  # pragma: no cover - subprocess entry point
    sys.exit(main())
