"""The virtual client fleet: lazy O(cohort) materialization.

Contracts under test:

* **Equivalence** — for every registered partitioner and any fleet size,
  the lazy path (virtual dataset + virtual device fleet + sparse state
  store) produces shards, device profiles and histories element-identical
  to the eager path (hypothesis property tests plus directed cases).
* **O(cohort)** — a training run on a virtual fleet materializes shards,
  facades and state entries only for clients that were dispatched or
  evaluated; untouched clients are never built (counting hooks).
* **No config mutation** — scenario over-selection reaches the strategy as
  an explicit ``count`` argument; ``config.clients_per_round`` is never
  observed widened (regression for the old patch/restore hack).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import build_strategy
from repro.data import build_federated_dataset
from repro.data.partition import VirtualFederatedDataset
from repro.experiments import preset_for, run_method, scaled
from repro.experiments.presets import build_experiment
from repro.federated import FederatedConfig, FederatedTrainer, FleetConfig
from repro.federated.fleet import ClientFleet
from repro.federated.strategy import Strategy
from repro.systems.devices import (CAPABILITY_LEVELS, HETEROGENEITY_PRESETS,
                                   sample_device_fleet, sample_device_profile)

#: every partitioner registered with ``build_federated_dataset``
PARTITIONERS = ("pathological", "dirichlet", "iid")


def assert_same_shards(eager, lazy, client_ids):
    for cid in client_ids:
        a, b = eager.client(cid), lazy.client(cid)
        np.testing.assert_array_equal(a.train.x, b.train.x)
        np.testing.assert_array_equal(a.train.y, b.train.y)
        np.testing.assert_array_equal(a.test.x, b.test.x)
        np.testing.assert_array_equal(a.test.y, b.test.y)


class TestShardEquivalence:
    @given(num_clients=st.integers(min_value=2, max_value=12),
           examples=st.integers(min_value=8, max_value=24),
           seed=st.integers(min_value=0, max_value=500),
           partition=st.sampled_from(PARTITIONERS))
    @settings(max_examples=25, deadline=None)
    def test_lazy_shards_match_eager_for_every_partitioner(
            self, num_clients, examples, seed, partition):
        kwargs = dict(partition=partition, examples_per_client=examples,
                      seed=seed)
        eager = build_federated_dataset("mnist", num_clients, **kwargs)
        lazy = build_federated_dataset("mnist", num_clients, lazy=True,
                                       **kwargs)
        assert isinstance(lazy, VirtualFederatedDataset)
        assert lazy.num_classes == eager.num_classes
        assert tuple(lazy.input_shape) == tuple(eager.input_shape)
        assert list(lazy.client_ids) == list(eager.client_ids)
        assert_same_shards(eager, lazy, eager.client_ids)

    @given(num_clients=st.integers(min_value=2, max_value=8),
           seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=10, deadline=None)
    def test_lazy_reddit_matches_eager(self, num_clients, seed):
        eager = build_federated_dataset("reddit", num_clients,
                                        examples_per_client=24, seed=seed)
        lazy = build_federated_dataset("reddit", num_clients,
                                       examples_per_client=24, seed=seed,
                                       lazy=True)
        assert_same_shards(eager, lazy, eager.client_ids)

    def test_materialization_order_does_not_matter(self):
        lazy = build_federated_dataset("mnist", 8, examples_per_client=12,
                                       seed=3, lazy=True)
        backwards = {cid: lazy.client(cid) for cid in reversed(range(8))}
        eager = build_federated_dataset("mnist", 8, examples_per_client=12,
                                        seed=3)
        for cid in range(8):
            np.testing.assert_array_equal(eager.client(cid).train.x,
                                          backwards[cid].train.x)

    def test_lru_bound_holds_and_rebuilds_identically(self):
        lazy = build_federated_dataset("mnist", 10, examples_per_client=12,
                                       seed=5, lazy=True, shard_cache=2)
        first = lazy.client(0).train.x.copy()
        for cid in range(10):  # evict client 0
            lazy.client(cid)
        assert len(lazy.shard_map._cache) <= 2
        np.testing.assert_array_equal(lazy.client(0).train.x, first)


class TestDeviceEquivalence:
    @pytest.mark.parametrize("level", sorted(HETEROGENEITY_PRESETS))
    @pytest.mark.parametrize("seed", [0, 7, 11, 123])
    def test_lazy_profiles_match_eager_sampling(self, level, seed):
        levels = HETEROGENEITY_PRESETS[level]
        eager = sample_device_fleet(200, levels=levels, seed=seed)
        lazy = sample_device_fleet(200, levels=levels, seed=seed, lazy=True)
        for cid in range(200):
            assert lazy[cid].capability == eager[cid].capability
            assert lazy[cid].bandwidth_scale == eager[cid].bandwidth_scale

    @given(client_id=st.integers(min_value=0, max_value=3000),
           seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_profile_is_pure_in_seed_and_client(self, client_id, seed):
        a = sample_device_profile(client_id, levels=CAPABILITY_LEVELS,
                                  seed=seed)
        b = sample_device_profile(client_id, levels=CAPABILITY_LEVELS,
                                  seed=seed)
        assert (a.capability, a.bandwidth_scale) == (b.capability,
                                                     b.bandwidth_scale)

    def test_virtual_fleet_pickles_without_memo(self):
        import pickle

        fleet = sample_device_fleet(1_000_000, seed=3, lazy=True)
        fleet[123_456]  # populate the memo
        wire = pickle.dumps(fleet, pickle.HIGHEST_PROTOCOL)
        assert len(wire) < 1024
        clone = pickle.loads(wire)
        assert clone[123_456].capability == fleet[123_456].capability


class TestHistoryEquivalence:
    @pytest.mark.parametrize("method", ["fedavg", "fedlps", "fedmp", "refl"])
    def test_lazy_and_eager_histories_are_bit_identical(self, method):
        overrides = dict(num_clients=6, num_rounds=2, clients_per_round=2,
                         examples_per_client=20, local_iterations=2,
                         batch_size=8, seed=5)
        lazy = run_method(method, scaled(preset_for("mnist"), **overrides))
        eager = run_method(method, scaled(preset_for("mnist"),
                                          lazy_fleet=False, **overrides))
        assert lazy.to_dict() == eager.to_dict()

    def test_lazy_and_eager_agree_under_over_selection_scenario(self):
        overrides = dict(num_clients=6, num_rounds=2, clients_per_round=2,
                         examples_per_client=20, local_iterations=2,
                         batch_size=8, seed=5, scenario="deadline-tight")
        lazy = run_method("fedlps", scaled(preset_for("mnist"), **overrides))
        eager = run_method("fedlps", scaled(preset_for("mnist"),
                                            lazy_fleet=False, **overrides))
        assert lazy.to_dict() == eager.to_dict()


class TestOCohortMaterialization:
    def test_untouched_clients_are_never_built(self):
        preset = scaled(preset_for("mnist"), num_clients=40, num_rounds=3,
                        clients_per_round=3, examples_per_client=16,
                        local_iterations=1, batch_size=8, seed=9,
                        eval_clients=0)
        dataset, model_builder, config, fleet = build_experiment(preset)
        trainer = FederatedTrainer(build_strategy("fedlps"), dataset,
                                   model_builder, config=config, fleet=fleet)
        history = trainer.run()
        dispatched = set()
        for record in history.records:
            dispatched.update(record.selected_clients)
        built = dataset.shard_map.materialized_ids
        # the counting hook: only dispatched clients were ever materialized
        assert built == dispatched
        assert dataset.shard_map.materializations <= len(dispatched)
        # and the sparse store holds exactly the participants
        participants = dispatched - {
            cid for record in history.records for cid in record.dropped}
        store_ids = set(trainer.core.clients.state_store.known_ids)
        assert participants <= store_ids <= dispatched

    def test_evaluation_sweep_does_not_grow_state_store(self):
        preset = scaled(preset_for("mnist"), num_clients=20, num_rounds=2,
                        clients_per_round=2, examples_per_client=16,
                        local_iterations=1, batch_size=8, seed=9)
        dataset, model_builder, config, fleet = build_experiment(preset)
        trainer = FederatedTrainer(build_strategy("fedlps"), dataset,
                                   model_builder, config=config, fleet=fleet)
        history = trainer.run()
        dispatched = set()
        for record in history.records:
            dispatched.update(record.selected_clients)
        # every client was evaluated (eval_clients=None) and therefore
        # materialized — but only participants entered the store
        assert dataset.shard_map.materialized_ids == set(range(20))
        assert set(trainer.core.clients.state_store.known_ids) <= dispatched

    def test_broadcast_runs_materialize_nothing_server_side(self):
        """With the broadcast transport, shard builds are fully worker-side.

        Both dispatch and evaluation payloads carry stored state (or None
        for first-time clients, which workers initialize themselves), so
        the server's own shard map never builds a single shard — even with
        a full evaluation sweep every round.  (Strategies whose post_round
        touches ``context.clients`` still materialize their participants
        server-side; fedavg's does not.)
        """
        from repro.parallel import ThreadPoolExecutor

        preset = scaled(preset_for("mnist"), num_clients=20, num_rounds=2,
                        clients_per_round=2, examples_per_client=16,
                        local_iterations=1, batch_size=8, seed=9)
        dataset, model_builder, config, fleet = build_experiment(preset)
        with ThreadPoolExecutor(2) as executor:
            trainer = FederatedTrainer(build_strategy("fedavg"), dataset,
                                       model_builder, config=config,
                                       fleet=fleet, executor=executor)
            trainer.run()
        assert dataset.shard_map.materialized_ids == set()

    def test_eval_subset_is_deterministic_and_capped(self):
        preset = scaled(preset_for("mnist"), num_clients=30, num_rounds=1,
                        clients_per_round=2, examples_per_client=16,
                        local_iterations=1, batch_size=8, seed=4,
                        eval_clients=5)
        dataset, model_builder, config, fleet = build_experiment(preset)
        trainer = FederatedTrainer(build_strategy("fedavg"), dataset,
                                   model_builder, config=config, fleet=fleet)
        first = trainer.core.evaluation_client_ids()
        assert len(first) == 5
        assert trainer.core.evaluation_client_ids() == first
        # a fresh identically-configured core draws the same subset
        dataset2, mb2, config2, fleet2 = build_experiment(preset)
        other = FederatedTrainer(build_strategy("fedavg"), dataset2, mb2,
                                 config=config2, fleet=fleet2)
        assert other.core.evaluation_client_ids() == first


class _SelectionProbe(Strategy):
    """Records what ``clients_per_round`` looks like during selection."""

    name = "selection-probe"

    def __init__(self) -> None:
        super().__init__()
        self.observed_config_values = []
        self.observed_counts = []

    def select_clients(self, round_index, count=None):
        self.observed_config_values.append(
            self.context.config.clients_per_round)
        self.observed_counts.append(count)
        return super().select_clients(round_index, count)


class TestSelectionConfigIsNeverMutated:
    def test_over_selection_passes_count_without_touching_config(self):
        preset = scaled(preset_for("mnist"), num_clients=8, num_rounds=2,
                        clients_per_round=2, examples_per_client=16,
                        local_iterations=1, batch_size=8, seed=2,
                        scenario="flaky")  # over_selection=1.5
        dataset, model_builder, config, fleet = build_experiment(preset)
        probe = _SelectionProbe()
        trainer = FederatedTrainer(probe, dataset, model_builder,
                                   config=config, fleet=fleet)
        trainer.run()
        # the strategy saw the widened budget explicitly...
        assert probe.observed_counts and all(count == 3 for count
                                             in probe.observed_counts)
        # ...and never observed the shared config mutated
        assert all(value == 2 for value in probe.observed_config_values)
        assert config.clients_per_round == 2

    def test_no_scenario_passes_no_count(self):
        preset = scaled(preset_for("mnist"), num_clients=6, num_rounds=1,
                        clients_per_round=2, examples_per_client=16,
                        local_iterations=1, batch_size=8, seed=2)
        dataset, model_builder, config, fleet = build_experiment(preset)
        probe = _SelectionProbe()
        FederatedTrainer(probe, dataset, model_builder, config=config,
                         fleet=fleet).run()
        assert all(count is None for count in probe.observed_counts)


class TestFleetView:
    def test_state_persists_across_facade_eviction(self):
        dataset = build_federated_dataset("mnist", 6, examples_per_client=12,
                                          seed=1, lazy=True)
        fleet = ClientFleet(dataset, sample_device_fleet(6, seed=1, lazy=True))
        fleet.bind_state_initializer(
            lambda client: client.state.setdefault("marker",
                                                   client.client_id * 10))
        assert fleet[3].state["marker"] == 30
        fleet[3].state["marker"] = 99
        fleet._facades.clear()  # force facade rebuild
        assert fleet[3].state["marker"] == 99

    def test_observer_state_is_transient_until_participation(self):
        dataset = build_federated_dataset("mnist", 6, examples_per_client=12,
                                          seed=1, lazy=True)
        fleet = ClientFleet(dataset, sample_device_fleet(6, seed=1, lazy=True))
        fleet.bind_state_initializer(
            lambda client: client.state.setdefault("marker", 1))
        assert fleet.observer(2).state["marker"] == 1
        assert len(fleet.state_store) == 0
        fleet.client(2)
        assert fleet.state_store.known_ids == [2]

    @pytest.mark.parametrize("method", ["fedlps", "efd", "ditto", "fedrep"])
    def test_rebinding_resets_cached_facade_state(self, method):
        """A second setup() must not leak the previous run's client state.

        Regression, both directions: the lazy path must not re-adopt cached
        facades' run-1 state, and the eager path must hand out FRESH state
        dicts on re-bind — initializers only overwrite their own keys, so
        reusing the old dicts leaks keys like ``personal_params`` or
        ``pattern`` that only local updates write (efd/ditto/fedrep expose
        this; fedlps's initializer happens to reset everything it reads).
        """
        overrides = dict(num_clients=8, num_rounds=2, clients_per_round=2,
                         examples_per_client=16, local_iterations=1,
                         batch_size=8, seed=5)

        def run_twice(lazy_fleet):
            preset = scaled(preset_for("mnist"), lazy_fleet=lazy_fleet,
                            **overrides)
            dataset, mb, config, fleet = build_experiment(preset)
            trainer = FederatedTrainer(build_strategy(method), dataset, mb,
                                       config=config, fleet=fleet)
            trainer.run()
            return trainer.run().to_dict()

        assert run_twice(True) == run_twice(False)

    def test_eager_fleet_matches_old_construction(self):
        dataset = build_federated_dataset("mnist", 4, examples_per_client=12,
                                          seed=1)
        fleet = ClientFleet(dataset, sample_device_fleet(4, seed=1),
                            lazy=False)
        assert sorted(fleet) == [0, 1, 2, 3]
        assert fleet[2].client_id == 2
        with pytest.raises(KeyError):
            fleet[9]

    def test_fleet_size_mismatch_raises(self):
        dataset = build_federated_dataset("mnist", 4, examples_per_client=12,
                                          seed=1)
        with pytest.raises(ValueError):
            ClientFleet(dataset, sample_device_fleet(5, seed=1))


class TestFleetConfigValidation:
    def test_rejects_bad_shard_cache(self):
        with pytest.raises(ValueError):
            FleetConfig(shard_cache=0)

    def test_rejects_negative_eval_clients(self):
        with pytest.raises(ValueError):
            FleetConfig(eval_clients=-1)

    def test_rejects_non_fleet_config(self):
        with pytest.raises(TypeError):
            FederatedConfig(fleet={"lazy": True})
