"""Tests for the Sequential model container and the model zoo."""

import numpy as np
import pytest

from repro.models import (build_cnn, build_lstm_lm, build_mlp,
                          build_model_for_dataset, build_vgg_style)
from repro.nn import SGD, Dense, ReLU, Sequential, softmax_cross_entropy
from repro.nn.serialization import load_parameters, save_parameters


class TestSequentialBasics:
    def test_requires_layers(self):
        with pytest.raises(ValueError):
            Sequential([], input_shape=(4,))

    def test_unique_layer_names_enforced(self):
        with pytest.raises(ValueError):
            Sequential([Dense(2, 2, name="a"), Dense(2, 2, name="a")],
                       input_shape=(2,))

    def test_forward_backward_shapes(self, small_mlp):
        x = np.ones((3, 12))
        out = small_mlp.forward(x)
        assert out.shape == (3, 4)
        grad_in = small_mlp.backward(np.ones_like(out))
        assert grad_in.shape == x.shape

    def test_get_set_parameters_roundtrip(self, small_mlp):
        params = small_mlp.get_parameters()
        modified = {key: value + 1.0 for key, value in params.items()}
        small_mlp.set_parameters(modified)
        for key, value in small_mlp.get_parameters().items():
            np.testing.assert_allclose(value, params[key] + 1.0)

    def test_set_parameters_missing_key(self, small_mlp):
        params = small_mlp.get_parameters()
        params.pop(next(iter(params)))
        with pytest.raises(KeyError):
            small_mlp.set_parameters(params)

    def test_set_parameters_wrong_shape(self, small_mlp):
        params = small_mlp.get_parameters()
        key = next(iter(params))
        params[key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            small_mlp.set_parameters(params)

    def test_num_parameters_matches_sum(self, small_mlp):
        params = small_mlp.get_parameters()
        assert small_mlp.num_parameters == sum(v.size for v in params.values())

    def test_training_reduces_loss(self, small_mlp):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((64, 12))
        y = (x[:, 0] > 0).astype(int)
        opt = SGD(0.2)
        losses = []
        for _ in range(30):
            small_mlp.zero_grad()
            logits = small_mlp.forward(x)
            loss, grad = softmax_cross_entropy(logits, y)
            losses.append(loss)
            small_mlp.backward(grad)
            small_mlp.apply_gradient_step(opt)
        assert losses[-1] < losses[0] * 0.8


class TestUnitLayout:
    def test_unit_groups_exclude_head(self, small_cnn):
        names = [group.layer_name for group in small_cnn.unit_groups]
        assert "head" not in names
        assert small_cnn.total_units == sum(g.n_units for g in small_cnn.unit_groups)

    def test_split_and_join_unit_vector(self, small_cnn):
        vector = np.arange(small_cnn.total_units, dtype=float)
        per_layer = small_cnn.split_unit_vector(vector)
        joined = small_cnn.join_unit_vector(per_layer)
        np.testing.assert_array_equal(joined, vector)

    def test_split_rejects_wrong_length(self, small_cnn):
        with pytest.raises(ValueError):
            small_cnn.split_unit_vector(np.zeros(small_cnn.total_units + 1))

    def test_expand_unit_masks_covers_all_params(self, small_cnn):
        pattern = {group.layer_name: np.ones(group.n_units)
                   for group in small_cnn.unit_groups}
        mask = small_cnn.expand_unit_masks(pattern)
        assert set(mask) == set(small_cnn.get_parameters())
        assert all(np.all(values == 1.0) for values in mask.values())

    def test_gate_gradients_shapes(self, small_cnn):
        pattern = {group.layer_name: np.ones(group.n_units)
                   for group in small_cnn.unit_groups}
        small_cnn.set_unit_gates(pattern)
        small_cnn.zero_grad()
        x = np.ones((2, 1, 16, 16))
        out = small_cnn.forward(x)
        small_cnn.backward(np.ones_like(out))
        grads = small_cnn.gate_gradients()
        for group in small_cnn.unit_groups:
            assert grads[group.layer_name].shape == (group.n_units,)
        small_cnn.set_unit_gates(None)

    def test_unit_weight_magnitudes_keys(self, small_cnn):
        magnitudes = small_cnn.unit_weight_magnitudes()
        assert set(magnitudes) == {g.layer_name for g in small_cnn.unit_groups}

    def test_flops_positive_and_layerwise_sum(self, small_cnn):
        total = small_cnn.flops_per_example()
        breakdown = small_cnn.layer_flops()
        assert total > 0
        assert total == sum(breakdown.values())


class TestModelZoo:
    def test_mlp_requires_hidden_layers(self):
        with pytest.raises(ValueError):
            build_mlp(10, [], 2)

    def test_cnn_shape_checks(self):
        with pytest.raises(ValueError):
            build_cnn(1, 15, 10)
        with pytest.raises(ValueError):
            build_cnn(1, 16, 10, channels=(4, 8, 16))

    def test_vgg_shape_checks(self):
        with pytest.raises(ValueError):
            build_vgg_style(3, 12, 10, blocks=(4, 8, 16))

    def test_lstm_lm_output_is_vocab_sized(self):
        model = build_lstm_lm(30, embed_dim=8, hidden_dim=12, num_layers=2,
                              seq_len=6)
        tokens = np.random.default_rng(0).integers(0, 30, size=(3, 6))
        out = model.forward(tokens)
        assert out.shape == (3, 30)

    @pytest.mark.parametrize("dataset", ["mnist", "cifar10", "cifar100",
                                         "tinyimagenet", "reddit"])
    def test_builders_for_every_dataset(self, dataset):
        model = build_model_for_dataset(dataset, seed=0)
        assert model.total_units > 0
        assert model.num_parameters > 0

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            build_model_for_dataset("imagenet")

    def test_same_seed_same_parameters(self):
        a = build_model_for_dataset("mnist", seed=3).get_parameters()
        b = build_model_for_dataset("mnist", seed=3).get_parameters()
        for key in a:
            np.testing.assert_array_equal(a[key], b[key])


class TestSerialization:
    def test_save_and_load_roundtrip(self, small_mlp, tmp_path):
        params = small_mlp.get_parameters()
        path = save_parameters(tmp_path / "snapshot", params)
        loaded = load_parameters(path)
        assert set(loaded) == set(params)
        for key in params:
            np.testing.assert_array_equal(loaded[key], params[key])

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_parameters(tmp_path / "missing.npz")
