"""Property-based tests (hypothesis) for the core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bandit import PUCBVAgent
from repro.core.utility import accuracy_utility
from repro.data import Dataset, iid_partition, pathological_partition
from repro.models import build_mlp
from repro.nn.params import add, multiply, scale, subtract, weighted_average
from repro.sparsity import (pattern_from_scores, pattern_keep_ratio,
                            units_to_keep)

MODEL = build_mlp(6, [10, 8], 3, seed=0)


@given(n_units=st.integers(min_value=1, max_value=200),
       ratio=st.floats(min_value=0.01, max_value=1.0))
def test_units_to_keep_bounds(n_units, ratio):
    kept = units_to_keep(n_units, ratio)
    assert 1 <= kept <= n_units


@given(ratio=st.floats(min_value=0.05, max_value=1.0),
       seed=st.integers(min_value=0, max_value=50))
@settings(max_examples=30, deadline=None)
def test_pattern_from_scores_keeps_exact_counts(ratio, seed):
    rng = np.random.default_rng(seed)
    scores = {group.layer_name: rng.standard_normal(group.n_units)
              for group in MODEL.unit_groups}
    pattern = pattern_from_scores(MODEL, scores, ratio)
    for group in MODEL.unit_groups:
        kept = int(np.count_nonzero(pattern[group.layer_name]))
        assert kept == units_to_keep(group.n_units, ratio)
    assert 0.0 < pattern_keep_ratio(pattern) <= 1.0


@given(ratio=st.floats(min_value=0.05, max_value=1.0),
       seed=st.integers(min_value=0, max_value=50))
@settings(max_examples=30, deadline=None)
def test_pattern_retains_highest_scores(ratio, seed):
    rng = np.random.default_rng(seed)
    scores = {group.layer_name: rng.standard_normal(group.n_units)
              for group in MODEL.unit_groups}
    pattern = pattern_from_scores(MODEL, scores, ratio)
    for group in MODEL.unit_groups:
        layer_scores = scores[group.layer_name]
        mask = pattern[group.layer_name]
        if mask.all() or not mask.any():
            continue
        assert layer_scores[mask].min() >= layer_scores[~mask].max() - 1e-12


@given(st.lists(st.floats(min_value=-10, max_value=10), min_size=2, max_size=8),
       st.lists(st.floats(min_value=0.1, max_value=5.0), min_size=2, max_size=8))
@settings(max_examples=50, deadline=None)
def test_weighted_average_is_convex_combination(values, weights):
    size = min(len(values), len(weights))
    dicts = [{"w": np.array([v])} for v in values[:size]]
    merged = weighted_average(dicts, weights[:size])
    assert min(values[:size]) - 1e-9 <= merged["w"][0] <= max(values[:size]) + 1e-9


@given(seed=st.integers(min_value=0, max_value=100),
       factor=st.floats(min_value=-3.0, max_value=3.0))
@settings(max_examples=50, deadline=None)
def test_param_arithmetic_identities(seed, factor):
    rng = np.random.default_rng(seed)
    a = {"x": rng.standard_normal(4), "y": rng.standard_normal((2, 2))}
    b = {"x": rng.standard_normal(4), "y": rng.standard_normal((2, 2))}
    roundtrip = subtract(add(a, b), b)
    for key in a:
        np.testing.assert_allclose(roundtrip[key], a[key], atol=1e-12)
    scaled = scale(a, factor)
    for key in a:
        np.testing.assert_allclose(scaled[key], a[key] * factor)
    ones = {key: np.ones_like(value) for key, value in a.items()}
    for key in a:
        np.testing.assert_allclose(multiply(a, ones)[key], a[key])


@given(num_clients=st.integers(min_value=2, max_value=12),
       classes_per_client=st.integers(min_value=1, max_value=5),
       seed=st.integers(min_value=0, max_value=20))
@settings(max_examples=20, deadline=None)
def test_pathological_partition_invariants(num_clients, classes_per_client, seed):
    rng = np.random.default_rng(seed)
    dataset = Dataset(rng.standard_normal((300, 2)), rng.integers(0, 5, 300))
    num_classes = int(dataset.y.max()) + 1
    if num_clients * classes_per_client < num_classes:
        # too few client-class slots to cover every class: explicit error
        try:
            pathological_partition(dataset, num_clients, classes_per_client,
                                   seed=seed)
        except ValueError:
            return
        raise AssertionError("expected ValueError for uncoverable partition")
    parts = pathological_partition(dataset, num_clients, classes_per_client,
                                   seed=seed)
    assert len(parts) == num_clients
    joined = np.concatenate([p for p in parts if len(p)]) if parts else np.array([])
    # no example is assigned twice, and every example is assigned
    assert len(joined) == len(np.unique(joined))
    assert len(joined) == len(dataset)
    for indices in parts:
        assert len(np.unique(dataset.y[indices])) <= classes_per_client


@given(num_clients=st.integers(min_value=1, max_value=20),
       seed=st.integers(min_value=0, max_value=20))
@settings(max_examples=20, deadline=None)
def test_iid_partition_covers_every_example_once(num_clients, seed):
    rng = np.random.default_rng(seed)
    dataset = Dataset(rng.standard_normal((57, 2)), rng.integers(0, 3, 57))
    parts = iid_partition(dataset, num_clients, seed=seed)
    joined = np.sort(np.concatenate(parts))
    np.testing.assert_array_equal(joined, np.arange(57))


@given(low=st.floats(min_value=0.0, max_value=99.0),
       delta=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=50, deadline=None)
def test_accuracy_utility_is_monotone(low, delta):
    high = min(low + delta, 100.0)
    assert accuracy_utility(high) >= accuracy_utility(low) - 1e-12
    assert 0.0 <= accuracy_utility(high) < 10.0


@given(seed=st.integers(min_value=0, max_value=30),
       steps=st.integers(min_value=1, max_value=15))
@settings(max_examples=20, deadline=None)
def test_pucbv_partitions_always_tile_the_arm_space(seed, steps):
    agent = PUCBVAgent(total_rounds=40, num_clients=8, selection_fraction=0.25,
                       ratio_min=0.2, seed=seed)
    rng = np.random.default_rng(seed)
    ratio = agent.initial_ratio()
    for _ in range(steps):
        accuracy = float(rng.uniform(0, 100))
        previous = float(rng.uniform(0, 100))
        ratio = agent.observe_and_select(ratio, float(rng.uniform(0.1, 2.0)),
                                         accuracy, previous)
        assert agent.ratio_min <= ratio <= agent.ratio_max
        bounds = agent.partition_bounds()
        # partitions are disjoint, ordered and within the arm space
        for (lo, hi) in bounds:
            assert agent.ratio_min - 1e-9 <= lo < hi <= agent.ratio_max + 1e-9
        for (_, hi), (lo, _) in zip(bounds[:-1], bounds[1:]):
            assert hi <= lo + 1e-9
