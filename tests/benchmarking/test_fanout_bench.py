"""Tests for the ``repro bench`` fan-out benchmark harness."""

from __future__ import annotations

import json

import pytest

from repro.benchmarking import (fanout_preset, format_bench_report,
                                measure_fanout_bytes, run_fanout_bench)


class TestFanoutPreset:
    def test_scale_one_matches_the_parallel_smoke_workload(self):
        preset = fanout_preset(1.0)
        assert preset.num_clients == 6
        assert preset.examples_per_client == 30
        assert preset.num_rounds == 3
        assert preset.local_iterations == 2
        assert preset.clients_per_round == 3

    def test_small_scales_stay_runnable(self):
        preset = fanout_preset(0.25)
        assert preset.num_clients >= preset.clients_per_round
        assert preset.num_rounds >= 2

    def test_nonpositive_scale_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            fanout_preset(0.0)


class TestRunFanoutBench:
    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        output = tmp_path_factory.mktemp("bench") / "BENCH_fanout.json"
        # serial + thread keeps the test fast; the process cell is covered
        # by the CI bench job and the determinism suite
        return run_fanout_bench(scale=0.25, backends=("serial", "thread"),
                                worker_counts=(2,), repeats=1,
                                output=str(output)), output

    def test_report_schema(self, report):
        report, _ = report
        assert {"bench_scale", "timings", "bytes", "gate", "cpu_count",
                "python", "platform", "workload", "aggregation"} <= set(report)
        for entry in report["timings"].values():
            assert {"workers", "mean_seconds", "min_seconds",
                    "samples_seconds", "spawn_overhead_seconds",
                    "matches_serial_reference"} <= set(entry)
        assert set(report["timings"]) == {"serial", "thread-2"}

    def test_backends_reproduce_the_reference(self, report):
        report, _ = report
        assert all(entry["matches_serial_reference"]
                   for entry in report["timings"].values())

    def test_bytes_counter_meets_the_reduction_bar(self, report):
        report, _ = report
        traffic = report["bytes"]
        assert traffic["reduction_factor"] >= traffic["clients_per_round"]
        assert traffic["broadcast_pickled_per_round"] < \
            traffic["legacy_pickled_per_round"]
        assert traffic["shared_memory_raw_per_round"] > 0
        # with the virtual fleet the session ships the federation spec, not
        # dataset arrays: the once-per-run raw payload collapses to zero
        assert traffic["session_raw_bytes"] == 0

    def test_gate_passes_vacuously_without_process(self, report):
        report, _ = report
        assert report["gate"]["pass"] is True
        assert "reason" in report["gate"]

    def test_artifact_written_and_loadable(self, report):
        report, output = report
        on_disk = json.loads(output.read_text())
        assert on_disk["bench_scale"] == report["bench_scale"]
        assert on_disk["bytes"]["reduction_factor"] == \
            report["bytes"]["reduction_factor"]

    def test_aggregation_section_records_async_modes(self, report):
        report, _ = report
        section = report["aggregation"]
        assert section["scenario"] == "flaky"
        assert set(section["modes"]) == {"sync", "fedasync", "fedbuff"}
        for mode in section["modes"].values():
            assert {"wall_seconds", "sim_time_seconds", "final_accuracy",
                    "best_accuracy", "sim_time_to_accuracy_seconds",
                    "mean_staleness"} <= set(mode)
            assert mode["wall_seconds"] > 0
            assert mode["sim_time_seconds"] > 0
        # sync has no staleness by construction; the async modes do
        assert section["modes"]["sync"]["mean_staleness"] == 0.0
        assert section["modes"]["fedasync"]["mean_staleness"] > 0
        # the shared target comes from the sync run, so the sync cell
        # always reaches it
        assert section["modes"]["sync"]["sim_time_to_accuracy_seconds"] \
            is not None

    def test_format_report_renders(self, report):
        report, _ = report
        text = format_bench_report(report)
        assert "serial" in text and "thread-2" in text
        assert "reduction" in text
        assert "fedasync" in text and "fedbuff" in text

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError, match="repeats"):
            run_fanout_bench(scale=0.25, repeats=0)


class TestGate:
    @staticmethod
    def _cell(mean, spawn=0.0, matches=True, workers=1):
        return {"workers": workers, "mean_seconds": mean,
                "min_seconds": mean, "samples_seconds": [mean],
                "spawn_overhead_seconds": spawn,
                "matches_serial_reference": matches}

    def test_fails_when_any_backend_diverges(self):
        from repro.benchmarking.fanout import _gate
        timings = {"serial": self._cell(0.1),
                   "thread-2": self._cell(0.12, matches=False)}
        verdict = _gate(timings)
        assert verdict["pass"] is False
        assert "thread-2" in verdict["reason"]

    def test_margin_comes_from_the_compared_cell(self):
        from repro.benchmarking.fanout import _gate
        # a huge spawn overhead on a *different* process cell must not
        # grant slack to the best cell being gated
        timings = {"serial": self._cell(0.1),
                   "process-1": self._cell(0.5, spawn=0.2),
                   "process-4": self._cell(9.0, spawn=50.0, workers=4)}
        verdict = _gate(timings)
        assert verdict["process_entry"] == "process-1"
        assert verdict["margin_seconds"] == 0.2
        assert verdict["pass"] is False  # 0.5 > 0.1 + 0.2

    def test_passes_within_own_spawn_overhead(self):
        from repro.benchmarking.fanout import _gate
        timings = {"serial": self._cell(0.1),
                   "process-2": self._cell(0.25, spawn=0.3, workers=2)}
        assert _gate(timings)["pass"] is True


class TestMeasureFanoutBytes:
    def test_counters_are_consistent(self):
        traffic = measure_fanout_bytes(fanout_preset(0.25))
        assert traffic["broadcast_task_payloads_per_round"] < \
            traffic["broadcast_pickled_per_round"]
        assert traffic["broadcast_publishes"] == \
            2 * traffic["num_rounds"] + 1
