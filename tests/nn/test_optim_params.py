"""Tests for the SGD optimizer and the parameter-dictionary helpers."""

import numpy as np
import pytest

from repro.nn import SGD, clip_gradients, global_grad_norm
from repro.nn import params as P


class TestSGD:
    def test_basic_step(self):
        opt = SGD(0.1)
        weights = {"w": np.array([1.0, 2.0])}
        opt.step(weights, {"w": np.array([1.0, 1.0])})
        np.testing.assert_allclose(weights["w"], [0.9, 1.9])

    def test_momentum_accumulates(self):
        opt = SGD(0.1, momentum=0.9)
        weights = {"w": np.array([0.0])}
        opt.step(weights, {"w": np.array([1.0])})
        opt.step(weights, {"w": np.array([1.0])})
        # second step uses velocity 0.9 * 1 + 1 = 1.9
        np.testing.assert_allclose(weights["w"], [-0.1 - 0.19])

    def test_weight_decay(self):
        opt = SGD(0.1, weight_decay=0.5)
        weights = {"w": np.array([2.0])}
        opt.step(weights, {"w": np.array([0.0])})
        np.testing.assert_allclose(weights["w"], [2.0 - 0.1 * 1.0])

    def test_clip_norm_limits_update(self):
        opt = SGD(1.0, clip_norm=1.0)
        weights = {"w": np.array([0.0, 0.0])}
        opt.step(weights, {"w": np.array([3.0, 4.0])})
        np.testing.assert_allclose(np.linalg.norm(weights["w"]), 1.0, rtol=1e-6)

    def test_missing_gradient_key_is_skipped(self):
        opt = SGD(0.1)
        weights = {"w": np.array([1.0]), "v": np.array([1.0])}
        opt.step(weights, {"w": np.array([1.0])})
        np.testing.assert_allclose(weights["v"], [1.0])

    def test_reset_state_clears_momentum(self):
        opt = SGD(0.1, momentum=0.9)
        weights = {"w": np.array([0.0])}
        opt.step(weights, {"w": np.array([1.0])})
        opt.reset_state()
        opt.step(weights, {"w": np.array([1.0])})
        np.testing.assert_allclose(weights["w"], [-0.2])

    @pytest.mark.parametrize("kwargs", [
        {"lr": 0.0}, {"lr": -1.0},
        {"lr": 0.1, "momentum": 1.0},
        {"lr": 0.1, "weight_decay": -0.1},
    ])
    def test_invalid_arguments(self, kwargs):
        lr = kwargs.pop("lr")
        with pytest.raises(ValueError):
            SGD(lr, **kwargs)

    def test_global_grad_norm(self):
        grads = {"a": np.array([3.0]), "b": np.array([4.0])}
        assert global_grad_norm(grads) == pytest.approx(5.0)

    def test_clip_gradients_noop_when_below_threshold(self):
        grads = {"a": np.array([0.1])}
        clipped = clip_gradients(grads, 10.0)
        np.testing.assert_allclose(clipped["a"], [0.1])

    def test_clip_gradients_invalid_norm(self):
        with pytest.raises(ValueError):
            clip_gradients({"a": np.ones(2)}, 0.0)


class TestParamHelpers:
    def setup_method(self):
        self.a = {"x": np.array([1.0, 2.0]), "y": np.array([[3.0]])}
        self.b = {"x": np.array([0.5, 0.5]), "y": np.array([[1.0]])}

    def test_copy_is_deep(self):
        copied = P.copy_params(self.a)
        copied["x"][0] = 99.0
        assert self.a["x"][0] == 1.0

    def test_add_subtract_roundtrip(self):
        total = P.add(self.a, self.b)
        back = P.subtract(total, self.b)
        np.testing.assert_allclose(back["x"], self.a["x"])
        np.testing.assert_allclose(back["y"], self.a["y"])

    def test_scale(self):
        scaled = P.scale(self.a, 2.0)
        np.testing.assert_allclose(scaled["x"], [2.0, 4.0])

    def test_multiply(self):
        product = P.multiply(self.a, self.b)
        np.testing.assert_allclose(product["x"], [0.5, 1.0])

    def test_weighted_average_normalizes_weights(self):
        avg = P.weighted_average([self.a, self.b], [2.0, 2.0])
        np.testing.assert_allclose(avg["x"], [0.75, 1.25])

    def test_weighted_average_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            P.weighted_average([self.a], [0.0])
        with pytest.raises(ValueError):
            P.weighted_average([], [])
        with pytest.raises(ValueError):
            P.weighted_average([self.a, self.b], [1.0])

    def test_mismatched_keys_raise(self):
        with pytest.raises(KeyError):
            P.add(self.a, {"x": np.zeros(2)})

    def test_norms_and_counts(self):
        assert P.num_parameters(self.a) == 3
        assert P.l2_norm({"x": np.array([3.0, 4.0])}) == pytest.approx(5.0)
        assert P.l2_distance(self.a, self.a) == pytest.approx(0.0)
        assert P.count_nonzero({"x": np.array([0.0, 1.0, 2.0])}) == 2

    def test_flatten_sorted_by_key(self):
        flat = P.flatten({"b": np.array([2.0]), "a": np.array([1.0])})
        np.testing.assert_allclose(flat, [1.0, 2.0])

    def test_zeros_like(self):
        zeros = P.zeros_like(self.a)
        assert all(np.all(v == 0) for v in zeros.values())

    def test_add_inplace_mutates_left(self):
        left = P.copy_params(self.a)
        out = P.add_(left, self.b)
        assert out is left
        np.testing.assert_array_equal(left["x"], P.add(self.a, self.b)["x"])

    def test_scale_inplace_mutates(self):
        params = P.copy_params(self.a)
        out = P.scale_(params, 2.0)
        assert out is params
        np.testing.assert_array_equal(params["x"], [2.0, 4.0])


def _legacy_weighted_average(param_dicts, weights):
    """The pre-optimization implementation, kept verbatim as the oracle."""
    param_list = list(param_dicts)
    weight_list = [float(w) for w in weights]
    total = sum(weight_list)
    result = P.zeros_like(param_list[0])
    for params, weight in zip(param_list, weight_list):
        for key in result:
            result[key] += params[key] * (weight / total)
    return result


class TestWeightedAverageBitIdentity:
    """The in-place single-pass rewrite must keep every float64 bit."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("count", [1, 3, 7])
    def test_matches_legacy_bitwise(self, seed, count):
        rng = np.random.default_rng(seed)
        dicts = [{
            "w": rng.standard_normal((13, 7)) * 10.0 ** rng.integers(-6, 6),
            "b": rng.standard_normal(5),
            "scalar": rng.standard_normal(()),
        } for _ in range(count)]
        weights = rng.uniform(0.01, 100.0, size=count)
        expected = _legacy_weighted_average(dicts, weights)
        got = P.weighted_average(dicts, weights)
        for key in expected:
            # bit-for-bit, not allclose: the golden-history fixtures depend
            # on aggregation being exactly reproducible
            np.testing.assert_array_equal(got[key], expected[key])

    def test_accepts_a_generator_single_pass(self):
        dicts = [{"w": np.full(3, float(i))} for i in range(4)]
        weights = [1.0, 2.0, 3.0, 4.0]
        expected = _legacy_weighted_average(dicts, weights)
        got = P.weighted_average(iter(dicts), weights)
        np.testing.assert_array_equal(got["w"], expected["w"])

    def test_length_mismatch_detected_when_streaming(self):
        dicts = ({"w": np.ones(2)} for _ in range(3))
        with pytest.raises(ValueError, match="equal length"):
            P.weighted_average(dicts, [1.0, 1.0])

    def test_does_not_mutate_inputs(self):
        dicts = [{"w": np.ones(4)}, {"w": np.full(4, 2.0)}]
        P.weighted_average(dicts, [1.0, 3.0])
        np.testing.assert_array_equal(dicts[0]["w"], np.ones(4))
        np.testing.assert_array_equal(dicts[1]["w"], np.full(4, 2.0))
