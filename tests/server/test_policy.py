"""Oracle micro-tests for the staleness math of the aggregation policy."""

import numpy as np
import pytest

from repro.federated.strategy import ClientUpdate, Strategy
from repro.server.policy import (AggregationPolicy, Arrival, mix_params,
                                 staleness_decay, staleness_weight)


class TestStalenessWeightOracle:
    """The decay weight is exactly ``alpha / (1 + s)^a`` — no surprises."""

    @pytest.mark.parametrize("staleness,alpha,exponent", [
        (0, 0.6, 0.5), (1, 0.6, 0.5), (4, 0.6, 0.5),
        (0, 1.0, 1.0), (3, 1.0, 1.0), (9, 0.25, 2.0), (7, 0.5, 0.0),
    ])
    def test_matches_closed_form(self, staleness, alpha, exponent):
        expected = alpha / (1.0 + staleness) ** exponent
        assert staleness_weight(staleness, alpha=alpha,
                                exponent=exponent) == expected

    def test_fresh_update_gets_alpha(self):
        assert staleness_weight(0, alpha=0.6, exponent=0.5) == 0.6

    def test_weight_decreases_with_staleness(self):
        weights = [staleness_weight(s, alpha=0.6, exponent=0.5)
                   for s in range(6)]
        assert weights == sorted(weights, reverse=True)
        assert all(w > 0 for w in weights)

    def test_zero_exponent_ignores_staleness(self):
        assert staleness_weight(100, alpha=0.3, exponent=0.0) == 0.3

    def test_negative_staleness_rejected(self):
        with pytest.raises(ValueError):
            staleness_decay(-1)

    def test_bad_alpha_rejected(self):
        with pytest.raises(ValueError):
            staleness_weight(0, alpha=0.0)
        with pytest.raises(ValueError):
            staleness_weight(0, alpha=1.5)


class TestMixParams:
    def setup_method(self):
        self.previous = {"w": np.array([1.0, 2.0]), "b": np.array([0.0])}
        self.candidate = {"w": np.array([3.0, 6.0]), "b": np.array([1.0])}

    def test_weight_zero_keeps_previous(self):
        mixed = mix_params(self.previous, self.candidate, 0.0)
        np.testing.assert_array_equal(mixed["w"], self.previous["w"])

    def test_weight_one_takes_candidate(self):
        mixed = mix_params(self.previous, self.candidate, 1.0)
        np.testing.assert_array_equal(mixed["w"], self.candidate["w"])

    def test_midpoint(self):
        mixed = mix_params(self.previous, self.candidate, 0.5)
        np.testing.assert_allclose(mixed["w"], [2.0, 4.0])
        np.testing.assert_allclose(mixed["b"], [0.5])

    def test_key_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mix_params(self.previous, {"w": np.array([1.0, 1.0])}, 0.5)

    def test_out_of_range_weight_rejected(self):
        with pytest.raises(ValueError):
            mix_params(self.previous, self.candidate, 1.5)


def _update(client_id, value, num_examples=1):
    return ClientUpdate(client_id=client_id,
                        params={"w": np.array([float(value)])},
                        num_examples=num_examples, train_accuracy=0.0,
                        train_loss=0.0)


def _strategy(global_value):
    strategy = Strategy()
    strategy.global_params = {"w": np.array([float(global_value)])}
    return strategy


class TestPolicyMerge:
    """merge == FedAsync's ``(1 - w) * global + w * aggregate(batch)``."""

    def test_single_fresh_arrival(self):
        strategy = _strategy(0.0)
        policy = AggregationPolicy(alpha=0.6, exponent=0.5)
        weight = policy.merge(strategy, 0, [Arrival(_update(0, 10.0), 0)])
        assert weight == 0.6
        np.testing.assert_allclose(strategy.global_params["w"], [6.0])

    def test_stale_arrival_moves_less(self):
        # staleness 3 at exponent 0.5: w = 0.6 / 2 = 0.3
        strategy = _strategy(0.0)
        policy = AggregationPolicy(alpha=0.6, exponent=0.5)
        weight = policy.merge(strategy, 0, [Arrival(_update(0, 10.0), 3)])
        assert weight == pytest.approx(0.3)
        np.testing.assert_allclose(strategy.global_params["w"], [3.0])

    def test_batch_uses_mean_decay_and_strategy_aggregate(self):
        # batch of two equally-sized updates: candidate = fedavg = 6.0;
        # stalenesses (0, 3) at exponent 0.5 -> mean decay (1 + 0.5)/2
        strategy = _strategy(0.0)
        policy = AggregationPolicy(alpha=0.8, exponent=0.5)
        weight = policy.merge(strategy, 0, [Arrival(_update(0, 4.0), 0),
                                            Arrival(_update(1, 8.0), 3)])
        assert weight == pytest.approx(0.8 * 0.75)
        np.testing.assert_allclose(strategy.global_params["w"],
                                   [0.8 * 0.75 * 6.0])

    def test_alpha_one_staleness_zero_is_synchronous(self):
        strategy = _strategy(123.0)
        policy = AggregationPolicy(alpha=1.0, exponent=0.5)
        policy.merge(strategy, 0, [Arrival(_update(0, 7.0), 0)])
        np.testing.assert_allclose(strategy.global_params["w"], [7.0])

    def test_empty_batch_is_a_noop(self):
        strategy = _strategy(5.0)
        policy = AggregationPolicy()
        assert policy.merge(strategy, 0, []) == 0.0
        np.testing.assert_allclose(strategy.global_params["w"], [5.0])
