"""Named scenarios: the system-heterogeneity counterpart of experiment presets.

Four scenarios ship with the repo; experiments refer to them by name (the
``scenario`` field of an :class:`~repro.experiments.presets.ExperimentPreset`,
``--scenario`` on the CLI):

* ``ideal`` — the paper's assumption: every sampled client always finishes.
  Resolves to ``None`` so the trainer runs the exact legacy round loop.
* ``flaky`` — a quarter of invitations go unanswered (Bernoulli
  availability); the server over-selects by 50% to compensate and waits for
  everyone who did show up.
* ``deadline-tight`` — stragglers spike to 4x latency with probability 0.25
  and the server drops anyone slower than twice the round's fastest client,
  inviting 50% extra clients up front.  The relative deadline keeps the
  scenario meaningful across datasets/model sizes.
* ``trace`` — availability follows a deterministic diurnal schedule (each
  client has a duty cycle and phase derived from the seed), with a loose
  relative deadline.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from .config import ScenarioConfig

#: the named scenarios, in the order used by sweeps and docs
SCENARIO_NAMES = ("ideal", "flaky", "deadline-tight", "trace")


def available_scenarios() -> List[str]:
    """Names accepted by :func:`build_scenario` (and the CLI)."""
    return list(SCENARIO_NAMES)


def synthetic_availability_trace(num_clients: int, num_rounds: int, *,
                                 seed: int = 0, duty_cycle: float = 0.6,
                                 min_period: int = 4, max_period: int = 10
                                 ) -> Dict[int, Tuple[int, ...]]:
    """A deterministic diurnal availability schedule.

    Every client gets a period and phase drawn from ``seed`` and is available
    during the first ``duty_cycle`` fraction of each of its periods — a toy
    version of the day/night cycles observed in real cross-device traces.
    Rounds are guaranteed at least one available client (the round-robin
    fallback ``round_index % num_clients``) so a federation never stalls
    completely.
    """
    if num_clients <= 0 or num_rounds <= 0:
        raise ValueError("num_clients and num_rounds must be positive")
    if not 0.0 < duty_cycle <= 1.0:
        raise ValueError("duty_cycle must be in (0, 1]")
    if not 2 <= min_period <= max_period:
        raise ValueError("periods must satisfy 2 <= min_period <= max_period")
    rng = np.random.default_rng((seed, num_clients, num_rounds))
    periods = rng.integers(min_period, max_period + 1, size=num_clients)
    phases = rng.integers(0, max_period, size=num_clients)
    trace: Dict[int, Tuple[int, ...]] = {}
    for round_index in range(num_rounds):
        available = [client_id for client_id in range(num_clients)
                     if ((round_index + int(phases[client_id]))
                         % int(periods[client_id]))
                     < math.ceil(duty_cycle * int(periods[client_id]))]
        if not available:
            available = [round_index % num_clients]
        trace[round_index] = tuple(available)
    return trace


def build_scenario(name: str, *, num_clients: int, num_rounds: int,
                   seed: int = 0) -> Optional[ScenarioConfig]:
    """Materialize a named scenario (``None`` for ``ideal``).

    ``num_clients``/``num_rounds``/``seed`` parameterize trace generation so
    the same name scales with the preset it is attached to.
    """
    key = name.lower()
    if key == "ideal":
        return None
    if key == "flaky":
        return ScenarioConfig(name="flaky", policy="wait-all",
                              availability=0.75, over_selection=1.5)
    if key == "deadline-tight":
        return ScenarioConfig(name="deadline-tight", policy="deadline",
                              deadline_factor=2.0, over_selection=1.5,
                              straggler_prob=0.25, straggler_slowdown=4.0)
    if key == "trace":
        return ScenarioConfig(
            name="trace", policy="deadline", deadline_factor=3.0,
            availability_trace=synthetic_availability_trace(
                num_clients, num_rounds, seed=seed))
    raise ValueError(
        f"unknown scenario {name!r}; choose from {SCENARIO_NAMES}")
