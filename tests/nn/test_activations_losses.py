"""Tests for activation layers, the embedding layer and the loss functions."""

import numpy as np
import pytest

from repro.nn import (Dropout, Embedding, Flatten, ReLU, Sigmoid, Tanh, accuracy,
                      mean_squared_error, sigmoid, softmax,
                      softmax_cross_entropy)


class TestActivations:
    def test_relu_clips_negatives(self):
        layer = ReLU()
        out = layer.forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 0.0, 2.0]])

    def test_relu_backward_masks_gradient(self):
        layer = ReLU()
        layer.forward(np.array([[-1.0, 3.0]]))
        grad = layer.backward(np.array([[5.0, 5.0]]))
        np.testing.assert_array_equal(grad, [[0.0, 5.0]])

    def test_tanh_range(self):
        layer = Tanh()
        out = layer.forward(np.array([[-100.0, 0.0, 100.0]]))
        assert np.all(np.abs(out) <= 1.0)

    def test_tanh_gradient(self):
        layer = Tanh()
        out = layer.forward(np.array([[0.5]]))
        grad = layer.backward(np.array([[1.0]]))
        np.testing.assert_allclose(grad, 1.0 - out ** 2)

    def test_sigmoid_layer_matches_function(self):
        layer = Sigmoid()
        x = np.array([[-2.0, 0.0, 2.0]])
        np.testing.assert_allclose(layer.forward(x), sigmoid(x))

    def test_sigmoid_stable_for_large_inputs(self):
        values = sigmoid(np.array([-1000.0, 1000.0]))
        assert values[0] == pytest.approx(0.0)
        assert values[1] == pytest.approx(1.0)

    def test_softmax_rows_sum_to_one(self):
        probs = softmax(np.random.default_rng(0).standard_normal((5, 7)))
        np.testing.assert_allclose(probs.sum(axis=-1), np.ones(5))

    def test_flatten_round_trip(self):
        layer = Flatten()
        x = np.arange(24, dtype=float).reshape(2, 3, 4)
        out = layer.forward(x)
        assert out.shape == (2, 12)
        back = layer.backward(out)
        np.testing.assert_array_equal(back, x)

    def test_dropout_disabled_at_eval(self):
        layer = Dropout(0.5, seed=0)
        x = np.ones((4, 10))
        np.testing.assert_array_equal(layer.forward(x, train=False), x)

    def test_dropout_scales_kept_values(self):
        layer = Dropout(0.5, seed=0)
        out = layer.forward(np.ones((1000, 1)), train=True)
        kept = out[out > 0]
        np.testing.assert_allclose(kept, 2.0)

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestEmbedding:
    def test_lookup_shape(self):
        layer = Embedding(10, 4, name="e")
        out = layer.forward(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_rejects_float_inputs(self):
        layer = Embedding(10, 4, name="e")
        with pytest.raises(ValueError):
            layer.forward(np.ones((2, 2)))

    def test_rejects_out_of_range_tokens(self):
        layer = Embedding(5, 4, name="e")
        with pytest.raises(ValueError):
            layer.forward(np.array([[6]]))

    def test_backward_accumulates_per_token(self):
        layer = Embedding(5, 2, name="e")
        layer.zero_grad()
        layer.forward(np.array([[0, 0, 1]]))
        layer.backward(np.ones((1, 3, 2)))
        np.testing.assert_allclose(layer.grads["W"][0], [2.0, 2.0])
        np.testing.assert_allclose(layer.grads["W"][1], [1.0, 1.0])
        np.testing.assert_allclose(layer.grads["W"][2], [0.0, 0.0])


class TestLosses:
    def test_cross_entropy_perfect_prediction_near_zero(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        labels = np.array([0, 1])
        loss, grad = softmax_cross_entropy(logits, labels)
        assert loss < 1e-4
        assert grad.shape == logits.shape

    def test_cross_entropy_uniform_prediction(self):
        logits = np.zeros((4, 5))
        labels = np.array([0, 1, 2, 3])
        loss, _ = softmax_cross_entropy(logits, labels)
        assert loss == pytest.approx(np.log(5), rel=1e-6)

    def test_cross_entropy_gradient_matches_numeric(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal((3, 4))
        labels = np.array([1, 0, 3])
        loss, grad = softmax_cross_entropy(logits, labels)
        eps = 1e-6
        numeric = np.zeros_like(logits)
        for i in range(3):
            for j in range(4):
                plus = logits.copy()
                plus[i, j] += eps
                minus = logits.copy()
                minus[i, j] -= eps
                numeric[i, j] = (softmax_cross_entropy(plus, labels)[0]
                                 - softmax_cross_entropy(minus, labels)[0]) / (2 * eps)
        np.testing.assert_allclose(grad, numeric, atol=1e-5)

    def test_cross_entropy_sequence_logits(self):
        logits = np.zeros((2, 3, 4))
        labels = np.zeros((2, 3), dtype=int)
        loss, grad = softmax_cross_entropy(logits, labels)
        assert grad.shape == logits.shape
        assert loss == pytest.approx(np.log(4), rel=1e-6)

    def test_cross_entropy_shape_mismatch(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((2, 3)), np.zeros(3, dtype=int))

    def test_mse_value_and_gradient(self):
        predictions = np.array([[1.0, 2.0]])
        targets = np.array([[0.0, 0.0]])
        loss, grad = mean_squared_error(predictions, targets)
        assert loss == pytest.approx(2.5)
        np.testing.assert_allclose(grad, [[1.0, 2.0]])

    def test_mse_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_squared_error(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_accuracy(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.7, 0.3]])
        labels = np.array([0, 1, 1])
        assert accuracy(logits, labels) == pytest.approx(2 / 3)
