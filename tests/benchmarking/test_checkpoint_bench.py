"""The checkpoint-cost benchmark harness (BENCH_checkpoint.json)."""

from __future__ import annotations

import json

from repro.benchmarking import (format_checkpoint_report, measure_checkpoint,
                                run_checkpoint_bench)
from repro.cli import main


class TestCheckpointBench:
    def test_report_schema_and_gate(self, tmp_path):
        output = tmp_path / "BENCH_checkpoint.json"
        report = run_checkpoint_bench(scale=0.02, output=str(output))
        assert report["gate"]["pass"], report["gate"]
        ladder = report["ladder"]
        assert len(ladder) == 2
        for cell in ladder.values():
            assert cell["seconds"] >= 0.0
            assert cell["restore_seconds"] >= 0.0
            assert cell["bytes_on_disk"] > 0
            # states scale with participation, never with the fleet
            assert cell["client_states"] \
                <= cell["rounds"] * cell["cohort_size"]
        persisted = json.loads(output.read_text())
        assert persisted["gate"]["pass"] is True
        assert "PASS" in format_checkpoint_report(report)

    def test_bytes_track_cohort_not_fleet(self):
        small = measure_checkpoint(40)
        large = measure_checkpoint(4_000)
        # a 100x fleet with the same cohort: bytes must stay within the
        # same O(cohort) envelope the gate enforces
        assert large["bytes_on_disk"] \
            <= max(2 * small["bytes_on_disk"],
                   small["bytes_on_disk"] + 1_000_000)

    def test_cli_checkpoint_scale_axis(self, tmp_path, capsys):
        output = tmp_path / "BENCH_checkpoint.json"
        code = main(["bench", "--checkpoint-scale", "0.02",
                     "--checkpoint-output", str(output), "--check"])
        assert code == 0
        assert output.exists()
        out = capsys.readouterr().out
        assert "fleet" in out and "gate:" in out

    def test_cli_rejects_mixed_axes_and_fanout_flags(self, capsys):
        assert main(["bench", "--checkpoint-scale", "0.02",
                     "--fleet-scale", "0.02"]) == 2
        assert "separate axes" in capsys.readouterr().out
        assert main(["bench", "--checkpoint-scale", "0.02",
                     "--scale", "0.5"]) == 2
        assert "--scale" in capsys.readouterr().out
