"""Supervised task execution: retries, timeouts, and worker replenishment.

:func:`run_supervised` wraps an executor's fan-out in a supervision loop so
that a single bad task — an exception, a crashed worker, a hang — degrades
into a *per-task failure* instead of aborting the whole round:

* every task gets bounded retries with exponential backoff
  (:class:`RetryPolicy`); backoff is *sim-time-aware* — the deterministic
  backoff seconds are recorded in the fault counters, while the real sleep
  is capped small so chaos runs stay fast;
* a per-task wall-clock timeout reclaims genuinely hung tasks (pool
  backends only — an inline task cannot be interrupted);
* a dead worker process (:class:`concurrent.futures.BrokenProcessPool`)
  is translated into task failures for the in-flight tasks and the pool is
  replenished via :meth:`Executor.replenish` — replacement workers re-ship
  nothing: the run-invariant broadcast session still lives in the server's
  shared-memory manifest, so the first task on a fresh worker simply
  re-materializes from the same handles (no re-pickle of params);
* a task that exhausts its retries lands in the report's ``failed`` list;
  the server turns it into a dropped client (graceful degradation) instead
  of a crashed run.

Determinism contract
    With a :class:`~repro.parallel.faults.FaultPlan` attached, every
    injected fault (and therefore every retry, timeout, restart and
    exhaustion) is a pure function of ``(fault_seed, round, client,
    attempt)``.  The serial/thread backends realize crashes and hangs as
    immediate in-process exceptions; the process backend realizes them for
    real (``os._exit``, capped sleeps) — both count the same events, so
    :class:`FaultCounters` and the surviving results are bit-identical
    across backends.  Because injected faults fire *before* the task body
    and task functions are pure in their payload, a retried attempt is an
    exact re-execution: when every retry eventually succeeds, results are
    bit-identical to the fault-free run.

Worker crashes need isolation to stay attributable: a broken process pool
fails *every* in-flight future, so when the plan schedules a real crash the
supervisor dispatches that task alone (its own one-task wave) and interprets
the resulting :class:`BrokenExecutor` precisely.  An *unscheduled* pool
breakage mid-wave (a genuine OOM kill, say) charges one restart and retries
every in-flight task of the wave.
"""

from __future__ import annotations

import concurrent.futures
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .executors import Executor
from .faults import (FaultDecision, FaultPlan, InjectedFault,
                     InjectedTaskError, SimulatedCrash, SimulatedHang,
                     apply_fault)

_NO_FAULT = FaultDecision()


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries + per-task timeout, shared by rounds and sweeps.

    ``backoff_seconds(attempt)`` is the deterministic exponential backoff
    (``base * 2**attempt``, capped) recorded in the fault accounting;
    ``sleep_seconds(attempt)`` is the *real* wall-clock sleep, additionally
    capped by ``wall_sleep_cap`` so retry storms cannot stall a run.
    """

    max_retries: int = 0
    task_timeout: Optional[float] = None
    backoff_base: float = 0.02
    backoff_cap: float = 2.0
    wall_sleep_cap: float = 0.05

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff_base/backoff_cap must be >= 0")
        if self.wall_sleep_cap < 0:
            raise ValueError("wall_sleep_cap must be >= 0")

    @property
    def active(self) -> bool:
        """Whether this policy changes anything over bare execution."""
        return self.max_retries > 0 or self.task_timeout is not None

    def should_retry(self, attempt: int) -> bool:
        return attempt < self.max_retries

    def backoff_seconds(self, attempt: int) -> float:
        return min(self.backoff_base * (2.0 ** attempt), self.backoff_cap)

    def sleep_seconds(self, attempt: int) -> float:
        return min(self.backoff_seconds(attempt), self.wall_sleep_cap)


@dataclass
class FaultCounters:
    """Per-fan-out fault accounting, attached to ``RoundRecord.extras``.

    All counts are *event* counts at the plan level, not mechanism
    artifacts: a crash decision is one ``worker_restarts`` whether the
    worker really died (process backend) or the crash was simulated
    in-process — which is what keeps the extras bit-identical across
    backends under a fixed fault plan.
    """

    retries: int = 0
    timeouts: int = 0
    worker_restarts: int = 0
    exhausted: int = 0
    backoff_seconds: float = 0.0

    def as_extras(self) -> Dict[str, float]:
        """The ``fault_``-prefixed extras keys (strippable, like ``wire_``)."""
        return {
            "fault_retries": float(self.retries),
            "fault_timeouts": float(self.timeouts),
            "fault_worker_restarts": float(self.worker_restarts),
            "fault_exhausted": float(self.exhausted),
            "fault_backoff_seconds": float(self.backoff_seconds),
        }


@dataclass(frozen=True)
class TaskFailure:
    """Worker-side failure sentinel (returned, never raised, by workers).

    Kinds: ``exception`` (injected task exception), ``crash`` (simulated
    in-process crash), ``hang`` (injected stall, counted as a timeout),
    ``error`` (a genuine exception from the task body — a poisoned task).
    """

    kind: str
    message: str = ""


@dataclass
class SupervisionReport:
    """What :func:`run_supervised` hands back to the caller.

    ``results`` is in task order with ``None`` at the positions whose task
    exhausted its retries; ``failed`` lists those tasks' keys (sorted).
    """

    results: List[Any]
    failed: List[Any] = field(default_factory=list)
    counters: FaultCounters = field(default_factory=FaultCounters)


def _classify(error: BaseException) -> str:
    if isinstance(error, SimulatedCrash):
        return "crash"
    if isinstance(error, SimulatedHang):
        return "hang"
    if isinstance(error, InjectedTaskError):
        return "exception"
    return "error"


def _count_fault(counters: FaultCounters, kind: str) -> None:
    # crash events count restarts and hang events count timeouts at the
    # *decision* level so serial/thread/process agree; exception/error
    # kinds only show up through retries/exhausted
    if kind == "crash":
        counters.worker_restarts += 1
    elif kind == "hang":
        counters.timeouts += 1


def _supervised_call(args: Tuple[Callable[[Any], Any], Any, FaultDecision,
                                 bool, Optional[float]]) -> Any:
    """Worker-side wrapper: inject the fault, then run the task.

    Every exception — injected or genuine — comes back as a
    :class:`TaskFailure` sentinel instead of propagating, so one poisoned
    task can never abort a ``map`` over the whole cohort.  (A *real* crash
    never returns at all; the supervisor reads it off the broken pool.)
    """
    fn, payload, decision, real, budget = args
    try:
        apply_fault(decision, real=real, budget=budget)
        return fn(payload)
    except InjectedFault as fault:
        return TaskFailure(_classify(fault), str(fault))
    except Exception as error:  # noqa: BLE001 - the translation is the point
        return TaskFailure("error", f"{type(error).__name__}: {error}")


#: one queued unit of supervised work: (position, key, payload, attempt)
_Entry = Tuple[int, Any, Any, int]


class _Supervisor:
    """One fan-out's supervision state (queue, counters, results)."""

    def __init__(self, executor: Optional[Executor],
                 fn: Callable[[Any], Any],
                 tasks: Sequence[Tuple[Any, Any]], *,
                 policy: RetryPolicy, plan: Optional[FaultPlan],
                 round_index: int) -> None:
        self.executor = executor
        self.fn = fn
        self.policy = policy
        self.plan = plan
        self.round_index = round_index
        self.counters = FaultCounters()
        self.results: List[Any] = [None] * len(tasks)
        self.failed: List[Any] = []
        self.queue: deque = deque(
            (position, key, payload, 0)
            for position, (key, payload) in enumerate(tasks))
        self.real = bool(getattr(executor, "supports_real_faults", False))

    # ------------------------------------------------------------- plumbing
    def decide(self, key: Any, attempt: int) -> FaultDecision:
        if self.plan is None:
            return _NO_FAULT
        return self.plan.decide(self.round_index, key, attempt)

    def settle_failure(self, entry: _Entry, kind: str, *,
                       sleep: bool) -> None:
        """Charge one failure: count it, then requeue or exhaust the task."""
        position, key, payload, attempt = entry
        _count_fault(self.counters, kind)
        if self.policy.should_retry(attempt):
            self.counters.retries += 1
            self.counters.backoff_seconds += \
                self.policy.backoff_seconds(attempt)
            if sleep:
                pause = self.policy.sleep_seconds(attempt)
                if pause > 0:
                    time.sleep(pause)
            self.queue.append((position, key, payload, attempt + 1))
        else:
            self.counters.exhausted += 1
            self.failed.append(key)

    def settle_outcome(self, entry: _Entry, outcome: Any) -> None:
        if isinstance(outcome, TaskFailure):
            self.settle_failure(entry, outcome.kind, sleep=True)
        else:
            self.results[entry[0]] = outcome

    def report(self) -> SupervisionReport:
        try:
            self.failed.sort()
        except TypeError:  # pragma: no cover - heterogeneous keys
            pass
        return SupervisionReport(self.results, self.failed, self.counters)

    # --------------------------------------------------------------- inline
    def run_inline(self) -> SupervisionReport:
        """Serial execution with simulated faults (the reference loop)."""
        while self.queue:
            entry = self.queue.popleft()
            position, key, payload, attempt = entry
            decision = self.decide(key, attempt)
            try:
                apply_fault(decision, real=False)
                self.results[position] = self.fn(payload)
            except Exception as error:  # noqa: BLE001 - degrade, not abort
                # no real backoff sleep inline: there is no pool contention
                # to back off from, and the serial reference must stay fast
                self.settle_failure(entry, _classify(error), sleep=False)
        return self.report()

    # ----------------------------------------------------------------- pool
    def run_pool(self) -> SupervisionReport:
        """Wave-based supervision over a thread/process pool."""
        while self.queue:
            wave, crash_entry = self._next_wave()
            if crash_entry is not None:
                self._run_crash_isolated(crash_entry)
                continue
            if wave:
                self._run_wave(wave)
        return self.report()

    def _next_wave(self) -> Tuple[List[Tuple[_Entry, FaultDecision]],
                                  Optional[_Entry]]:
        """Pop queued entries up to (but excluding) the next real crash.

        A real worker crash breaks the whole pool and fails every in-flight
        future, so a crash-destined task must fly alone: otherwise the
        supervisor could not tell the scheduled victim from innocent
        bystanders.  The fault plan is pure, so the supervisor simply asks
        it *before* submission.
        """
        wave: List[Tuple[_Entry, FaultDecision]] = []
        while self.queue:
            position, key, payload, attempt = self.queue[0]
            decision = self.decide(key, attempt)
            if self.real and decision.kind == "crash":
                if wave:
                    return wave, None
                return [], self.queue.popleft()
            wave.append((self.queue.popleft(), decision))
        return wave, None

    def _submit(self, entry: _Entry, decision: FaultDecision):
        _, _, payload, _ = entry
        return self.executor.submit(
            _supervised_call,
            (self.fn, payload, decision, self.real,
             self.policy.task_timeout))

    def _run_crash_isolated(self, entry: _Entry) -> None:
        position, key, payload, attempt = entry
        decision = self.decide(key, attempt)
        future = self._submit(entry, decision)
        try:
            outcome = future.result()
        except concurrent.futures.BrokenExecutor:
            # the scheduled kill: one restart, replenish, retry the victim
            self.executor.replenish()
            self.settle_failure(entry, "crash", sleep=True)
        else:  # pragma: no cover - a crash decision that failed to kill
            self.settle_outcome(entry, outcome)

    def _run_wave(self, wave: List[Tuple[_Entry, FaultDecision]]) -> None:
        futures = [(self._submit(entry, decision), entry)
                   for entry, decision in wave]
        broken: Optional[BaseException] = None
        timed_out = False
        for future, entry in futures:
            if broken is not None:
                # the pool died mid-wave; this future is already doomed
                self.settle_failure(entry, "error", sleep=False)
                continue
            try:
                outcome = future.result(timeout=self.policy.task_timeout)
            except concurrent.futures.TimeoutError:
                # a genuinely hung task: abandon the future (it cannot be
                # interrupted), charge a timeout, retry on a fresh dispatch
                future.cancel()
                timed_out = True
                self.settle_failure(entry, "hang", sleep=False)
            except concurrent.futures.BrokenExecutor as error:
                # an UNSCHEDULED breakage (real OOM-kill, say): one restart,
                # every in-flight task of the wave becomes a failure
                broken = error
                self.counters.worker_restarts += 1
                self.settle_failure(entry, "error", sleep=False)
            else:
                self.settle_outcome(entry, outcome)
        if broken is not None:
            if not getattr(self.executor, "can_replenish", False):
                raise broken
            self.executor.replenish()
        elif timed_out and getattr(self.executor, "can_replenish", False):
            # reclaim workers pinned by abandoned (hung) tasks; anything the
            # teardown kills was already charged and requeued above
            self.executor.replenish()


def run_supervised(executor: Optional[Executor], fn: Callable[[Any], Any],
                   tasks: Sequence[Tuple[Any, Any]], *,
                   policy: RetryPolicy,
                   plan: Optional[FaultPlan] = None,
                   round_index: int = 0) -> SupervisionReport:
    """Run ``fn`` over ``tasks`` under supervision; never raises per-task.

    ``tasks`` is a sequence of ``(key, payload)`` pairs — the key (a client
    id in the server) names the task in fault decisions and in the
    ``failed`` list.  Results come back in task order regardless of the
    backend's completion order; the caller that wants completion-order
    consumption re-sorts by its own pure key (as the async schedulers do).

    With ``executor=None`` (or an inline backend) tasks run serially with
    simulated faults; pool backends run wave-based supervision with real
    crashes/hangs on the process backend.  Counters and surviving results
    are bit-identical either way.
    """
    supervisor = _Supervisor(executor, fn, tasks, policy=policy, plan=plan,
                             round_index=round_index)
    if executor is None or not hasattr(executor, "submit"):
        return supervisor.run_inline()
    if executor.payload_witness is not None:
        # witness the user payloads once, like map_ordered would; retries
        # deliberately re-observe nothing (the bench counts round fan-out)
        for _, payload in tasks:
            executor.payload_witness(payload)
    return supervisor.run_pool()


def retry_call(fn: Callable[[], Any], *, policy: RetryPolicy,
               counters: Optional[FaultCounters] = None) -> Any:
    """Call ``fn()`` with the policy's bounded retries (sweep jobs).

    The whole-run analogue of per-task supervision: sweeps retry a failed
    cell through the same :class:`RetryPolicy` (one policy, one set of
    counters) instead of a hand-rolled loop.  The final attempt re-raises.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except Exception:
            if not policy.should_retry(attempt):
                raise
            if counters is not None:
                counters.retries += 1
                counters.backoff_seconds += policy.backoff_seconds(attempt)
            pause = policy.sleep_seconds(attempt)
            if pause > 0:
                time.sleep(pause)
            attempt += 1
