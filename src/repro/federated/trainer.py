"""The federated round loop: orchestration, cost accounting and metrics."""

from __future__ import annotations

import copy
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..data.dataset import FederatedDataset
from ..nn.model import Sequential
from ..parallel import Broadcast, BroadcastHandle, Executor, materialize
from ..scenarios.engine import RoundOutcome, ScenarioEngine
from ..sparsity.accounting import SparseCost
from ..systems.cost import CostBreakdown, LocalCostModel
from ..systems.devices import DeviceFleet, sample_device_fleet
from ..systems.metrics import RoundRecord, TrainingHistory
from .client import Client
from .config import FederatedConfig
from .evaluation import evaluate_params
from .strategy import ClientUpdate, Strategy, StrategyContext


def _local_update_task(payload: Tuple[Strategy, int, Client]
                       ) -> Tuple[ClientUpdate, Dict]:
    """Run one client's local update; executed on a worker.

    Strategies persist per-client information in ``client.state``, so the
    (possibly mutated) state dictionary is shipped back alongside the update
    — with the thread/process backends the caller never sees in-place
    mutations.
    """
    strategy, round_index, client = payload
    update = strategy.local_update(round_index, client)
    return update, client.state


def _evaluation_task(payload: Tuple[Strategy, Client]) -> float:
    """Evaluate one client's personalized model; executed on a worker."""
    strategy, client = payload
    params, pattern = strategy.client_evaluation(client)
    result = evaluate_params(strategy.context.model, params, client.test_data,
                             pattern=pattern)
    return result["accuracy"]


def _bind_broadcast_client(session_handle: BroadcastHandle,
                           round_handle: BroadcastHandle, client_id: int,
                           state: Dict) -> Tuple[Strategy, Client]:
    """Rebuild a dispatch-ready strategy + client from broadcast handles.

    The session broadcast carries the run invariants (model architecture,
    dataset shards, fleet, config, cost model); the round broadcast carries
    the strategy template and the global parameter blocks.  Both are cached
    per worker by :func:`repro.parallel.materialize`, so only ``(client_id,
    state)`` actually crosses the worker boundary per task.  Reusing the
    materialized template across a worker's sequential tasks mirrors the
    serial reference, where one strategy/model instance serves every client
    of the round in turn.
    """
    _, session = materialize(session_handle)
    model, dataset, fleet, config, cost_model = session
    global_params, (template, rng) = materialize(round_handle)
    client = Client(client_id, dataset.client(client_id), fleet[client_id],
                    state=state)
    strategy = copy.copy(template)
    strategy.global_params = global_params
    strategy.context = StrategyContext(
        model=model, clients={client_id: client}, dataset=dataset,
        fleet=fleet, config=config, cost_model=cost_model, rng=rng)
    return strategy, client


def _broadcast_local_update_task(
        payload: Tuple[BroadcastHandle, BroadcastHandle, int, int, Dict]
        ) -> Tuple[ClientUpdate, Dict]:
    """Broadcast-era variant of :func:`_local_update_task`."""
    session_handle, round_handle, round_index, client_id, state = payload
    strategy, client = _bind_broadcast_client(session_handle, round_handle,
                                              client_id, state)
    update = strategy.local_update(round_index, client)
    return update, client.state


def _broadcast_evaluation_task(
        payload: Tuple[BroadcastHandle, BroadcastHandle, int, Dict]) -> float:
    """Broadcast-era variant of :func:`_evaluation_task`."""
    session_handle, round_handle, client_id, state = payload
    strategy, client = _bind_broadcast_client(session_handle, round_handle,
                                              client_id, state)
    params, pattern = strategy.client_evaluation(client)
    result = evaluate_params(strategy.context.model, params, client.test_data,
                             pattern=pattern)
    return result["accuracy"]


class FederatedTrainer:
    """Runs a federated simulation for one strategy on one federated dataset.

    The trainer is strategy-agnostic: it asks the strategy for client
    selections, local updates and aggregation, translates the reported
    computation/communication footprints into simulated wall-clock time
    through the cost model, and evaluates the personalized models on every
    client's local test shard.

    When an :class:`~repro.parallel.Executor` is supplied, the per-round
    ``local_update`` calls and the per-client evaluation fan out across its
    workers: each client's update only depends on the broadcast global
    parameters and its own ``client.state``, so rounds parallelize without
    changing results (selection, aggregation and bandit bookkeeping stay on
    the "server", i.e. the calling thread).  All per-client randomness is
    derived from ``config.seed``, making histories bit-identical across
    backends.

    With a pool backend (``use_broadcast=True``, the default) the trainer
    ships the round-invariant payload through the shared-memory broadcast
    (:mod:`repro.parallel.broadcast`): the run invariants (model, dataset,
    fleet, config, cost model) are published once per run, the strategy
    template and global parameter blocks once per round, and each task only
    carries ``(client_id, client.state)`` plus two small handles.
    ``use_broadcast=False`` restores the legacy per-task payloads (every
    task carries its own pickled strategy copy) — the benchmark harness uses
    it to measure the bytes saved.
    """

    def __init__(self, strategy: Strategy, dataset: FederatedDataset,
                 model_builder: Callable[[], Sequential], *,
                 config: Optional[FederatedConfig] = None,
                 fleet: Optional[DeviceFleet] = None,
                 cost_model: Optional[LocalCostModel] = None,
                 executor: Optional[Executor] = None,
                 use_broadcast: bool = True) -> None:
        self.strategy = strategy
        self.dataset = dataset
        self.config = config or FederatedConfig()
        self.executor = executor
        self.use_broadcast = use_broadcast
        self._session_broadcast: Optional[Broadcast] = None
        self.fleet = fleet or sample_device_fleet(dataset.num_clients,
                                                  seed=self.config.seed)
        if len(self.fleet) != dataset.num_clients:
            raise ValueError(
                f"device fleet has {len(self.fleet)} profiles but the dataset "
                f"has {dataset.num_clients} clients")
        self.cost_model = cost_model or LocalCostModel(self.config.cost_alpha,
                                                       seed=self.config.seed)
        self.scenario = (ScenarioEngine(self.config.scenario,
                                        seed=self.config.seed)
                         if self.config.scenario is not None else None)
        self.model = model_builder()
        self.clients: Dict[int, Client] = {
            cid: Client(cid, dataset.client(cid), self.fleet[cid])
            for cid in dataset.client_ids
        }
        self.context = StrategyContext(
            model=self.model, clients=self.clients, dataset=dataset,
            fleet=self.fleet, config=self.config, cost_model=self.cost_model,
            rng=np.random.default_rng(self.config.seed))

    # ------------------------------------------------------------------ run
    def run(self) -> TrainingHistory:
        """Execute ``config.num_rounds`` rounds and return the history."""
        try:
            return self._run()
        finally:
            self.close()

    def _run(self) -> TrainingHistory:
        history = TrainingHistory(method=self.strategy.name,
                                  dataset=self.dataset.name)
        self.strategy.setup(self.context)
        cumulative_flops = 0.0
        cumulative_time = 0.0
        cumulative_sim_time = 0.0
        for round_index in range(self.config.num_rounds):
            selected = self._select_clients(round_index)
            if self.scenario is not None:
                active, unavailable = self.scenario.split_available(
                    round_index, selected)
            else:
                active, unavailable = list(selected), []
            updates = self._run_local_updates(round_index, active)

            costs: Dict[int, CostBreakdown] = {}
            round_flops = 0.0
            upload = 0.0
            download = 0.0
            for update in updates:
                device = self.fleet[update.client_id]
                footprint = SparseCost(update.flops, update.upload_bytes,
                                       update.download_bytes)
                costs[update.client_id] = self.cost_model.client_cost(
                    device, footprint, round_index)
                round_flops += update.flops
                upload += update.upload_bytes
                download += update.download_bytes
            round_time = LocalCostModel.round_time(costs.values())
            outcome = self._resolve_round(round_index, costs)
            kept = set(outcome.participants)
            kept_updates = [u for u in updates if u.client_id in kept]
            kept_costs = {u.client_id: costs[u.client_id]
                          for u in kept_updates}
            self.strategy.aggregate(round_index, kept_updates)
            self.strategy.post_round(round_index, kept_updates, kept_costs)

            cumulative_flops += round_flops
            cumulative_time += round_time
            cumulative_sim_time += outcome.sim_time
            train_accuracy = (float(np.mean([u.train_accuracy
                                             for u in kept_updates]))
                              if kept_updates else 0.0)
            should_eval = ((round_index + 1) % self.config.eval_every == 0
                           or round_index == self.config.num_rounds - 1)
            # when evaluation is skipped this round, the last fresh value is
            # carried forward and flagged as such via ``evaluated=False``
            test_accuracy = (self.evaluate_personalized()
                             if should_eval else
                             (history.records[-1].test_accuracy
                              if history.records else 0.0))
            history.append(RoundRecord(
                round_index=round_index, selected_clients=selected,
                train_accuracy=train_accuracy, test_accuracy=test_accuracy,
                round_flops=round_flops, round_time_seconds=round_time,
                upload_bytes=upload, download_bytes=download,
                cumulative_flops=cumulative_flops,
                cumulative_time_seconds=cumulative_time,
                sparse_ratios={u.client_id: u.sparse_ratio for u in updates},
                evaluated=should_eval,
                sim_time=outcome.sim_time,
                cumulative_sim_time=cumulative_sim_time,
                dropped=sorted(unavailable) + list(outcome.stragglers),
                straggler_count=len(outcome.stragglers)))
        return history

    # -------------------------------------------------------------- scenario
    def _select_clients(self, round_index: int) -> List[int]:
        """Ask the strategy for a round's clients, over-selecting if asked.

        Over-selection widens ``clients_per_round`` *through the config* for
        the duration of the call, so every strategy's own selection logic
        (uniform, Oort-style utility, ...) sees the widened budget without
        API changes.
        """
        if self.scenario is None:
            return self.strategy.select_clients(round_index)
        base = self.config.clients_per_round
        target = min(self.scenario.selection_target(base), len(self.clients))
        if target == base:
            return self.strategy.select_clients(round_index)
        self.config.clients_per_round = target
        try:
            return self.strategy.select_clients(round_index)
        finally:
            self.config.clients_per_round = base

    def _resolve_round(self, round_index: int,
                       costs: Dict[int, CostBreakdown]) -> RoundOutcome:
        """Let the scenario decide who survives and how long the round took.

        Without a scenario every client that ran participates and the round
        takes the synchronous Eq. 18 time, exactly as before this engine
        existed.
        """
        if self.scenario is None:
            return RoundOutcome(tuple(sorted(costs)), (),
                                LocalCostModel.round_time(costs.values()))
        latencies = {client_id: self.scenario.latency(
            round_index, client_id, cost.total_seconds)
            for client_id, cost in costs.items()}
        return self.scenario.resolve(round_index, latencies)

    # ------------------------------------------------------------ broadcast
    def _broadcast_enabled(self) -> bool:
        """Whether fan-out should go through the shared-memory broadcast."""
        return (self.use_broadcast and self.executor is not None
                and self.executor.supports_broadcast)

    def _session_handle(self) -> BroadcastHandle:
        """Publish the run invariants once per trainer (lazily).

        The model's parameter *values* at publication time are irrelevant:
        every task installs the parameters it needs (``train_locally`` /
        ``evaluate_params`` both call ``set_parameters`` first), so only the
        architecture matters — exactly as with the serial reference, where
        one model instance is scratch space for every client in turn.
        """
        if self._session_broadcast is None:
            self._session_broadcast = Broadcast(
                (self.model, self.dataset, self.fleet, self.config,
                 self.cost_model))
        return self._session_broadcast.handle

    def _round_broadcast(self, round_index: int) -> Broadcast:
        """Publish the round-invariant payload: strategy template + params.

        The template is the strategy with its big, round-invariant pieces
        stripped: ``global_params`` travels as raw shared-memory blocks and
        ``context`` is rebuilt worker-side from the session broadcast.
        """
        template = copy.copy(self.strategy)
        template.context = None
        template.global_params = None
        return Broadcast((template, self.context.rng),
                         params=self.strategy.global_params,
                         round_index=round_index)

    def close(self) -> None:
        """Release broadcast resources (recreated lazily if needed again)."""
        if self._session_broadcast is not None:
            self._session_broadcast.close()
            self._session_broadcast = None

    # ------------------------------------------------------------- dispatch
    def _dispatch_strategy(self, client: Client) -> Strategy:
        """A shallow strategy copy whose context carries only ``client``.

        The copy shares the (read-only during fan-out) global parameters and
        model with the original; slimming ``context.clients`` and the
        dataset's shards down to the one dispatched client keeps
        thread/process payloads proportional to a single client — the other
        clients' states and data never cross the worker boundary.  Dataset
        metadata (name, num_classes, input_shape) stays intact for
        strategies that consult it during local work.
        """
        strategy = copy.copy(self.strategy)
        slim_dataset = replace(
            self.dataset, clients={client.client_id: client.data})
        strategy.context = replace(self.context,
                                   clients={client.client_id: client},
                                   dataset=slim_dataset)
        return strategy

    def _run_local_updates(self, round_index: int,
                           selected: List[int]) -> List[ClientUpdate]:
        """Run the selected clients' local updates, fanning out if possible."""
        if self.executor is None or not selected:
            return [self.strategy.local_update(round_index, self.clients[cid])
                    for cid in selected]
        if self._broadcast_enabled():
            session = self._session_handle()
            with self._round_broadcast(round_index) as broadcast:
                payloads = [(session, broadcast.handle, round_index, cid,
                             self.clients[cid].state) for cid in selected]
                results = self.executor.map_ordered(
                    _broadcast_local_update_task, payloads)
        else:
            legacy = [(self._dispatch_strategy(self.clients[cid]), round_index,
                       self.clients[cid]) for cid in selected]
            results = self.executor.map_ordered(_local_update_task, legacy)
        updates: List[ClientUpdate] = []
        for update, state in results:
            self.clients[update.client_id].state = state
            updates.append(update)
        return updates

    # ------------------------------------------------------------ evaluation
    def evaluate_personalized(self) -> float:
        """Average accuracy of every client's inference model on its test shard."""
        clients = list(self.clients.values())
        if self.executor is None:
            accuracies = []
            for client in clients:
                params, pattern = self.strategy.client_evaluation(client)
                result = evaluate_params(self.model, params, client.test_data,
                                         pattern=pattern)
                accuracies.append(result["accuracy"])
        elif self._broadcast_enabled():
            session = self._session_handle()
            # a fresh broadcast (not the round's): aggregation has moved the
            # global parameters since the local-update fan-out
            with self._round_broadcast(-1) as broadcast:
                payloads = [(session, broadcast.handle, client.client_id,
                             client.state) for client in clients]
                accuracies = self.executor.map_ordered(
                    _broadcast_evaluation_task, payloads)
        else:
            payloads = [(self._dispatch_strategy(client), client)
                        for client in clients]
            accuracies = self.executor.map_ordered(_evaluation_task, payloads)
        return float(np.mean(accuracies)) if accuracies else 0.0


def run_federated(strategy: Strategy, dataset: FederatedDataset,
                  model_builder: Callable[[], Sequential], *,
                  config: Optional[FederatedConfig] = None,
                  fleet: Optional[DeviceFleet] = None,
                  cost_model: Optional[LocalCostModel] = None,
                  executor: Optional[Executor] = None,
                  use_broadcast: bool = True) -> TrainingHistory:
    """Convenience wrapper: build a trainer and run it."""
    trainer = FederatedTrainer(strategy, dataset, model_builder, config=config,
                               fleet=fleet, cost_model=cost_model,
                               executor=executor, use_broadcast=use_broadcast)
    return trainer.run()
