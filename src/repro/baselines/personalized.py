"""Personalized (dense) federated learning baselines.

* Ditto trains a personal model regularized towards the global one in
  addition to the standard global update.
* FedPer / FedRep split the model into a shared body and a personal head.
* Per-FedAvg personalizes by fine-tuning the meta-learned global model on
  local data before inference.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..federated.client import Client
from ..federated.local import train_locally
from ..federated.strategy import ClientUpdate, Strategy
from ..federated.aggregation import fedavg
from ..nn.params import ParamDict, copy_params


HEAD_PREFIX = "head."


def head_keys(params: ParamDict) -> List[str]:
    """Parameter keys belonging to the personalization head (the output layer)."""
    return [key for key in params if key.startswith(HEAD_PREFIX)]


def body_keys(params: ParamDict) -> List[str]:
    """Parameter keys belonging to the shared representation body."""
    return [key for key in params if not key.startswith(HEAD_PREFIX)]


class Ditto(Strategy):
    """Ditto: fair/robust personalization via a proximally regularized personal model.

    Each selected client performs two local passes: the standard global-model
    update (uploaded and averaged) and a personal-model update with a proximal
    pull towards the current global parameters (kept locally).  The double
    work is reflected in the FLOP accounting, matching Table I where Ditto
    costs twice FedAvg.
    """

    name = "ditto"

    def __init__(self, personal_mu: float = 0.1) -> None:
        super().__init__()
        if personal_mu < 0:
            raise ValueError("personal_mu must be non-negative")
        self.personal_mu = personal_mu

    def local_update(self, round_index: int, client: Client) -> ClientUpdate:
        context = self._require_context()
        config = context.config
        rng = self._client_rng(round_index, client.client_id)
        global_result = train_locally(
            context.model, self.global_params, client.train_data,
            iterations=config.local_iterations, batch_size=config.batch_size,
            learning_rate=config.learning_rate, momentum=config.momentum,
            clip_norm=config.clip_norm, rng=rng)
        personal_start = client.state.get("personal_params", self.global_params)
        personal_result = train_locally(
            context.model, personal_start, client.train_data,
            iterations=config.local_iterations, batch_size=config.batch_size,
            learning_rate=config.learning_rate, momentum=config.momentum,
            clip_norm=config.clip_norm, prox_mu=self.personal_mu,
            prox_center=self.global_params, rng=rng)
        client.state["personal_params"] = personal_result.params
        flops, upload, download = self._round_footprint(client)
        return ClientUpdate(
            client_id=client.client_id, params=global_result.params,
            num_examples=client.num_train_examples,
            train_accuracy=personal_result.train_accuracy,
            train_loss=personal_result.train_loss,
            flops=2.0 * flops, upload_bytes=upload, download_bytes=download)

    def client_evaluation(self, client: Client) -> Tuple[ParamDict, None]:
        personal = client.state.get("personal_params")
        return (personal if personal is not None else self.global_params), None


class FedPer(Strategy):
    """FedPer: shared body, personal classification head kept on-device."""

    name = "fedper"

    def local_update(self, round_index: int, client: Client) -> ClientUpdate:
        context = self._require_context()
        config = context.config
        start = copy_params(self.global_params)
        personal_head = client.state.get("personal_head")
        if personal_head is not None:
            start.update(personal_head)
        result = train_locally(
            context.model, start, client.train_data,
            iterations=config.local_iterations, batch_size=config.batch_size,
            learning_rate=config.learning_rate, momentum=config.momentum,
            clip_norm=config.clip_norm,
            rng=self._client_rng(round_index, client.client_id))
        client.state["personal_head"] = {key: result.params[key]
                                         for key in head_keys(result.params)}
        client.state["personal_body"] = {key: result.params[key]
                                         for key in body_keys(result.params)}
        flops, upload, download = self._round_footprint(client)
        # the head stays local, so the uplink volume shrinks accordingly
        head_fraction = sum(result.params[key].size for key in head_keys(result.params)) \
            / max(sum(v.size for v in result.params.values()), 1)
        return ClientUpdate(
            client_id=client.client_id, params=result.params,
            num_examples=client.num_train_examples,
            train_accuracy=result.train_accuracy, train_loss=result.train_loss,
            flops=flops, upload_bytes=upload * (1.0 - head_fraction),
            download_bytes=download)

    def aggregate(self, round_index: int, updates: List[ClientUpdate]) -> None:
        if not updates:
            return
        merged = fedavg([u.params for u in updates],
                        [u.num_examples for u in updates])
        # only the body is shared; the global head keeps its previous value
        for key in head_keys(merged):
            merged[key] = self.global_params[key]
        self.global_params = merged

    def client_evaluation(self, client: Client) -> Tuple[ParamDict, None]:
        params = copy_params(self.global_params)
        personal_head = client.state.get("personal_head")
        if personal_head is not None:
            params.update(personal_head)
        return params, None


class FedRep(FedPer):
    """FedRep: like FedPer, but the head and body are trained in two phases."""

    name = "fedrep"

    def __init__(self, head_iterations: Optional[int] = None) -> None:
        super().__init__()
        self.head_iterations = head_iterations

    def local_update(self, round_index: int, client: Client) -> ClientUpdate:
        context = self._require_context()
        config = context.config
        rng = self._client_rng(round_index, client.client_id)
        start = copy_params(self.global_params)
        personal_head = client.state.get("personal_head")
        if personal_head is not None:
            start.update(personal_head)
        head_iters = self.head_iterations or max(1, config.local_iterations // 2)
        # phase 1: adapt the personal head with the body frozen
        head_result = train_locally(
            context.model, start, client.train_data,
            iterations=head_iters, batch_size=config.batch_size,
            learning_rate=config.learning_rate, momentum=config.momentum,
            clip_norm=config.clip_norm, trainable_keys=head_keys(start), rng=rng)
        # phase 2: adapt the shared body with the head frozen
        body_result = train_locally(
            context.model, head_result.params, client.train_data,
            iterations=config.local_iterations, batch_size=config.batch_size,
            learning_rate=config.learning_rate, momentum=config.momentum,
            clip_norm=config.clip_norm, trainable_keys=body_keys(start), rng=rng)
        client.state["personal_head"] = {key: body_result.params[key]
                                         for key in head_keys(body_result.params)}
        flops, upload, download = self._round_footprint(client)
        head_fraction = sum(body_result.params[key].size
                            for key in head_keys(body_result.params)) \
            / max(sum(v.size for v in body_result.params.values()), 1)
        extra = head_iters / config.local_iterations
        return ClientUpdate(
            client_id=client.client_id, params=body_result.params,
            num_examples=client.num_train_examples,
            train_accuracy=body_result.train_accuracy,
            train_loss=body_result.train_loss,
            flops=flops * (1.0 + extra),
            upload_bytes=upload * (1.0 - head_fraction), download_bytes=download)


class PerFedAvg(Strategy):
    """Per-FedAvg: MAML-style personalization by local fine-tuning at inference.

    Training follows FedAvg (first-order approximation); personalization
    happens at evaluation time, where every client adapts the global model
    with a few SGD steps on its local training data before testing.
    """

    name = "perfedavg"

    def __init__(self, adaptation_steps: int = 2,
                 adaptation_lr: Optional[float] = None) -> None:
        super().__init__()
        if adaptation_steps < 0:
            raise ValueError("adaptation_steps must be non-negative")
        self.adaptation_steps = adaptation_steps
        self.adaptation_lr = adaptation_lr

    def client_evaluation(self, client: Client) -> Tuple[ParamDict, None]:
        context = self._require_context()
        config = context.config
        if self.adaptation_steps == 0:
            return self.global_params, None
        result = train_locally(
            context.model, self.global_params, client.train_data,
            iterations=self.adaptation_steps, batch_size=config.batch_size,
            learning_rate=self.adaptation_lr or config.learning_rate,
            momentum=0.0, clip_norm=config.clip_norm,
            rng=self._client_rng(10_000, client.client_id))
        return result.params, None
