"""Extending the library: writing a custom federated strategy.

The example implements "FedLPS-TopUp", a toy variant that reuses FedLPS's
learnable sparse training but tops every client's sparse ratio up by a fixed
margin above its bandit decision, and plugs it into the same trainer,
datasets and cost model as every built-in method.  It shows the three hooks a
custom strategy typically overrides: ``local_update``, ``aggregate`` (here
inherited) and ``client_evaluation``.

Run with::

    python examples/custom_strategy.py
"""

from __future__ import annotations

import numpy as np

from repro.core import FedLPS
from repro.data import build_federated_dataset
from repro.federated import FederatedConfig, run_federated
from repro.federated.client import Client
from repro.federated.strategy import ClientUpdate
from repro.models import build_model_for_dataset


class FedLPSTopUp(FedLPS):
    """FedLPS with a safety margin added to every bandit-chosen ratio."""

    name = "fedlps-topup"

    def __init__(self, margin: float = 0.1, **kwargs) -> None:
        super().__init__(**kwargs)
        self.margin = margin

    def local_update(self, round_index: int, client: Client) -> ClientUpdate:
        state_ratio = client.state.get("ratio")
        if state_ratio is not None:
            client.state["ratio"] = float(np.clip(state_ratio + self.margin,
                                                  self.ratio_min, 1.0))
        return super().local_update(round_index, client)


def main() -> None:
    dataset = build_federated_dataset("mnist", num_clients=10,
                                      examples_per_client=50, seed=11)
    config = FederatedConfig(num_rounds=10, clients_per_round=3,
                             local_iterations=6, seed=11)

    def model_builder():
        return build_model_for_dataset("mnist", seed=11)

    for strategy in (FedLPS(), FedLPSTopUp(margin=0.15)):
        history = run_federated(strategy, dataset, model_builder, config=config)
        ratios = [ratio for record in history.records
                  for ratio in record.sparse_ratios.values()]
        print(f"{history.method:14s} accuracy={history.final_accuracy():.3f} "
              f"mean ratio={np.mean(ratios):.2f} "
              f"flops={history.total_flops:.3e}")


if __name__ == "__main__":
    main()
