"""Unit tests for Conv2d and the pooling layers."""

import numpy as np
import pytest

from repro.nn import AvgPool2d, Conv2d, MaxPool2d


def numeric_gradient(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = x[idx]
        x[idx] = original + eps
        plus = f()
        x[idx] = original - eps
        minus = f()
        x[idx] = original
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


class TestConvForward:
    def test_output_shape_with_padding(self):
        conv = Conv2d(2, 3, 3, padding=1, name="c")
        out = conv.forward(np.ones((4, 2, 8, 8)))
        assert out.shape == (4, 3, 8, 8)

    def test_output_shape_with_stride(self):
        conv = Conv2d(1, 2, 3, stride=2, name="c")
        out = conv.forward(np.ones((1, 1, 7, 7)))
        assert out.shape == (1, 2, 3, 3)

    def test_matches_manual_convolution(self):
        conv = Conv2d(1, 1, 2, name="c")
        conv.params["W"] = np.arange(4, dtype=float).reshape(1, 1, 2, 2)
        conv.params["b"] = np.zeros(1)
        x = np.arange(9, dtype=float).reshape(1, 1, 3, 3)
        out = conv.forward(x)
        # manual valid convolution (cross-correlation) at position (0, 0)
        expected00 = np.sum(x[0, 0, :2, :2] * conv.params["W"][0, 0])
        assert out.shape == (1, 1, 2, 2)
        assert out[0, 0, 0, 0] == pytest.approx(expected00)

    def test_rejects_wrong_channel_count(self):
        conv = Conv2d(2, 3, 3, name="c")
        with pytest.raises(ValueError):
            conv.forward(np.ones((1, 1, 8, 8)))


class TestConvBackward:
    def test_weight_gradient_matches_numeric(self):
        rng = np.random.default_rng(0)
        conv = Conv2d(1, 2, 3, padding=1, name="c", rng=rng)
        x = rng.standard_normal((2, 1, 5, 5))
        target = rng.standard_normal((2, 2, 5, 5))

        def loss():
            return 0.5 * float(np.sum((conv.forward(x) - target) ** 2))

        conv.zero_grad()
        out = conv.forward(x)
        conv.backward(out - target)
        numeric = numeric_gradient(loss, conv.params["W"])
        np.testing.assert_allclose(conv.grads["W"], numeric, atol=1e-4)

    def test_input_gradient_matches_numeric(self):
        rng = np.random.default_rng(1)
        conv = Conv2d(1, 1, 3, name="c", rng=rng)
        x = rng.standard_normal((1, 1, 5, 5))
        target = rng.standard_normal((1, 1, 3, 3))

        def loss():
            return 0.5 * float(np.sum((conv.forward(x) - target) ** 2))

        conv.zero_grad()
        out = conv.forward(x)
        grad_in = conv.backward(out - target)
        numeric = numeric_gradient(loss, x)
        np.testing.assert_allclose(grad_in, numeric, atol=1e-4)


class TestConvUnits:
    def test_n_units_is_out_channels(self):
        assert Conv2d(1, 6, 3, name="c").n_units == 6

    def test_gate_zeroes_channels(self):
        conv = Conv2d(1, 3, 3, padding=1, name="c")
        conv.set_unit_gate(np.array([1.0, 0.0, 1.0]))
        out = conv.forward(np.ones((1, 1, 4, 4)))
        assert np.all(out[:, 1] == 0.0)

    def test_expand_unit_mask(self):
        conv = Conv2d(2, 3, 3, name="c")
        masks = conv.expand_unit_mask(np.array([0.0, 1.0, 0.0]))
        assert masks["W"].shape == conv.params["W"].shape
        assert np.all(masks["W"][0] == 0) and np.all(masks["W"][1] == 1)
        np.testing.assert_array_equal(masks["b"], [0, 1, 0])

    def test_flops_scale_with_spatial_size(self):
        conv = Conv2d(1, 4, 3, padding=1, name="c")
        small, _ = conv.flops_per_example((1, 8, 8))
        large, _ = conv.flops_per_example((1, 16, 16))
        assert large == 4 * small


class TestPooling:
    def test_maxpool_reduces_spatial_dims(self):
        pool = MaxPool2d(2, name="p")
        out = pool.forward(np.arange(16, dtype=float).reshape(1, 1, 4, 4))
        assert out.shape == (1, 1, 2, 2)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_backward_routes_gradient_to_max(self):
        pool = MaxPool2d(2, name="p")
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        pool.forward(x)
        grad = pool.backward(np.ones((1, 1, 2, 2)))
        assert grad.sum() == 4
        assert grad[0, 0, 1, 1] == 1.0  # position of max 5

    def test_maxpool_requires_divisible_dims(self):
        pool = MaxPool2d(3, name="p")
        with pytest.raises(ValueError):
            pool.forward(np.ones((1, 1, 4, 4)))

    def test_avgpool_values(self):
        pool = AvgPool2d(2, name="p")
        x = np.ones((1, 2, 4, 4))
        out = pool.forward(x)
        np.testing.assert_allclose(out, np.ones((1, 2, 2, 2)))

    def test_avgpool_backward_distributes_gradient(self):
        pool = AvgPool2d(2, name="p")
        pool.forward(np.ones((1, 1, 2, 2)))
        grad = pool.backward(np.array([[[[4.0]]]]))
        np.testing.assert_allclose(grad, np.ones((1, 1, 2, 2)))

    def test_pool_flops_and_shape(self):
        pool = MaxPool2d(2, name="p")
        flops, shape = pool.flops_per_example((3, 8, 8))
        assert flops == 0
        assert shape == (3, 4, 4)
