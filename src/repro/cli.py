"""Command-line interface for running FedLPS experiments.

Examples::

    python -m repro.cli run --dataset mnist --method fedlps --rounds 20
    python -m repro.cli run --preset mnist --scenario deadline-tight \
        --backend process --workers 4
    python -m repro.cli compare --dataset cifar10 --methods fedavg fedper fedlps
    python -m repro.cli table1 --datasets mnist cifar10 --rounds 10
    python -m repro.cli sweep --datasets mnist cifar10 --methods fedavg fedlps \
        --scenarios ideal deadline-tight --backend process --workers 4
    python -m repro.cli run --preset mnist --checkpoint-dir ckpts --resume
    python -m repro.cli sweep --checkpoint-dir ckpts --retries 2
    python -m repro.cli bench --scale 0.25 --check
    python -m repro.cli bench --checkpoint-scale 1.0 --check

Every experiment command accepts ``--workers N`` and ``--backend
{serial,thread,process}``.  ``run`` and ``compare`` parallelize the per-round
client work inside each simulation; ``sweep`` dispatches whole
method×dataset×scenario runs as parallel jobs and caches their results on
disk, so rebuilding the paper's table/figure grid is incremental.

``--scenario`` attaches a system-heterogeneity scenario (client
availability, stragglers, participation deadlines — see ``repro.scenarios``)
to any experiment command; ``sweep --scenarios`` grids over several.
``--aggregation`` picks the server's training shape (``sync`` — the paper's
synchronous rounds; ``fedasync`` — staleness-weighted aggregation on every
arrival; ``fedbuff`` — buffered aggregation every K arrivals); ``sweep
--aggregations`` grids over several for sync-vs-async time-to-accuracy
comparisons.  Scenario and aggregation decisions derive from ``(seed,
round, client)``, so histories stay bit-identical across backends.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from .baselines import TABLE1_METHODS, available_strategies
from .experiments import (DATASETS, DEFAULT_CACHE_DIR, ResultCache,
                          format_rows, preset_for, run_method,
                          run_scenario_sweep, scaled, summarize,
                          table1_accuracy_flops)
from .parallel import (available_backends, available_codecs,
                       available_fault_plans, resolve_executor)
from .scenarios import available_scenarios
from .server import available_aggregations

#: the headline columns every experiment command prints
SUMMARY_COLUMNS = ["accuracy", "total_flops", "total_time_seconds",
                   "sim_time_seconds", "time_to_accuracy_seconds"]

#: fan-out bench defaults, shared by build_parser and the --fleet-scale
#: clash guard so the two can never drift apart
BENCH_SCALE_DEFAULT = 1.0
BENCH_WORKERS_DEFAULT = [1, 2, 4]
BENCH_REPEATS_DEFAULT = 2


def _preset_overrides(args: argparse.Namespace) -> dict:
    overrides = {}
    if args.rounds is not None:
        overrides["num_rounds"] = args.rounds
    if args.clients is not None:
        overrides["num_clients"] = args.clients
    if args.clients_per_round is not None:
        overrides["clients_per_round"] = args.clients_per_round
    if args.local_iterations is not None:
        overrides["local_iterations"] = args.local_iterations
    if args.seed is not None:
        overrides["seed"] = args.seed
    if getattr(args, "scenario", None) is not None:
        overrides["scenario"] = args.scenario
    if getattr(args, "aggregation", None) is not None:
        overrides["aggregation"] = args.aggregation
    if getattr(args, "codec", None) is not None:
        overrides["codec"] = args.codec
    if getattr(args, "fault_plan", None) is not None:
        overrides["fault_plan"] = args.fault_plan
    if getattr(args, "task_timeout", None) is not None:
        overrides["task_timeout"] = args.task_timeout
    if getattr(args, "max_retries", None) is not None:
        overrides["max_retries"] = args.max_retries
    if getattr(args, "batch_cohort", None):
        overrides["batch_cohort"] = True
    if getattr(args, "reducer_shards", None) is not None:
        overrides["reducer_shards"] = args.reducer_shards
    return overrides


def _dataset_from(args: argparse.Namespace) -> str:
    """--preset is an alias for --dataset (presets are named by dataset)."""
    return args.preset if args.preset is not None else args.dataset


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="mnist",
                        help="mnist / cifar10 / cifar100 / tinyimagenet / reddit")
    parser.add_argument("--preset", default=None,
                        help="alias for --dataset (presets are named after "
                             "their dataset)")
    parser.add_argument("--scenario", default=None,
                        choices=available_scenarios(),
                        help="system-heterogeneity scenario (availability, "
                             "stragglers, deadlines); default: ideal")
    parser.add_argument("--aggregation", default=None,
                        choices=available_aggregations(),
                        help="server aggregation mode: sync (synchronous "
                             "rounds), fedasync (staleness-weighted, every "
                             "arrival) or fedbuff (buffered); default: sync")
    parser.add_argument("--codec", default=None,
                        choices=available_codecs(),
                        help="wire codec for the client/server round trip: "
                             "dense (raw arrays), sparse (lossless indexed "
                             "slices), int8 (learned-scale quantization) or "
                             "pq (product quantization); default: dense")
    parser.add_argument("--fault-plan", default=None,
                        choices=available_fault_plans(),
                        help="deterministic chaos schedule injected into the "
                             "client fan-out (repro.parallel.faults), seeded "
                             "from the run seed and cache-keyed like the "
                             "codec; pair with --max-retries so injected "
                             "faults are retried instead of dropped")
    parser.add_argument("--task-timeout", type=float, default=None,
                        help="per-client-task wall-clock timeout in seconds; "
                             "a timed-out task is retried (then dropped) and "
                             "its hung worker reclaimed on the process "
                             "backend")
    parser.add_argument("--max-retries", type=int, default=None,
                        help="retry a failed client task up to N times with "
                             "capped exponential backoff before dropping "
                             "the client from the round (default 0)")
    parser.add_argument("--batch-cohort", action="store_true", default=None,
                        help="fuse each round's local updates into one "
                             "batched tensor program (client axis leading) "
                             "when the strategy/model pair supports it; "
                             "bit-identical histories, much less Python "
                             "overhead on homogeneous cohorts")
    parser.add_argument("--reducer-shards", type=int, default=None,
                        help="partition the aggregation across N "
                             "parameter-server reducer shards (keys are "
                             "assigned by a deterministic hash of their "
                             "name); histories are bit-identical at every "
                             "count (default 1 = unsharded)")
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--clients", type=int, default=None)
    parser.add_argument("--clients-per-round", type=int, default=None)
    parser.add_argument("--local-iterations", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    _add_executor_arguments(parser)


def _add_executor_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=1,
                        help="worker count for the execution backend "
                             "(0 = auto-sized from the CPU count)")
    parser.add_argument("--backend", default="serial",
                        choices=available_backends(),
                        help="execution backend for parallel work")
    parser.add_argument("--hosts", nargs="+", default=None,
                        metavar="HOST:PORT",
                        help="socket backend only: connect to pre-started "
                             "`python -m repro.parallel.worker --listen` "
                             "daemons at these addresses instead of "
                             "spawning localhost workers (requires "
                             "--worker-token)")
    parser.add_argument("--worker-token", default=None,
                        help="shared secret authenticating the socket "
                             "backend against --hosts worker daemons")


def _executor_from(args: argparse.Namespace):
    return resolve_executor(args.backend, args.workers,
                            hosts=getattr(args, "hosts", None),
                            worker_token=getattr(args, "worker_token", None))


def _fanout_only_clashes(args: argparse.Namespace) -> List[str]:
    """Fan-out bench flags the alternate bench axes would silently ignore.

    Silently dropping them would look like they were honored (e.g. a
    missing report file, or an unexpectedly long run), so the axis
    dispatchers reject the invocation instead.
    """
    fanout_only = {
        "--output": args.output is not None,
        "--scale": args.scale != BENCH_SCALE_DEFAULT,
        "--backends": args.backends != list(available_backends()),
        "--workers-list": args.workers_list != BENCH_WORKERS_DEFAULT,
        "--repeats": args.repeats != BENCH_REPEATS_DEFAULT,
        "--aggregations": args.aggregations != list(available_aggregations()),
    }
    return [flag for flag, used in fanout_only.items() if used]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro",
                                     description="FedLPS reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one method on one dataset")
    run_parser.add_argument("--method", default="fedlps",
                            choices=available_strategies())
    run_parser.add_argument("--checkpoint-dir", default=None,
                            help="checkpoint the run into this directory at "
                                 "round boundaries (see repro.checkpoint)")
    run_parser.add_argument("--checkpoint-every", type=int, default=1,
                            help="checkpoint every N rounds (default 1)")
    run_parser.add_argument("--resume", action="store_true",
                            help="resume from the latest checkpoint in "
                                 "--checkpoint-dir (fresh start if none); "
                                 "the continued history is bit-identical to "
                                 "an uninterrupted run")
    run_parser.add_argument("--stop-after-round", type=int, default=None,
                            help="deterministic preemption: checkpoint round "
                                 "K, then exit with status 3 (CI resume "
                                 "smoke)")
    run_parser.add_argument("--history-out", default=None,
                            help="write the run's full history JSON here "
                                 "(sorted keys — byte-comparable across "
                                 "runs/backends)")
    _add_common_arguments(run_parser)

    compare_parser = sub.add_parser("compare",
                                    help="run several methods on one dataset")
    compare_parser.add_argument("--methods", nargs="+", default=["fedavg", "fedlps"])
    _add_common_arguments(compare_parser)

    table1_parser = sub.add_parser("table1", help="reproduce Table I rows")
    table1_parser.add_argument("--datasets", nargs="+", default=["mnist"])
    table1_parser.add_argument("--methods", nargs="+", default=list(TABLE1_METHODS))
    _add_common_arguments(table1_parser)

    sweep_parser = sub.add_parser(
        "sweep", help="run a method × dataset × scenario grid with caching")
    sweep_parser.add_argument("--datasets", nargs="+", default=list(DATASETS))
    sweep_parser.add_argument("--methods", nargs="+",
                              default=["fedavg", "fedlps"])
    sweep_parser.add_argument("--scenarios", nargs="+", default=["ideal"],
                              choices=available_scenarios(),
                              help="system-heterogeneity scenarios to sweep")
    sweep_parser.add_argument("--aggregations", nargs="+", default=["sync"],
                              choices=available_aggregations(),
                              help="server aggregation modes to sweep "
                                   "(sync-vs-async time-to-accuracy grids)")
    sweep_parser.add_argument("--codecs", nargs="+", default=["dense"],
                              choices=available_codecs(),
                              help="wire codecs to sweep (adds codec and "
                                   "wire_upload_bytes columns when more "
                                   "than plain dense is requested)")
    sweep_parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                              help="directory of the JSON result cache")
    sweep_parser.add_argument("--no-cache", action="store_true",
                              help="always re-run, never read or write the cache")
    sweep_parser.add_argument("--checkpoint-dir", default=None,
                              help="root directory for per-cell run "
                                   "checkpoints (each grid cell gets a "
                                   "spec-keyed subdirectory)")
    sweep_parser.add_argument("--retries", type=int, default=0,
                              help="retry a failed cell up to N times, "
                                   "resuming from its last checkpoint when "
                                   "--checkpoint-dir is set")
    _add_common_arguments(sweep_parser)

    bench_parser = sub.add_parser(
        "bench", help="time round fan-out across executor backends and "
                      "record the BENCH_fanout.json trajectory")
    bench_parser.add_argument("--scale", type=float,
                              default=BENCH_SCALE_DEFAULT,
                              help="workload scale factor (1.0 = the CI "
                                   "smoke workload)")
    bench_parser.add_argument("--backends", nargs="+",
                              default=list(available_backends()),
                              choices=available_backends())
    bench_parser.add_argument("--workers-list", nargs="+", type=int,
                              default=list(BENCH_WORKERS_DEFAULT),
                              help="worker counts to time for pool backends")
    bench_parser.add_argument("--repeats", type=int,
                              default=BENCH_REPEATS_DEFAULT,
                              help="timed runs per backend/worker cell "
                                   "(after one untimed warm-up run)")
    bench_parser.add_argument("--aggregations", nargs="+",
                              default=list(available_aggregations()),
                              choices=available_aggregations(),
                              help="aggregation modes to profile (wall-clock "
                                   "+ sim-time-to-accuracy under the flaky "
                                   "scenario)")
    bench_parser.add_argument("--output", default=None,
                              help="where to write the fan-out JSON report "
                                   "(default BENCH_fanout.json; '' skips "
                                   "writing; incompatible with "
                                   "--fleet-scale, whose report path is "
                                   "--fleet-output)")
    bench_parser.add_argument("--check", action="store_true",
                              help="exit non-zero if the process backend is "
                                   "slower than serial by more than the "
                                   "recorded spawn overhead")
    bench_parser.add_argument("--fleet-scale", type=float, default=None,
                              help="run the fleet-scale axis instead: "
                                   "construction cost over a 1k/10k/100k "
                                   "fleet ladder (x SCALE) plus a 1M-client "
                                   "(x SCALE) selection + 2-round smoke, "
                                   "written to --fleet-output")
    bench_parser.add_argument("--fleet-output", default="BENCH_fleet.json",
                              help="where to write the fleet-scale JSON "
                                   "report ('' skips writing)")
    bench_parser.add_argument("--checkpoint-scale", type=float, default=None,
                              help="run the checkpoint axis instead: "
                                   "write/restore wall-clock and bytes on "
                                   "disk over a 1k vs 100k (x SCALE) lazy "
                                   "fleet, gating that checkpoints stay "
                                   "O(cohort) and under the write budget; "
                                   "written to --checkpoint-output")
    bench_parser.add_argument("--checkpoint-output",
                              default="BENCH_checkpoint.json",
                              help="where to write the checkpoint JSON "
                                   "report ('' skips writing)")
    bench_parser.add_argument("--codec-scale", type=float, default=None,
                              help="run the wire-codec axis instead: total "
                                   "the per-round encoded upload/download "
                                   "bytes of every codec against the dense "
                                   "baseline (x SCALE fan-out workload), "
                                   "gating that lossless codecs stay "
                                   "bit-identical and sparse meets its "
                                   "byte budget; written to --codec-output")
    bench_parser.add_argument("--codec-output", default="BENCH_codec.json",
                              help="where to write the codec JSON report "
                                   "('' skips writing)")
    bench_parser.add_argument("--fault-scale", type=float, default=None,
                              help="run the fault-tolerance axis instead: "
                                   "time a clean vs a chaos run (injected "
                                   "crashes/hangs/exceptions with retries) "
                                   "per backend on an x SCALE workload, "
                                   "gating cross-backend bit-identity, "
                                   "fault-free equivalence and the chaos "
                                   "overhead budget; written to "
                                   "--fault-output")
    bench_parser.add_argument("--fault-output", default="BENCH_faults.json",
                              help="where to write the fault-tolerance JSON "
                                   "report ('' skips writing)")
    bench_parser.add_argument("--fault-plan", default=None,
                              choices=available_fault_plans(),
                              help="fault plan for the --fault-scale chaos "
                                   "run (default: chaos)")
    bench_parser.add_argument("--batch-scale", type=float, default=None,
                              help="run the cohort-batching axis instead: "
                                   "batched vs per-client-loop wall clock "
                                   "over a cohort-size ladder (x SCALE) on "
                                   "the serial and process backends, gating "
                                   "a >= 2x speedup at cohort >= 16 and "
                                   "bit-identical histories; written to "
                                   "--batch-output")
    bench_parser.add_argument("--batch-output", default="BENCH_batch.json",
                              help="where to write the cohort-batching JSON "
                                   "report ('' skips writing)")
    bench_parser.add_argument("--dist-scale", type=float, default=None,
                              help="run the distributed axis instead: real "
                                   "socket-backend rounds (x SCALE workload) "
                                   "at 1/2/4 reducer shards, gating that "
                                   "every history is bit-identical to serial "
                                   "and that per-shard aggregate bytes scale "
                                   "~1/N; written to --dist-output")
    bench_parser.add_argument("--dist-output", default="BENCH_dist.json",
                              help="where to write the distributed JSON "
                                   "report ('' skips writing)")

    sub.add_parser("list", help="list available methods")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for name in available_strategies():
            print(name)
        return 0

    if args.command == "bench":
        axes = [flag for flag, value in (
            ("--fleet-scale", args.fleet_scale),
            ("--checkpoint-scale", args.checkpoint_scale),
            ("--codec-scale", args.codec_scale),
            ("--fault-scale", args.fault_scale),
            ("--batch-scale", args.batch_scale),
            ("--dist-scale", args.dist_scale)) if value is not None]
        if len(axes) > 1:
            print(f"bench {' and '.join(axes)} are separate axes; run them "
                  "as separate invocations", flush=True)
            return 2
        if args.fault_plan is not None and args.fault_scale is None:
            print("bench --fault-plan applies only to the --fault-scale "
                  "axis", flush=True)
            return 2
        if args.dist_scale is not None:
            clashes = _fanout_only_clashes(args)
            if clashes:
                print(f"bench --dist-scale ignores {', '.join(clashes)} — "
                      "those apply only to the fan-out bench (the "
                      "distributed axis writes its report to --dist-output)",
                      flush=True)
                return 2
            from .benchmarking import format_dist_report, run_dist_bench
            report = run_dist_bench(scale=args.dist_scale,
                                    output=args.dist_output or None)
            print(format_dist_report(report))
            if args.dist_output:
                print(f"# report written to {args.dist_output}")
            if args.check and not report["gate"]["pass"]:
                return 1
            return 0
        if args.batch_scale is not None:
            clashes = _fanout_only_clashes(args)
            if clashes:
                print(f"bench --batch-scale ignores {', '.join(clashes)} — "
                      "those apply only to the fan-out bench (the batching "
                      "axis writes its report to --batch-output)",
                      flush=True)
                return 2
            from .benchmarking import format_batch_report, run_batch_bench
            report = run_batch_bench(scale=args.batch_scale,
                                     output=args.batch_output or None)
            print(format_batch_report(report))
            if args.batch_output:
                print(f"# report written to {args.batch_output}")
            if args.check and not report["gate"]["pass"]:
                return 1
            return 0
        if args.fault_scale is not None:
            clashes = _fanout_only_clashes(args)
            if clashes:
                print(f"bench --fault-scale ignores {', '.join(clashes)} — "
                      "those apply only to the fan-out bench (the fault "
                      "axis writes its report to --fault-output)",
                      flush=True)
                return 2
            from .benchmarking import format_fault_report, run_fault_bench
            report = run_fault_bench(scale=args.fault_scale,
                                     plan=args.fault_plan or "chaos",
                                     output=args.fault_output or None)
            print(format_fault_report(report))
            if args.fault_output:
                print(f"# report written to {args.fault_output}")
            if args.check and not report["gate"]["pass"]:
                return 1
            return 0
        if args.codec_scale is not None:
            clashes = _fanout_only_clashes(args)
            if clashes:
                print(f"bench --codec-scale ignores {', '.join(clashes)} — "
                      "those apply only to the fan-out bench (the codec "
                      "axis writes its report to --codec-output)",
                      flush=True)
                return 2
            from .benchmarking import format_codec_report, run_codec_bench
            report = run_codec_bench(scale=args.codec_scale,
                                     output=args.codec_output or None)
            print(format_codec_report(report))
            if args.codec_output:
                print(f"# report written to {args.codec_output}")
            if args.check and not report["gate"]["pass"]:
                return 1
            return 0
        if args.checkpoint_scale is not None:
            clashes = _fanout_only_clashes(args)
            if clashes:
                print(f"bench --checkpoint-scale ignores "
                      f"{', '.join(clashes)} — those apply only to the "
                      "fan-out bench (the checkpoint axis writes its report "
                      "to --checkpoint-output)", flush=True)
                return 2
            from .benchmarking import (format_checkpoint_report,
                                       run_checkpoint_bench)
            report = run_checkpoint_bench(scale=args.checkpoint_scale,
                                          output=args.checkpoint_output
                                          or None)
            print(format_checkpoint_report(report))
            if args.checkpoint_output:
                print(f"# report written to {args.checkpoint_output}")
            if args.check and not report["gate"]["pass"]:
                return 1
            return 0
        if args.fleet_scale is not None:
            clashes = _fanout_only_clashes(args)
            if clashes:
                print(f"bench --fleet-scale ignores {', '.join(clashes)} — "
                      "those apply only to the fan-out bench (the fleet "
                      "axis writes its report to --fleet-output)",
                      flush=True)
                return 2
            from .benchmarking import format_fleet_report, run_fleet_bench
            report = run_fleet_bench(scale=args.fleet_scale,
                                     output=args.fleet_output or None)
            print(format_fleet_report(report))
            if args.fleet_output:
                print(f"# report written to {args.fleet_output}")
            if args.check and not report["gate"]["pass"]:
                return 1
            return 0
        output = args.output if args.output is not None else "BENCH_fanout.json"
        from .benchmarking import format_bench_report, run_fanout_bench
        report = run_fanout_bench(scale=args.scale, backends=args.backends,
                                  worker_counts=args.workers_list,
                                  repeats=args.repeats,
                                  aggregations=args.aggregations,
                                  output=output or None)
        print(format_bench_report(report))
        if output:
            print(f"# report written to {output}")
        if args.check and not report["gate"]["pass"]:
            return 1
        return 0

    if args.command == "run":
        dataset = _dataset_from(args)
        preset = scaled(preset_for(dataset), **_preset_overrides(args))
        if ((args.resume or args.stop_after_round is not None)
                and args.checkpoint_dir is None):
            print("run --resume/--stop-after-round need --checkpoint-dir",
                  flush=True)
            return 2
        from .checkpoint import TrainingInterrupted
        try:
            with _executor_from(args) as executor:
                history = run_method(
                    args.method, preset, executor=executor,
                    checkpoint_dir=args.checkpoint_dir,
                    checkpoint_every=args.checkpoint_every,
                    resume=args.resume,
                    stop_after_round=args.stop_after_round)
        except TrainingInterrupted as interrupted:
            print(f"# {interrupted}", flush=True)
            return 3
        if args.history_out:
            import json as _json
            from pathlib import Path as _Path
            _Path(args.history_out).write_text(
                _json.dumps(history.to_dict(), sort_keys=True) + "\n")
        summary = summarize(history)
        print(format_rows([{"method": args.method, "dataset": dataset,
                            "scenario": preset.scenario,
                            "aggregation": preset.aggregation, **summary}],
                          ["method", "dataset", "scenario", "aggregation"]
                          + SUMMARY_COLUMNS))
        return 0

    if args.command == "compare":
        dataset = _dataset_from(args)
        preset = scaled(preset_for(dataset), **_preset_overrides(args))
        rows = []
        with _executor_from(args) as executor:
            for method in args.methods:
                history = run_method(method, preset, executor=executor)
                rows.append({"method": method, "dataset": dataset,
                             "scenario": preset.scenario,
                             "aggregation": preset.aggregation,
                             **summarize(history)})
        print(format_rows(rows, ["method", "dataset", "scenario",
                                 "aggregation"] + SUMMARY_COLUMNS))
        return 0

    if args.command == "table1":
        with _executor_from(args) as executor:
            rows = table1_accuracy_flops(datasets=args.datasets,
                                         methods=args.methods,
                                         overrides=_preset_overrides(args),
                                         executor=executor)
        print(format_rows(rows, ["method", "dataset"] + SUMMARY_COLUMNS[:3]
                          + ["time_to_accuracy_seconds"]))
        return 0

    if args.command == "sweep":
        cache = None if args.no_cache else ResultCache(args.cache_dir)
        overrides = _preset_overrides(args)
        overrides.pop("scenario", None)
        overrides.pop("aggregation", None)
        overrides.pop("codec", None)
        scenarios = list(args.scenarios)
        if args.scenario is not None and args.scenario not in scenarios:
            scenarios.append(args.scenario)
        aggregations = list(args.aggregations)
        if (args.aggregation is not None
                and args.aggregation not in aggregations):
            aggregations.append(args.aggregation)
        codecs = list(args.codecs)
        if args.codec is not None and args.codec not in codecs:
            codecs.append(args.codec)
        histories = {}
        with _executor_from(args) as executor:
            # the codec axis loops outside run_scenario_sweep: each codec
            # rides the preset (so cells cache-key like any other field)
            for codec in codecs:
                cells = run_scenario_sweep(
                    args.methods, args.datasets, scenarios, aggregations,
                    overrides={**overrides, "codec": codec},
                    executor=executor, cache=cache,
                    checkpoint_root=args.checkpoint_dir,
                    retries=args.retries)
                for key, history in cells.items():
                    histories[key + (codec,)] = history
        rows = [{"method": method, "dataset": dataset, "scenario": scenario,
                 "aggregation": aggregation, "codec": codec,
                 **summarize(history)}
                for (method, dataset, scenario, aggregation, codec), history
                in histories.items()]
        columns = ["method", "dataset", "scenario", "aggregation"]
        summary_columns = list(SUMMARY_COLUMNS)
        if codecs != ["dense"]:
            columns.append("codec")
            summary_columns.append("wire_upload_bytes")
        print(format_rows(rows, columns + summary_columns))
        if cache is not None:
            print(f"# cache: {cache.hits} hit(s), {cache.misses} miss(es) "
                  f"in {cache.directory}")
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
