"""System-heterogeneity scenario engine.

The paper's evaluation assumes every sampled client finishes every round;
this package gives the simulation a wall clock.  A
:class:`~repro.scenarios.config.ScenarioConfig` describes how the system
misbehaves — clients may be unavailable (Bernoulli- or trace-driven),
straggle (deterministic background-load spikes on top of the
:mod:`repro.systems.cost` latency model) — and which participation policy
the server applies (``wait-all``, ``deadline`` with over-selection, or
``fastest-k``).  The :class:`~repro.scenarios.engine.ScenarioEngine` turns
that description into per-round decisions that are pure functions of
``(seed, round_index, client_id)``, so histories stay bit-identical across
the serial/thread/process executor backends.
"""

from .config import PARTICIPATION_POLICIES, ScenarioConfig
from .engine import RoundOutcome, ScenarioEngine
from .presets import (SCENARIO_NAMES, available_scenarios, build_scenario,
                      synthetic_availability_trace)

__all__ = [
    "ScenarioConfig",
    "PARTICIPATION_POLICIES",
    "ScenarioEngine",
    "RoundOutcome",
    "SCENARIO_NAMES",
    "available_scenarios",
    "build_scenario",
    "synthetic_availability_trace",
]
