"""Shared configuration for the benchmark harness.

Every benchmark module reproduces one table or figure of the paper.  The
default scale is deliberately small so the whole harness finishes in a few
minutes on a laptop CPU; set the environment variable ``REPRO_BENCH_SCALE``
to a value > 1 to enlarge the runs towards paper scale (more clients, more
rounds, more local work).

The harness also acts as the performance guard for the parallel execution
subsystem: backend-parameterized benchmarks report their wall-clock through
the ``record_backend_timing`` fixture, and at session end the collected
timings land in a ``BENCH_parallel.json`` artifact (path overridable via
``REPRO_BENCH_ARTIFACT``) that CI uploads on every run, giving per-backend
wall-clock a visible history.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path
from typing import Dict, List

import pytest


def bench_scale() -> float:
    """User-controlled scale factor for benchmark runs."""
    try:
        return max(float(os.environ.get("REPRO_BENCH_SCALE", "1")), 0.25)
    except ValueError:
        return 1.0


def bench_overrides(**extra) -> Dict[str, object]:
    """Preset overrides shared by all benchmark modules."""
    scale = bench_scale()
    overrides: Dict[str, object] = {
        "num_clients": max(6, int(round(8 * scale))),
        "examples_per_client": max(30, int(round(40 * scale))),
        "num_rounds": max(5, int(round(8 * scale))),
        "clients_per_round": 3,
        "local_iterations": max(3, int(round(4 * scale))),
        "batch_size": 16,
        "seed": 7,
    }
    overrides.update(extra)
    return overrides


# --------------------------------------------------------- parallel timings
#: per-backend wall-clock samples collected during the session
_BACKEND_TIMINGS: Dict[str, Dict[str, object]] = {}


@pytest.fixture()
def record_backend_timing():
    """Record one wall-clock sample for an executor backend.

    Usage: ``record_backend_timing("process", elapsed_seconds, workers=2)``.
    Everything recorded during the session is written to the
    ``BENCH_parallel.json`` artifact at exit.
    """

    def record(backend: str, seconds: float, **extra: object) -> None:
        entry = _BACKEND_TIMINGS.setdefault(backend, {"samples": []})
        entry["samples"].append(float(seconds))
        entry.update(extra)

    return record


def bench_artifact_path() -> Path:
    """Where the per-backend timing artifact is written."""
    return Path(os.environ.get("REPRO_BENCH_ARTIFACT", "BENCH_parallel.json"))


def pytest_sessionfinish(session, exitstatus) -> None:
    """Persist collected backend timings for CI artifact upload."""
    if not _BACKEND_TIMINGS:
        return
    timings = {}
    for backend, entry in sorted(_BACKEND_TIMINGS.items()):
        samples = list(entry["samples"])
        timings[backend] = {
            **{key: value for key, value in entry.items() if key != "samples"},
            "samples_seconds": samples,
            "mean_seconds": sum(samples) / len(samples),
            "min_seconds": min(samples),
        }
    payload = {
        "bench_scale": bench_scale(),
        "python": platform.python_version(),
        "platform": sys.platform,
        "cpu_count": os.cpu_count(),
        "timings": timings,
    }
    bench_artifact_path().write_text(json.dumps(payload, indent=2,
                                                sort_keys=True))


def print_rows(title: str, rows: List[Dict[str, object]]) -> None:
    """Print benchmark result rows in a compact aligned table."""
    if not rows:
        print(f"\n=== {title}: no rows ===")
        return
    columns = list(rows[0].keys())
    print(f"\n=== {title} ===")
    print(" | ".join(f"{name:>20s}" for name in columns))
    for row in rows:
        cells = []
        for name in columns:
            value = row.get(name)
            if isinstance(value, float):
                cells.append(f"{value:>20.4g}")
            else:
                cells.append(f"{str(value):>20s}")
        print(" | ".join(cells))
