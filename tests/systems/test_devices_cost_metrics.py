"""Tests for device profiles, the cost model and the training metrics."""

import numpy as np
import pytest

from repro.sparsity import SparseCost
from repro.systems import (CAPABILITY_LEVELS, HETEROGENEITY_PRESETS,
                           MIN_AFFORDABLE_RATIO, CostBreakdown, DeviceFleet,
                           DeviceProfile, LocalCostModel, RoundRecord,
                           TrainingHistory, affordable_ratio,
                           fleet_for_heterogeneity, sample_device_fleet)


class TestDeviceProfile:
    def test_capability_levels_include_paper_tiers(self):
        assert set(CAPABILITY_LEVELS) == {1.0, 0.5, 0.25, 0.125, 0.0625}

    def test_invalid_capability(self):
        with pytest.raises(ValueError):
            DeviceProfile(0, capability=0.0)
        with pytest.raises(ValueError):
            DeviceProfile(0, capability=1.5)

    def test_throughput_scales_with_capability(self):
        strong = DeviceProfile(0, capability=1.0)
        weak = DeviceProfile(1, capability=0.25)
        assert strong.flops_per_second == pytest.approx(4 * weak.flops_per_second)

    def test_static_device_never_fluctuates(self):
        device = DeviceProfile(0, capability=0.5, dynamic=False)
        assert device.available_capability(3) == 0.5

    def test_dynamic_device_fluctuates_but_is_deterministic(self):
        device = DeviceProfile(0, capability=0.5, dynamic=True, fluctuation=0.3)
        a = device.available_capability(3, seed=1)
        b = device.available_capability(3, seed=1)
        assert a == b
        assert 0.5 * 0.7 <= a <= 0.5

    def test_affordable_ratio_floor(self):
        assert affordable_ratio(1.0) == 1.0
        assert affordable_ratio(1 / 16) == MIN_AFFORDABLE_RATIO
        with pytest.raises(ValueError):
            affordable_ratio(0.0)


class TestFleet:
    def test_sample_fleet_size_and_levels(self):
        fleet = sample_device_fleet(20, seed=0)
        assert len(fleet) == 20
        assert set(fleet.capabilities().values()) <= set(CAPABILITY_LEVELS)

    def test_fleet_lookup_errors(self):
        fleet = sample_device_fleet(3, seed=0)
        with pytest.raises(KeyError):
            fleet[99]

    def test_heterogeneity_presets(self):
        for level, levels in HETEROGENEITY_PRESETS.items():
            fleet = fleet_for_heterogeneity(10, level, seed=0)
            assert set(fleet.capabilities().values()) <= set(levels)
        with pytest.raises(ValueError):
            fleet_for_heterogeneity(10, "extreme")

    def test_invalid_sampling(self):
        with pytest.raises(ValueError):
            sample_device_fleet(0)
        with pytest.raises(ValueError):
            sample_device_fleet(5, levels=())

    def test_device_fleet_container(self):
        fleet = DeviceFleet({0: DeviceProfile(0, 1.0)})
        assert list(fleet.client_ids) == [0]


class TestCostModel:
    def test_weak_device_is_slower(self):
        model = LocalCostModel(alpha=1.0)
        cost = SparseCost(flops=1e9, upload_bytes=1e5, download_bytes=1e5)
        strong = model.client_cost(DeviceProfile(0, 1.0), cost)
        weak = model.client_cost(DeviceProfile(1, 0.25), cost)
        assert weak.computation_seconds > strong.computation_seconds

    def test_alpha_weights_communication(self):
        cost = SparseCost(flops=0.0, upload_bytes=1e6, download_bytes=0.0)
        device = DeviceProfile(0, 1.0)
        cheap = LocalCostModel(alpha=0.5).client_cost(device, cost)
        expensive = LocalCostModel(alpha=2.0).client_cost(device, cost)
        assert expensive.communication_seconds == pytest.approx(
            4 * cheap.communication_seconds)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            LocalCostModel(alpha=-1.0)

    def test_round_time_is_max(self):
        costs = [CostBreakdown(1.0, 0.5), CostBreakdown(0.2, 0.1)]
        assert LocalCostModel.round_time(costs) == pytest.approx(1.5)
        assert LocalCostModel.round_time([]) == 0.0
        by_client = {0: costs[0], 1: costs[1]}
        assert LocalCostModel.round_time_by_client(by_client) == pytest.approx(1.5)

    def test_total_seconds(self):
        breakdown = CostBreakdown(1.0, 2.0)
        assert breakdown.total_seconds == 3.0


def _record(i, accuracy, flops=10.0, seconds=1.0):
    return RoundRecord(round_index=i, selected_clients=[0],
                       train_accuracy=accuracy, test_accuracy=accuracy,
                       round_flops=flops, round_time_seconds=seconds,
                       upload_bytes=5.0, download_bytes=5.0,
                       cumulative_flops=flops * (i + 1),
                       cumulative_time_seconds=seconds * (i + 1))


class TestTrainingHistory:
    def test_append_enforces_order(self):
        history = TrainingHistory("m", "d")
        history.append(_record(0, 0.1))
        with pytest.raises(ValueError):
            history.append(_record(0, 0.2))

    def test_series_and_totals(self):
        history = TrainingHistory("m", "d")
        for i, acc in enumerate([0.1, 0.5, 0.7]):
            history.append(_record(i, acc))
        assert history.accuracies == [0.1, 0.5, 0.7]
        assert history.total_flops == pytest.approx(30.0)
        assert history.total_time_seconds == pytest.approx(3.0)
        assert history.total_upload_bytes == pytest.approx(15.0)
        assert len(history) == 3

    def test_final_and_best_accuracy(self):
        history = TrainingHistory("m", "d")
        for i, acc in enumerate([0.1, 0.9, 0.5]):
            history.append(_record(i, acc))
        assert history.best_accuracy() == 0.9
        assert history.final_accuracy(2) == pytest.approx(0.7)
        assert TrainingHistory("m", "d").final_accuracy() == 0.0

    def test_time_and_flops_to_accuracy(self):
        history = TrainingHistory("m", "d")
        for i, acc in enumerate([0.1, 0.5, 0.7]):
            history.append(_record(i, acc))
        assert history.time_to_accuracy(0.5) == pytest.approx(2.0)
        assert history.flops_to_accuracy(0.7) == pytest.approx(30.0)
        assert history.time_to_accuracy(0.99) is None

    def test_accuracy_at_flops_budget(self):
        history = TrainingHistory("m", "d")
        for i, acc in enumerate([0.1, 0.5, 0.7]):
            history.append(_record(i, acc))
        assert history.accuracy_at_flops(20.0) == 0.5
        assert history.accuracy_at_flops(5.0) == 0.0

    def test_as_rows(self):
        history = TrainingHistory("m", "d")
        history.append(_record(0, 0.2))
        rows = history.as_rows()
        assert rows[0]["round"] == 0
        assert rows[0]["test_accuracy"] == 0.2

    def test_dict_round_trip_is_exact(self):
        history = TrainingHistory("m", "d")
        for i, acc in enumerate([0.1, 0.5]):
            record = _record(i, acc)
            record.sparse_ratios = {3: 0.5, 7: 1.0}
            record.evaluated = i == 1
            history.append(record)
        restored = TrainingHistory.from_dict(history.to_dict())
        assert restored.to_dict() == history.to_dict()
        assert restored.records[0].sparse_ratios == {3: 0.5, 7: 1.0}
        assert [r.evaluated for r in restored.records] == [False, True]
        assert restored.records[0].selected_clients == [0]

    def test_from_dict_defaults_evaluated(self):
        # histories cached before the flag existed load as "fresh"
        payload = _record(0, 0.2).to_dict()
        del payload["evaluated"]
        assert RoundRecord.from_dict(payload).evaluated is True
