"""Domain scenario: federated next-word prediction (Reddit-style).

Each simulated user has its own writing style (a private Markov chain over a
shared vocabulary), so the federation is naturally non-IID.  The backbone is
an embedding + 2-layer LSTM + softmax language model, as in the paper's
Reddit experiment, and FedLPS sparsifies the LSTM hidden units.

Run with::

    python examples/next_word_prediction.py
"""

from __future__ import annotations

from repro.core import FedLPS
from repro.baselines import FedAvg, Hermes
from repro.data import build_federated_dataset
from repro.federated import FederatedConfig, run_federated
from repro.models import build_lstm_lm


def main() -> None:
    dataset = build_federated_dataset("reddit", num_clients=16,
                                      examples_per_client=80, seed=7)
    vocab_size = dataset.num_classes
    config = FederatedConfig(num_rounds=15, clients_per_round=4,
                             local_iterations=8, batch_size=16,
                             learning_rate=1.5, clip_norm=5.0, seed=7)

    def model_builder():
        return build_lstm_lm(vocab_size, embed_dim=12, hidden_dim=24,
                             num_layers=2, seq_len=dataset.input_shape[0],
                             seed=7)

    print(f"federation: {dataset.num_clients} users, vocab {vocab_size}")
    for strategy in (FedLPS(), Hermes(), FedAvg()):
        history = run_federated(strategy, dataset, model_builder, config=config)
        print(f"{history.method:8s} next-word accuracy={history.final_accuracy():.3f} "
              f"flops={history.total_flops:.3e} "
              f"sim time={history.total_time_seconds:.2f}s")


if __name__ == "__main__":
    main()
