"""The fault-tolerance benchmark harness (BENCH_faults.json)."""

from __future__ import annotations

import json

import pytest

from repro.benchmarking import (fault_preset, format_fault_report,
                                measure_faults, run_fault_bench)
from repro.cli import main


class TestFaultBench:
    def test_report_schema_and_gate(self, tmp_path):
        output = tmp_path / "BENCH_faults.json"
        report = run_fault_bench(scale=0.5, backends=("serial", "thread"),
                                 output=str(output))
        assert report["gate"]["pass"], report["gate"]
        assert report["fault_plan"] == "chaos"
        cells = report["backends"]
        assert set(cells) == {"serial", "thread"}
        for cell in cells.values():
            assert cell["clean_seconds"] >= 0.0
            assert cell["chaos_seconds"] >= 0.0
            assert cell["seconds"] == cell["chaos_seconds"]
            assert cell["chaos_digest"] != cell["clean_digest"]
            assert cell["chaos_stripped_digest"] == cell["clean_digest"]
        # the headline determinism claims, re-derived from the raw cells
        assert len({cell["chaos_digest"] for cell in cells.values()}) == 1
        gate = report["gate"]
        assert gate["faults_injected"] > 0
        assert gate["worker_restarts"] > 0
        assert gate["exhausted"] == 0
        persisted = json.loads(output.read_text())
        assert persisted["gate"]["pass"] is True
        assert "PASS" in format_fault_report(report)

    def test_measure_cell_counts_faults(self):
        cell = measure_faults("serial", scale=0.5)
        totals = cell["fault_totals"]
        assert totals["fault_retries"] + totals["fault_exhausted"] > 0

    def test_preset_only_supervises_chaos_runs(self):
        clean = fault_preset(0.5)
        chaos = fault_preset(0.5, plan="chaos")
        assert clean.fault_plan is None and clean.max_retries == 0
        assert chaos.fault_plan == "chaos" and chaos.max_retries > 0
        assert chaos.task_timeout is not None

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="positive"):
            run_fault_bench(scale=0.0)
        with pytest.raises(ValueError, match="unknown fault plan"):
            run_fault_bench(scale=0.5, plan="meteor-strike")

    def test_cli_fault_scale_axis(self, tmp_path, capsys):
        output = tmp_path / "BENCH_faults.json"
        code = main(["bench", "--fault-scale", "0.5",
                     "--fault-output", str(output), "--check"])
        assert code == 0
        assert output.exists()
        out = capsys.readouterr().out
        assert "plan chaos" in out and "gate:" in out

    def test_cli_fault_plan_requires_fault_scale(self, capsys):
        assert main(["bench", "--fault-plan", "crashy"]) == 2
        assert "--fault-scale" in capsys.readouterr().out

    def test_cli_rejects_mixed_axes_and_fanout_flags(self, capsys):
        assert main(["bench", "--fault-scale", "0.5",
                     "--checkpoint-scale", "0.02"]) == 2
        assert "separate axes" in capsys.readouterr().out
        assert main(["bench", "--fault-scale", "0.5",
                     "--scale", "0.5"]) == 2
        assert "--scale" in capsys.readouterr().out
