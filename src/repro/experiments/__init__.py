"""Experiment harness: presets, runner, result cache and per-table/figure
reproduction."""

from .cache import DEFAULT_CACHE_DIR, ResultCache, run_spec, spec_key
from .figures import (FIGURE3_METHODS, accuracy_vs_flops, accuracy_vs_time,
                      heterogeneity_sweep, noniid_level_sweep,
                      pattern_ratio_sweep, time_to_accuracy)
from .presets import (DATASETS, DEFAULT_PRESETS, ExperimentPreset,
                      build_experiment, preset_for, scaled)
from .runner import (format_rows, run_across_datasets, run_jobs, run_method,
                     run_methods, run_scenario_sweep, run_sweep, summarize)
from .tables import (histories_to_rows, scenario_table, table1_accuracy_flops,
                     table2_ablation)

__all__ = [
    "ExperimentPreset",
    "DATASETS",
    "DEFAULT_PRESETS",
    "preset_for",
    "scaled",
    "build_experiment",
    "run_method",
    "run_methods",
    "run_across_datasets",
    "run_jobs",
    "run_sweep",
    "run_scenario_sweep",
    "ResultCache",
    "DEFAULT_CACHE_DIR",
    "run_spec",
    "spec_key",
    "summarize",
    "format_rows",
    "table1_accuracy_flops",
    "table2_ablation",
    "scenario_table",
    "histories_to_rows",
    "accuracy_vs_flops",
    "accuracy_vs_time",
    "time_to_accuracy",
    "noniid_level_sweep",
    "heterogeneity_sweep",
    "pattern_ratio_sweep",
    "FIGURE3_METHODS",
]
