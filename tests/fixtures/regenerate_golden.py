"""Golden-history fixtures: pinned runs guarding against numeric drift.

Every registry strategy is run once on a tiny fixed preset (plus a few
scenario variants and one lossy-codec variant per aggregation mode) and the
exact resulting history JSON is committed under ``tests/fixtures/golden/``.
The companion test (``tests/test_golden_histories.py``) re-runs each spec
and fails on ANY difference — a changed selection, a shifted float, a new
field default.

When a change intentionally alters numerics (new RNG stream, different
aggregation math, retuned defaults), regenerate the fixtures with::

    python tests/fixtures/regenerate_golden.py

and review the diff like any other code change: the diff IS the behavioural
change you are shipping.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

FIXTURE_DIR = Path(__file__).resolve().parent / "golden"
_REPO_ROOT = Path(__file__).resolve().parents[2]

#: the tiny preset every golden run uses — small enough that the full
#: registry regenerates in well under a minute on a laptop CPU
GOLDEN_OVERRIDES = dict(num_clients=4, num_rounds=2, clients_per_round=2,
                        examples_per_client=20, local_iterations=2,
                        batch_size=8, seed=11)

#: scenario variants pinned in addition to the ideal-setting registry sweep
GOLDEN_SCENARIOS = (
    ("fedavg", "deadline-tight"),
    ("fedavg", "trace"),
    ("fedlps", "deadline-tight"),
)

#: lossy-codec variants: int8 quantization is a documented numerics mode, so
#: its trajectories are pinned in their own fixtures (one per aggregation
#: mode) rather than checked against the dense runs — lossless codecs, by
#: contrast, must reproduce the dense fixtures above bit-for-bit and get no
#: fixtures of their own
GOLDEN_LOSSY = (
    ("fedlps--int8", "fedlps", "sync"),
    ("fedlps--int8--fedasync", "fedlps", "fedasync"),
    ("fedlps--int8--fedbuff", "fedlps", "fedbuff"),
)


def golden_specs():
    """(fixture name, method, scenario, aggregation, codec) per pinned run."""
    from repro.baselines import available_strategies

    specs = [(method, method, "ideal", "sync", "dense")
             for method in available_strategies()]
    specs.extend((f"{method}--{scenario}", method, scenario, "sync", "dense")
                 for method, scenario in GOLDEN_SCENARIOS)
    specs.extend((name, method, "ideal", aggregation, "int8")
                 for name, method, aggregation in GOLDEN_LOSSY)
    return specs


def golden_preset(scenario: str, aggregation: str = "sync",
                  codec: str = "dense", *, lazy_fleet: bool = True):
    from repro.experiments import preset_for, scaled

    return scaled(preset_for("mnist"), scenario=scenario,
                  aggregation=aggregation, codec=codec,
                  lazy_fleet=lazy_fleet, **GOLDEN_OVERRIDES)


def run_golden(method: str, scenario: str, aggregation: str = "sync",
               codec: str = "dense", *, lazy_fleet: bool = True):
    """One pinned run; shared by the regenerator and the regression test.

    ``lazy_fleet`` selects the fleet materialization path; both must
    reproduce the same fixture bit-for-bit (the virtual-fleet contract).
    """
    from repro.experiments import run_method

    return run_method(method, golden_preset(scenario, aggregation, codec,
                                            lazy_fleet=lazy_fleet))


def fixture_path(name: str) -> Path:
    return FIXTURE_DIR / f"{name.replace('/', '_')}.json"


def regenerate() -> int:
    FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    specs = golden_specs()
    for name, method, scenario, aggregation, codec in specs:
        history = run_golden(method, scenario, aggregation, codec)
        payload = {
            "method": method,
            "scenario": scenario,
            "overrides": GOLDEN_OVERRIDES,
            "history": history.to_dict(),
        }
        # dense/sync fixtures predate the aggregation and codec axes; their
        # payload schema stays exactly as committed (byte-stable files)
        if aggregation != "sync" or codec != "dense":
            payload["aggregation"] = aggregation
            payload["codec"] = codec
        fixture_path(name).write_text(
            json.dumps(payload, sort_keys=True, indent=1) + "\n")
        print(f"wrote {fixture_path(name).relative_to(_REPO_ROOT)}")
    return len(specs)


if __name__ == "__main__":
    sys.path.insert(0, str(_REPO_ROOT / "src"))
    count = regenerate()
    print(f"regenerated {count} golden fixtures in {FIXTURE_DIR}")
