"""Domain scenario: how system heterogeneity affects accuracy and time.

Reproduces the spirit of Figures 7 and 8: the same federation is simulated
with low / median / high device heterogeneity and the script reports how the
accuracy and the simulated wall-clock time of FedAvg and FedLPS respond.
FedAvg's synchronous rounds are dominated by the slowest (weakest) device,
while FedLPS shrinks the weak devices' sub-models and keeps round time stable.

Run with::

    python examples/system_heterogeneity_study.py
"""

from __future__ import annotations

from repro.experiments import heterogeneity_sweep

OVERRIDES = {"num_clients": 10, "num_rounds": 10, "clients_per_round": 3,
             "local_iterations": 6, "examples_per_client": 50, "seed": 5}


def main() -> None:
    rows = heterogeneity_sweep(dataset="cifar10",
                               levels=("low", "median", "high"),
                               methods=("fedavg", "fedlps"),
                               overrides=OVERRIDES)
    print(f"{'level':>8s} {'method':>8s} {'accuracy':>9s} {'sim time (s)':>13s}")
    for row in rows:
        print(f"{row['heterogeneity']:>8s} {row['method']:>8s} "
              f"{row['accuracy']:>9.3f} {row['total_time_seconds']:>13.3f}")


if __name__ == "__main__":
    main()
