"""2-D convolution and pooling layers (im2col implementation)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from . import initializers
from .base import Array, Layer, ParamDict, as_float


def _im2col(x: Array, kernel: int, stride: int, padding: int) -> Tuple[Array, int, int]:
    """Unfold ``x`` of shape (N, C, H, W) into columns.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(N * out_h * out_w, C * kernel * kernel)``.
    """
    n, c, h, w = x.shape
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    ph, pw = h + 2 * padding, w + 2 * padding
    out_h = (ph - kernel) // stride + 1
    out_w = (pw - kernel) // stride + 1
    strides = x.strides
    shape = (n, c, out_h, out_w, kernel, kernel)
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=shape,
        strides=(strides[0], strides[1], strides[2] * stride, strides[3] * stride,
                 strides[2], strides[3]),
        writeable=False,
    )
    cols = view.transpose(0, 2, 3, 1, 4, 5).reshape(n * out_h * out_w, c * kernel * kernel)
    return np.ascontiguousarray(cols), out_h, out_w


def _col2im(cols: Array, x_shape: Tuple[int, int, int, int], kernel: int,
            stride: int, padding: int, out_h: int, out_w: int) -> Array:
    """Fold columns back into an image, summing overlapping contributions."""
    n, c, h, w = x_shape
    ph, pw = h + 2 * padding, w + 2 * padding
    x_padded = np.zeros((n, c, ph, pw), dtype=np.float64)
    cols = cols.reshape(n, out_h, out_w, c, kernel, kernel).transpose(0, 3, 1, 2, 4, 5)
    for i in range(kernel):
        for j in range(kernel):
            x_padded[:, :, i:i + stride * out_h:stride, j:j + stride * out_w:stride] += \
                cols[:, :, :, :, i, j]
    if padding > 0:
        return x_padded[:, :, padding:padding + h, padding:padding + w]
    return x_padded


class Conv2d(Layer):
    """2-D convolution.  Sparsifiable units are the output channels."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int, *,
                 stride: int = 1, padding: int = 0, name: str = "conv",
                 sparsifiable: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__(name)
        if kernel_size <= 0 or stride <= 0:
            raise ValueError("kernel_size and stride must be positive")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.sparsifiable = sparsifiable
        rng = rng or np.random.default_rng(0)
        fan_in = in_channels * kernel_size * kernel_size
        self.params = {
            "W": initializers.he_uniform(
                rng, (out_channels, in_channels, kernel_size, kernel_size), fan_in),
            "b": initializers.zeros((out_channels,)),
        }
        self.zero_grad()
        self._cols: Array | None = None
        self._x_shape: Tuple[int, int, int, int] | None = None
        self._out_hw: Tuple[int, int] | None = None
        self._pre_gate: Array | None = None
        self._w_mat: Array | None = None
        self._w_mat_base: Array | None = None

    def _weight_matrix(self) -> Array:
        """``W`` reshaped to ``(out_channels, fan_in)``, cached per array.

        ``set_parameters`` replaces the ``W`` array object, so identity of
        the base array is a sound cache key; in-place optimizer updates keep
        the identity (and the cached view sees them for free).  The cache is
        only kept when the reshape is a true view — a copy would silently
        detach from subsequent in-place updates.
        """
        weights = self.params["W"]
        if self._w_mat_base is not weights:
            w_mat = weights.reshape(self.out_channels, -1)
            if w_mat.base is not weights:
                return w_mat
            self._w_mat = w_mat
            self._w_mat_base = weights
        return self._w_mat

    def __getstate__(self):
        # drop forward scratch and the reshape cache: they are recomputed on
        # first use and would otherwise bloat worker payloads (the cached
        # view pickles as a full copy of W)
        state = self.__dict__.copy()
        for key in ("_cols", "_pre_gate", "_w_mat", "_w_mat_base"):
            state[key] = None
        return state

    def forward(self, x: Array, *, train: bool = True) -> Array:
        x = as_float(x)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"{self.name}: expected input (N, {self.in_channels}, H, W), got {x.shape}")
        n = x.shape[0]
        cols, out_h, out_w = _im2col(x, self.kernel_size, self.stride, self.padding)
        w_mat = self._weight_matrix()
        out = cols @ w_mat.T + self.params["b"]
        out = out.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)
        self._cols = cols
        self._x_shape = x.shape
        self._out_hw = (out_h, out_w)
        self._pre_gate = out
        return self._apply_unit_gate(out, unit_axis=1)

    def backward(self, grad_out: Array) -> Array:
        if self._cols is None or self._x_shape is None or self._out_hw is None:
            raise RuntimeError("backward called before forward")
        grad_pre = self._accumulate_gate_grad(grad_out, self._pre_gate, unit_axis=1)
        n = self._x_shape[0]
        out_h, out_w = self._out_hw
        grad_mat = grad_pre.transpose(0, 2, 3, 1).reshape(n * out_h * out_w,
                                                          self.out_channels)
        w_mat = self._weight_matrix()
        self.grads["W"] += (grad_mat.T @ self._cols).reshape(self.params["W"].shape)
        self.grads["b"] += np.sum(grad_mat, axis=0)
        grad_cols = grad_mat @ w_mat
        return _col2im(grad_cols, self._x_shape, self.kernel_size, self.stride,
                       self.padding, out_h, out_w)

    @property
    def n_units(self) -> int:
        return self.out_channels if self.sparsifiable else 0

    def expand_unit_mask(self, unit_mask: Array) -> ParamDict:
        unit_mask = np.asarray(unit_mask, dtype=np.float64)
        if unit_mask.shape != (self.out_channels,):
            raise ValueError(
                f"{self.name}: unit mask must have shape ({self.out_channels},), "
                f"got {unit_mask.shape}")
        w_mask = np.broadcast_to(
            unit_mask[:, None, None, None], self.params["W"].shape).copy()
        return {"W": w_mask, "b": unit_mask.copy()}

    def unit_weight_magnitude(self) -> Array:
        return (np.sum(np.abs(self.params["W"]), axis=(1, 2, 3))
                + np.abs(self.params["b"]))

    def flops_per_example(self, input_shape: Tuple[int, ...]) -> Tuple[int, Tuple[int, ...]]:
        if len(input_shape) != 3:
            raise ValueError(f"{self.name}: conv layer expects (C, H, W) input shape")
        _, h, w = input_shape
        out_h = (h + 2 * self.padding - self.kernel_size) // self.stride + 1
        out_w = (w + 2 * self.padding - self.kernel_size) // self.stride + 1
        flops_per_position = 2 * self.in_channels * self.kernel_size * self.kernel_size
        flops = flops_per_position * self.out_channels * out_h * out_w
        return flops, (self.out_channels, out_h, out_w)


class MaxPool2d(Layer):
    """Non-overlapping max pooling (kernel == stride)."""

    trainable = False

    def __init__(self, kernel_size: int, name: str = "maxpool") -> None:
        super().__init__(name)
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self._argmax: Array | None = None
        self._x_shape: Tuple[int, ...] | None = None

    def forward(self, x: Array, *, train: bool = True) -> Array:
        x = as_float(x)
        n, c, h, w = x.shape
        k = self.kernel_size
        if h % k != 0 or w % k != 0:
            raise ValueError(
                f"{self.name}: spatial dims ({h}, {w}) must be divisible by {k}")
        reshaped = x.reshape(n, c, h // k, k, w // k, k).transpose(0, 1, 2, 4, 3, 5)
        windows = reshaped.reshape(n, c, h // k, w // k, k * k)
        self._argmax = np.argmax(windows, axis=-1)
        self._x_shape = x.shape
        return np.max(windows, axis=-1)

    def backward(self, grad_out: Array) -> Array:
        if self._argmax is None or self._x_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._x_shape
        k = self.kernel_size
        grad_windows = np.zeros((n, c, h // k, w // k, k * k), dtype=np.float64)
        np.put_along_axis(grad_windows, self._argmax[..., None],
                          grad_out[..., None], axis=-1)
        grad_x = grad_windows.reshape(n, c, h // k, w // k, k, k)
        grad_x = grad_x.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, h, w)
        return grad_x

    def flops_per_example(self, input_shape: Tuple[int, ...]) -> Tuple[int, Tuple[int, ...]]:
        c, h, w = input_shape
        k = self.kernel_size
        return 0, (c, h // k, w // k)


class AvgPool2d(Layer):
    """Non-overlapping average pooling (kernel == stride)."""

    trainable = False

    def __init__(self, kernel_size: int, name: str = "avgpool") -> None:
        super().__init__(name)
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self._x_shape: Tuple[int, ...] | None = None

    def forward(self, x: Array, *, train: bool = True) -> Array:
        x = as_float(x)
        n, c, h, w = x.shape
        k = self.kernel_size
        if h % k != 0 or w % k != 0:
            raise ValueError(
                f"{self.name}: spatial dims ({h}, {w}) must be divisible by {k}")
        self._x_shape = x.shape
        reshaped = x.reshape(n, c, h // k, k, w // k, k)
        return reshaped.mean(axis=(3, 5))

    def backward(self, grad_out: Array) -> Array:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._x_shape
        k = self.kernel_size
        grad = np.repeat(np.repeat(grad_out, k, axis=2), k, axis=3) / (k * k)
        return grad

    def flops_per_example(self, input_shape: Tuple[int, ...]) -> Tuple[int, Tuple[int, ...]]:
        c, h, w = input_shape
        k = self.kernel_size
        return 0, (c, h // k, w // k)
