"""Deterministic fault injection for chaos-testing the execution layer.

A :class:`FaultPlan` decides, for every ``(round, client, attempt)`` task
dispatch, whether the task should fail — and how: raise an exception, kill
its worker process, hang, or merely run slow.  Every decision is a pure
function of ``(fault_seed, round, client, attempt)``; nothing consults the
wall clock, worker identity or execution order, so a chaos run is exactly
reproducible: the same plan injects the same faults into the same tasks on
the serial, thread and process backends, and the supervised executor layer
(:mod:`repro.parallel.supervision`) turns them into the same per-round
retry/timeout/restart counters everywhere.

Fault *kinds* and how each backend realizes them:

``exception``
    The task raises :class:`InjectedTaskError` before running its body.
``crash``
    On the process backend the worker dies hard (``os._exit``), breaking
    the pool exactly like a segfault or OOM kill would; supervision detects
    the broken pool, replenishes it and retries the task.  Backends that
    cannot lose a worker (serial, thread) raise :class:`SimulatedCrash`
    instead, which supervision counts as the same ``worker_restarts``
    event — counters stay bit-identical across backends.
``hang``
    The task stalls.  In-process backends raise :class:`SimulatedHang`
    immediately (a zero-cost stand-in); process workers really sleep — wall
    -clock capped by the supervisor's task timeout — before raising, so the
    run exercises the timeout/reclaim path without unbounded waits.  Either
    way supervision counts one ``timeouts`` event and retries.
``slow``
    The task runs to completion after a small injected delay (real sleep
    only where a pool actually runs concurrently).  Slowdowns never fail a
    task and never change its result — they exist to shake out ordering
    assumptions in completion-order consumers.

Because every injected fault fires *before* the task body runs and task
functions are pure in their payload, a retried attempt re-executes the
identical computation: when all retries eventually succeed, the training
history is bit-identical to the fault-free run (the golden-fixture suite
proves this against the committed fixtures).

``poison_rate`` marks tasks that fail on *every* attempt (the draw is
salted without the attempt number), modelling a deterministically bad
input rather than a transient fault — poisoned tasks always exhaust their
retries and degrade into dropped clients.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

#: salt separating fault draws from every other (seed, round, client) stream
_FAULT_SALT = 0xFA17

#: salt of the attempt-independent poisoned-task draw
_POISON_SALT = 0xBADD

#: exit status of a worker killed by an injected crash (looks like SIGKILL's
#: 128+9 to the pool, but distinguishable in core dump-free logs)
CRASH_EXIT_CODE = 137


class InjectedFault(Exception):
    """Base class of every exception raised by fault injection."""


class InjectedTaskError(InjectedFault):
    """An injected in-task exception (the ``exception`` fault kind)."""


class SimulatedCrash(InjectedFault):
    """A worker crash simulated in-process (serial/thread backends)."""


class SimulatedHang(InjectedFault):
    """A hang surfaced as an exception once its injected stall elapsed."""


@dataclass(frozen=True)
class FaultDecision:
    """One task dispatch's fate: a fault kind and its injected delay."""

    kind: str = "none"
    seconds: float = 0.0

    @property
    def faulty(self) -> bool:
        return self.kind not in ("none", "slow")


_NO_FAULT = FaultDecision()


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible chaos schedule over ``(round, client, attempt)``.

    Rates are independent per-dispatch probabilities resolved by a single
    uniform draw with stacked thresholds (exception, then crash, then hang,
    then slow), so at most one fault fires per dispatch and the marginal
    probability of each kind equals its rate.  ``poison_rate`` is drawn
    separately — without the attempt number — so a poisoned task fails
    identically on every retry.

    The plan rides :class:`~repro.federated.config.FederatedConfig` (and
    therefore the checkpoint run digest and the sweep result cache): two
    runs with different fault plans are different runs.
    """

    seed: int = 0
    exception_rate: float = 0.0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    slow_rate: float = 0.0
    poison_rate: float = 0.0
    hang_seconds: float = 0.5
    slow_seconds: float = 0.02

    def __post_init__(self) -> None:
        for name in ("exception_rate", "crash_rate", "hang_rate",
                     "slow_rate", "poison_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        total = (self.exception_rate + self.crash_rate + self.hang_rate
                 + self.slow_rate)
        if total > 1.0:
            raise ValueError(
                "exception_rate + crash_rate + hang_rate + slow_rate must "
                f"not exceed 1.0 (got {total!r}); the kinds stack on one "
                "uniform draw")
        if self.hang_seconds < 0 or self.slow_seconds < 0:
            raise ValueError("hang_seconds/slow_seconds must be >= 0")

    def decide(self, round_index: int, client_id: int,
               attempt: int) -> FaultDecision:
        """The fate of one dispatch — pure in ``(round, client, attempt)``."""
        if self.poison_rate > 0.0:
            poison = np.random.default_rng(
                (self.seed, int(round_index), int(client_id), _POISON_SALT))
            if poison.random() < self.poison_rate:
                return FaultDecision("exception")
        if (self.exception_rate == 0.0 and self.crash_rate == 0.0
                and self.hang_rate == 0.0 and self.slow_rate == 0.0):
            return _NO_FAULT
        rng = np.random.default_rng(
            (self.seed, int(round_index), int(client_id), int(attempt),
             _FAULT_SALT))
        draw = rng.random()
        threshold = self.exception_rate
        if draw < threshold:
            return FaultDecision("exception")
        threshold += self.crash_rate
        if draw < threshold:
            return FaultDecision("crash")
        threshold += self.hang_rate
        if draw < threshold:
            return FaultDecision("hang", self.hang_seconds)
        threshold += self.slow_rate
        if draw < threshold:
            return FaultDecision("slow", self.slow_seconds)
        return _NO_FAULT


def apply_fault(decision: FaultDecision, *, real: bool = False,
                budget: Optional[float] = None) -> None:
    """Realize one decision at the top of a task, before the body runs.

    ``real=True`` is the process backend: crashes genuinely kill the worker
    and hangs/slowdowns genuinely sleep (a hang's stall is capped at half
    the supervisor's timeout ``budget`` so chaos runs stay wall-clock
    bounded).  ``real=False`` (serial/thread) realizes the same decisions
    as immediate exceptions — same counters, no lost worker, no wait.
    """
    kind = decision.kind
    if kind == "none":
        return
    if kind == "exception":
        raise InjectedTaskError("injected task exception")
    if kind == "crash":
        if real:
            os._exit(CRASH_EXIT_CODE)
        raise SimulatedCrash("injected worker crash (simulated in-process)")
    if kind == "hang":
        if real:
            stall = decision.seconds
            if budget is not None:
                stall = min(stall, budget * 0.5)
            time.sleep(stall)
        raise SimulatedHang("injected hang")
    if kind == "slow":
        if real and decision.seconds > 0:
            time.sleep(decision.seconds)
        return
    raise ValueError(f"unknown fault kind {kind!r}")


#: named chaos presets for the CLI (``--fault-plan``); each takes the run's
#: seed at build time so different seeds produce different chaos schedules
FAULT_PLANS: Dict[str, Dict[str, float]] = {
    # worker crashes dominate: exercises broken-pool detection + replenish
    "crashy": dict(crash_rate=0.10, slow_rate=0.10),
    # stalls dominate: exercises the timeout/reclaim path
    "hang-prone": dict(hang_rate=0.10, slow_rate=0.10, hang_seconds=0.5),
    # transient exceptions plus deterministically-poisoned tasks that
    # exhaust every retry and degrade into dropped clients
    "poison-task": dict(exception_rate=0.10, poison_rate=0.05),
    # everything at once: the chaos-smoke setting (crash + hang + exception
    # in one run, per the acceptance criteria)
    "chaos": dict(exception_rate=0.08, crash_rate=0.08, hang_rate=0.06,
                  slow_rate=0.05, hang_seconds=0.5),
}


def available_fault_plans() -> List[str]:
    """Preset names accepted by ``--fault-plan``."""
    return sorted(FAULT_PLANS)


def build_fault_plan(name: str, *, seed: int = 0) -> FaultPlan:
    """Instantiate a named chaos preset, keyed to the run's seed."""
    key = name.lower()
    if key not in FAULT_PLANS:
        raise ValueError(f"unknown fault plan {name!r}; "
                         f"choose from {available_fault_plans()}")
    return FaultPlan(seed=seed, **FAULT_PLANS[key])
