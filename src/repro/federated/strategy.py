"""Strategy interface: how a federated method plugs into the simulator.

A strategy owns the global model state and decides

* which clients participate in a round (``select_clients``),
* what a client computes locally and what it uploads (``local_update``),
* how the server merges uploads (``aggregate``),
* which parameters each client uses for inference (``client_evaluation``),
* any end-of-round bookkeeping such as bandit updates (``post_round``).

The :class:`FederatedTrainer` drives the round loop, converts the uploaded
footprints into simulated time through the cost model and records metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..data.dataset import FederatedDataset, mapping_client_ids
from ..nn.model import Sequential
from ..nn.params import ParamDict, copy_params
from ..sparsity.accounting import local_round_cost
from ..sparsity.masks import UnitPattern
from ..systems.cost import CostBreakdown, LocalCostModel
from ..systems.devices import DeviceFleet
from ..nn.batched import batchable_model
from .aggregation import fedavg
from .batched import train_cohort_batched
from .client import Client
from .config import FederatedConfig
from .fleet import bind_client_state_initializer
from .local import train_locally


@dataclass
class StrategyContext:
    """Everything a strategy needs to run: model, data, devices, config.

    ``clients`` is any ``Mapping[int, Client]`` — a plain dict in
    hand-built setups, or a :class:`~repro.federated.fleet.ClientFleet`
    that materializes client facades lazily.  Strategies should index it by
    id and treat whole-mapping iteration as an O(num_clients)
    materialization.
    """

    model: Sequential
    clients: Mapping[int, Client]
    dataset: FederatedDataset
    fleet: DeviceFleet
    config: FederatedConfig
    cost_model: LocalCostModel
    rng: np.random.Generator

    @property
    def client_ids(self) -> np.ndarray:
        """Fleet ids as a cached read-only ``np.arange``-style int64 array."""
        return mapping_client_ids(self.clients)


@dataclass
class ClientUpdate:
    """What one client reports back to the server after a round."""

    client_id: int
    params: ParamDict
    num_examples: int
    train_accuracy: float
    train_loss: float
    pattern: Optional[UnitPattern] = None
    sparse_ratio: float = 1.0
    flops: float = 0.0
    upload_bytes: float = 0.0
    download_bytes: float = 0.0
    extras: Dict[str, float] = field(default_factory=dict)


class Strategy:
    """Base class implementing plain FedAvg behaviour.

    Subclasses override the hooks they need; the base implementations are a
    correct dense-FL method on their own (and are what the FedAvg baseline
    uses directly).
    """

    name = "fedavg"

    def __init__(self) -> None:
        self.context: Optional[StrategyContext] = None
        self.global_params: Optional[ParamDict] = None

    # ------------------------------------------------------------ lifecycle
    def setup(self, context: StrategyContext) -> None:
        self.context = context
        self.global_params = context.model.get_parameters()
        bind_client_state_initializer(context.clients, self.init_client_state)

    def init_client_state(self, client: Client) -> None:
        """Initialize one client's persistent ``state`` (pure per client).

        Strategies that keep per-client state (importance indicators, bandit
        bookkeeping, ...) override this instead of looping over every client
        in ``setup``: with a lazy fleet the hook runs the first time a
        client is materialized, so untouched clients cost nothing.  The
        implementation must depend only on the client (id, capability, data
        sizes) and the context — never on which other clients exist or have
        been initialized — so lazy and eager initialization orders agree.
        For the fleet size use ``context.dataset.num_clients``, not
        ``len(context.clients)``: the hook may run on a broadcast worker
        whose context maps only the one client being rebuilt.
        """

    def _require_context(self) -> StrategyContext:
        if self.context is None or self.global_params is None:
            raise RuntimeError("strategy used before setup() was called")
        return self.context

    # ------------------------------------------------------------ selection
    def select_clients(self, round_index: int,
                       count: Optional[int] = None) -> List[int]:
        """Uniformly random selection of ``count`` clients.

        ``count`` defaults to ``config.clients_per_round``; the server
        passes a widened target explicitly when a scenario over-selects, so
        strategies never see (or mutate) a temporarily patched config.
        """
        context = self._require_context()
        ids = context.client_ids
        if count is None:
            count = context.config.clients_per_round
        count = min(count, len(ids))
        chosen = context.rng.choice(ids, size=count, replace=False)
        return sorted(int(cid) for cid in chosen)

    # --------------------------------------------------------- local update
    def local_update(self, round_index: int, client: Client) -> ClientUpdate:
        """Dense local SGD starting from the global parameters."""
        context = self._require_context()
        config = context.config
        result = train_locally(
            context.model, self.global_params, client.train_data,
            iterations=config.local_iterations, batch_size=config.batch_size,
            learning_rate=config.learning_rate, momentum=config.momentum,
            clip_norm=config.clip_norm,
            rng=self._client_rng(round_index, client.client_id))
        flops, upload, download = self._round_footprint(client, pattern=None)
        return ClientUpdate(
            client_id=client.client_id, params=result.params,
            num_examples=client.num_train_examples,
            train_accuracy=result.train_accuracy, train_loss=result.train_loss,
            flops=flops, upload_bytes=upload, download_bytes=download)

    # ------------------------------------------------------ cohort batching
    def cohort_batchable(self) -> bool:
        """Whether ``local_update_cohort`` reproduces this strategy's
        per-client ``local_update`` bit-for-bit for a whole cohort.

        The base predicate is conservative: a subclass that overrides
        ``local_update`` (heterogeneous widths, personalization, custom
        uploads) automatically falls back to the per-client loop unless it
        also overrides the cohort hooks, and models containing layers
        without batched kernels (dropout, embeddings, recurrent cells)
        always fall back.
        """
        context = self._require_context()
        return (type(self).local_update is Strategy.local_update
                and batchable_model(context.model))

    def local_update_cohort(self, round_index: int,
                            clients: List[Client]
                            ) -> Optional[List[ClientUpdate]]:
        """Batched twin of ``local_update`` over a homogeneous cohort.

        Returns one :class:`ClientUpdate` per client in input order, or
        ``None`` to make the caller fall back to the per-client loop.  Only
        called when :meth:`cohort_batchable` is true.
        """
        context = self._require_context()
        config = context.config
        results = train_cohort_batched(
            context.model,
            [self.global_params] * len(clients),
            [client.train_data for client in clients],
            iterations=config.local_iterations, batch_size=config.batch_size,
            learning_rate=config.learning_rate, momentum=config.momentum,
            clip_norm=config.clip_norm,
            rngs=[self._client_rng(round_index, client.client_id)
                  for client in clients])
        updates = []
        for client, result in zip(clients, results):
            flops, upload, download = self._round_footprint(client, pattern=None)
            updates.append(ClientUpdate(
                client_id=client.client_id, params=result.params,
                num_examples=client.num_train_examples,
                train_accuracy=result.train_accuracy,
                train_loss=result.train_loss,
                flops=flops, upload_bytes=upload, download_bytes=download))
        return updates

    # ----------------------------------------------------------- aggregation
    def aggregate(self, round_index: int, updates: List[ClientUpdate]) -> None:
        """FedAvg: weighted average of the uploaded parameters."""
        if not updates:
            return
        self.global_params = fedavg(
            [update.params for update in updates],
            [update.num_examples for update in updates])

    # ------------------------------------------------------------ evaluation
    def client_evaluation(self, client: Client) -> Tuple[ParamDict, Optional[UnitPattern]]:
        """Parameters (and optional sub-model pattern) the client infers with."""
        self._require_context()
        return self.global_params, None

    # ------------------------------------------------------------- post-round
    def post_round(self, round_index: int, updates: List[ClientUpdate],
                   costs: Mapping[int, CostBreakdown]) -> None:
        """Hook for bandit updates, staleness bookkeeping, etc."""

    # --------------------------------------------------------------- helpers
    def _client_state(self, client_id: int) -> Dict:
        """A participant's persistent state without materializing its shard.

        ``post_round`` hooks should read state through this instead of
        ``context.clients[cid].state``: on a lazy fleet the latter builds a
        full ``Client`` facade — synthesizing the client's data — just to
        reach a dict the fleet's sparse store already holds O(1).
        """
        context = self._require_context()
        clients = context.clients
        peek = getattr(clients, "peek_state", None)
        if peek is not None:
            state = peek(client_id)
            if state is not None:
                return state
        return clients[client_id].state

    def _client_rng(self, round_index: int, client_id: int) -> np.random.Generator:
        context = self._require_context()
        return np.random.default_rng(
            context.config.seed * 1_000_003 + round_index * 1009 + client_id)

    def _round_footprint(self, client: Client, *,
                         pattern: Optional[UnitPattern] = None,
                         uniform_ratio: Optional[float] = None
                         ) -> Tuple[float, float, float]:
        """FLOPs / upload / download footprint of one local round."""
        context = self._require_context()
        config = context.config
        cost = local_round_cost(
            context.model, client.num_train_examples, config.local_iterations,
            config.batch_size, pattern=pattern, uniform_ratio=uniform_ratio)
        return cost.flops, cost.upload_bytes, cost.download_bytes

    def snapshot_global(self) -> ParamDict:
        """A defensive copy of the current global parameters."""
        self._require_context()
        return copy_params(self.global_params)
