"""Unit tests for the recurrent layers (RNN, LSTM, LastTimestep)."""

import numpy as np
import pytest

from repro.nn import LSTM, RNN, LastTimestep


def numeric_gradient(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = x[idx]
        x[idx] = original + eps
        plus = f()
        x[idx] = original - eps
        minus = f()
        x[idx] = original
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


@pytest.mark.parametrize("layer_cls", [RNN, LSTM])
class TestRecurrentCommon:
    def test_output_shape(self, layer_cls):
        layer = layer_cls(3, 5, name="r")
        out = layer.forward(np.ones((2, 7, 3)))
        assert out.shape == (2, 7, 5)

    def test_rejects_wrong_input_dim(self, layer_cls):
        layer = layer_cls(3, 5, name="r")
        with pytest.raises(ValueError):
            layer.forward(np.ones((2, 7, 4)))

    def test_n_units_is_hidden_dim(self, layer_cls):
        assert layer_cls(3, 5, name="r").n_units == 5

    def test_gate_zeroes_hidden_units(self, layer_cls):
        layer = layer_cls(3, 4, name="r")
        gate = np.array([1.0, 0.0, 1.0, 0.0])
        layer.set_unit_gate(gate)
        out = layer.forward(np.random.default_rng(0).standard_normal((2, 5, 3)))
        assert np.all(out[:, :, 1] == 0.0)
        assert np.all(out[:, :, 3] == 0.0)

    def test_backward_returns_input_shaped_gradient(self, layer_cls):
        layer = layer_cls(3, 4, name="r")
        x = np.random.default_rng(0).standard_normal((2, 5, 3))
        out = layer.forward(x)
        grad_in = layer.backward(np.ones_like(out))
        assert grad_in.shape == x.shape

    def test_unit_weight_magnitude_positive(self, layer_cls):
        layer = layer_cls(3, 4, name="r")
        magnitude = layer.unit_weight_magnitude()
        assert magnitude.shape == (4,)
        assert np.all(magnitude >= 0)

    def test_flops_scale_with_sequence_length(self, layer_cls):
        layer = layer_cls(3, 4, name="r")
        short, _ = layer.flops_per_example((5, 3))
        long, _ = layer.flops_per_example((10, 3))
        assert long == 2 * short


class TestRNNGradients:
    def test_wx_gradient_matches_numeric(self):
        rng = np.random.default_rng(0)
        layer = RNN(2, 3, name="r", rng=rng)
        x = rng.standard_normal((2, 4, 2))
        target = rng.standard_normal((2, 4, 3))

        def loss():
            return 0.5 * float(np.sum((layer.forward(x) - target) ** 2))

        layer.zero_grad()
        out = layer.forward(x)
        layer.backward(out - target)
        numeric = numeric_gradient(loss, layer.params["Wx"])
        np.testing.assert_allclose(layer.grads["Wx"], numeric, atol=1e-5)


class TestLSTMGradients:
    def test_wx_gradient_matches_numeric(self):
        rng = np.random.default_rng(0)
        layer = LSTM(2, 3, name="l", rng=rng)
        x = rng.standard_normal((2, 3, 2))
        target = rng.standard_normal((2, 3, 3))

        def loss():
            return 0.5 * float(np.sum((layer.forward(x) - target) ** 2))

        layer.zero_grad()
        out = layer.forward(x)
        layer.backward(out - target)
        numeric = numeric_gradient(loss, layer.params["Wx"])
        np.testing.assert_allclose(layer.grads["Wx"], numeric, atol=1e-5)

    def test_wh_gradient_matches_numeric(self):
        rng = np.random.default_rng(1)
        layer = LSTM(2, 2, name="l", rng=rng)
        x = rng.standard_normal((1, 4, 2))
        target = rng.standard_normal((1, 4, 2))

        def loss():
            return 0.5 * float(np.sum((layer.forward(x) - target) ** 2))

        layer.zero_grad()
        out = layer.forward(x)
        layer.backward(out - target)
        numeric = numeric_gradient(loss, layer.params["Wh"])
        np.testing.assert_allclose(layer.grads["Wh"], numeric, atol=1e-5)

    def test_forget_bias_initialized_to_one(self):
        layer = LSTM(2, 3, name="l")
        np.testing.assert_allclose(layer.params["b"][3:6], 1.0)

    def test_expand_unit_mask_blocks(self):
        layer = LSTM(2, 3, name="l")
        masks = layer.expand_unit_mask(np.array([1.0, 0.0, 1.0]))
        # columns of the pruned unit are zero in every one of the 4 gate blocks
        for block in range(4):
            assert np.all(masks["Wx"][:, block * 3 + 1] == 0)
            assert np.all(masks["b"][block * 3 + 1] == 0)
        # the recurrent row of the pruned unit is zero as well
        assert np.all(masks["Wh"][1] == 0)


class TestLastTimestep:
    def test_selects_final_step(self):
        layer = LastTimestep(name="last")
        x = np.arange(24, dtype=float).reshape(2, 3, 4)
        out = layer.forward(x)
        np.testing.assert_array_equal(out, x[:, -1])

    def test_backward_scatters_to_final_step(self):
        layer = LastTimestep(name="last")
        x = np.zeros((2, 3, 4))
        layer.forward(x)
        grad = layer.backward(np.ones((2, 4)))
        assert grad.shape == x.shape
        assert np.all(grad[:, -1] == 1.0)
        assert np.all(grad[:, :-1] == 0.0)
