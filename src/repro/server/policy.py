"""Aggregation policies: how arrivals are merged into the global model.

The synchronous round loop merges a full cohort through
``strategy.aggregate`` and nothing else.  The asynchronous schedulers
additionally need *staleness weighting*: an update that trained on global
parameters ``s`` server versions old should move the global model less than
a fresh one.  That weighting lives here, separate from both the schedulers
(which decide *when* to merge) and the ``weighted_average`` kernels in
``repro.nn.params`` (which only know how to average, not how much to trust).

The merge is strategy-agnostic: the policy asks the strategy to aggregate
the arrival batch exactly as it would in a synchronous round (so residual
reconstruction, masked averaging and any other method-specific math keeps
working), then mixes the resulting candidate back into the previous global
parameters with the staleness-decayed weight:

    global <- (1 - w) * global_prev + w * candidate,
    w = alpha / (1 + staleness)^a          (FedAsync, Xie et al.)

For a buffered flush (FedBuff, Nguyen et al.) the batch carries several
arrivals with individual stalenesses; the mixing weight is ``alpha`` times
the mean of their individual decay factors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..federated.strategy import ClientUpdate, Strategy
from ..nn.params import ParamDict


def staleness_decay(staleness: float, *, exponent: float = 0.5) -> float:
    """The polynomial staleness discount ``1 / (1 + s)^a`` (FedAsync Eq. 5)."""
    if staleness < 0:
        raise ValueError("staleness must be non-negative")
    if exponent < 0:
        raise ValueError("the staleness exponent must be non-negative")
    return float(1.0 / (1.0 + staleness) ** exponent)


def staleness_weight(staleness: float, *, alpha: float = 0.6,
                     exponent: float = 0.5) -> float:
    """Mixing weight ``alpha / (1 + s)^a`` of an update ``s`` versions stale."""
    if not 0.0 < alpha <= 1.0:
        raise ValueError("alpha must be in (0, 1]")
    return alpha * staleness_decay(staleness, exponent=exponent)


def mix_params(previous: Mapping[str, np.ndarray],
               candidate: Mapping[str, np.ndarray],
               weight: float, *,
               out: "ParamDict | None" = None) -> ParamDict:
    """Convex combination ``(1 - w) * previous + w * candidate`` per entry.

    With ``out`` (typically the candidate dictionary itself, when the caller
    owns it) the result is written into the given arrays instead of fresh
    allocations — bit-identical, since IEEE-754 addition is commutative and
    the per-entry expression tree is unchanged.
    """
    if not 0.0 <= weight <= 1.0:
        raise ValueError("the mixing weight must be in [0, 1]")
    if previous.keys() != candidate.keys():
        raise ValueError("previous and candidate parameters disagree on keys")
    if out is None:
        return {key: (1.0 - weight) * previous[key] + weight * candidate[key]
                for key in previous}
    for key in previous:
        target = np.multiply(candidate[key], weight, out=out[key])
        target += (1.0 - weight) * previous[key]
    return out


@dataclass(frozen=True)
class Arrival:
    """One update ready to merge, with the staleness measured at merge time.

    ``cost`` is the dispatch-time :class:`~repro.systems.cost.CostBreakdown`
    — the schedulers thread it through so ``post_round`` bookkeeping sees
    the same costs a synchronous round would; the policy itself ignores it.
    """

    update: ClientUpdate
    staleness: int
    cost: object = None


class AggregationPolicy:
    """Staleness-weighted merge of arrival batches into the global model."""

    def __init__(self, *, alpha: float = 0.6, exponent: float = 0.5) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if exponent < 0:
            raise ValueError("the staleness exponent must be non-negative")
        self.alpha = alpha
        self.exponent = exponent

    def weight(self, staleness: float) -> float:
        """Mixing weight for a single update ``staleness`` versions old."""
        return staleness_weight(staleness, alpha=self.alpha,
                                exponent=self.exponent)

    def batch_weight(self, arrivals: Sequence[Arrival]) -> float:
        """Mixing weight for a flush: alpha x mean per-arrival decay."""
        if not arrivals:
            raise ValueError("cannot weight an empty arrival batch")
        decay = float(np.mean([staleness_decay(a.staleness,
                                               exponent=self.exponent)
                               for a in arrivals]))
        return self.alpha * decay

    def merge(self, strategy: Strategy, round_index: int,
              arrivals: Sequence[Arrival]) -> float:
        """Merge ``arrivals`` into ``strategy.global_params``; returns w.

        The strategy's own ``aggregate`` computes the candidate parameters
        from the batch (method-specific math included); the policy then
        pulls the global model toward that candidate by the staleness
        weight.  With ``staleness == 0`` and ``alpha == 1`` this degenerates
        to the synchronous aggregation exactly.

        The mix writes into the candidate arrays, which assumes ``aggregate``
        returns freshly-allocated parameters — true of every shipped kernel
        (``weighted_average``/``masked_average`` allocate their results); a
        strategy that aliases update arrays into ``global_params`` must copy
        them first.
        """
        if not arrivals:
            return 0.0
        # the snapshot guards against strategies that aggregate in place;
        # the mix itself reuses the candidate arrays the aggregation just
        # allocated, so the per-arrival cost is one copy, not three
        previous = {key: value.copy()
                    for key, value in strategy.global_params.items()}
        strategy.aggregate(round_index, [a.update for a in arrivals])
        weight = self.batch_weight(arrivals)
        candidate = strategy.global_params
        strategy.global_params = mix_params(previous, candidate, weight,
                                            out=candidate)
        return weight
