"""The event-driven server core: state, fan-out transport and services.

:class:`ServerCore` owns everything the old monolithic
``FederatedTrainer._run`` loop owned — strategy, dataset, device fleet,
cost model, scenario engine, executor and the shared-memory broadcast
transport — but no longer hard-codes the synchronous round shape.  The
*shape* of training (when clients are dispatched, when arrivals are
aggregated) lives in a :class:`~repro.server.scheduler.Scheduler`; the core
provides the services every scheduler composes:

* deterministic client selection (with scenario over-selection),
* availability splits and per-client latencies from the scenario engine,
* local-update fan-out over the executor — ordered for the synchronous
  scheduler, completion-order (``map_unordered``) for the asynchronous ones,
* cost accounting through the Eq. 14 cost model,
* personalized evaluation,
* the session/round shared-memory broadcasts from ``repro.parallel``.

The session broadcast ships the run invariants once per trainer; since the
event-driven refactor the *dataset arrays* ride the broadcast manifest as
raw shared-memory blocks (like the global parameters) instead of inside the
pickled session blob — only a small skeleton (names, shapes, client ids) is
pickled.
"""

from __future__ import annotations

import copy
import threading
from contextlib import nullcontext
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..data.dataset import ClientData, Dataset, FederatedDataset
from ..data.partition import VirtualFederatedDataset
from ..federated.client import Client
from ..federated.config import FederatedConfig
from ..federated.evaluation import evaluate_params
from ..federated.fleet import ClientFleet
from ..federated.strategy import ClientUpdate, Strategy, StrategyContext
from ..nn.model import Sequential
from ..nn.params import param_nbytes
from ..parallel import Broadcast, BroadcastHandle, Executor, materialize
from ..parallel.codec import EncodedParams, resolve_codec
from ..parallel.supervision import RetryPolicy, run_supervised
from ..scenarios.engine import RoundOutcome, ScenarioEngine
from ..sparsity.accounting import SparseCost
from ..systems.cost import CostBreakdown, LocalCostModel
from ..systems.devices import DeviceFleet, sample_device_fleet
from ..systems.metrics import TrainingHistory

#: key prefix of the dataset blocks on the session broadcast manifest
_DATASET_BLOCK_PREFIX = "dataset"

#: round_index tag of the session broadcast (round broadcasts use >= -1)
_SESSION_ROUND_INDEX = -2

#: salt of the deterministic evaluation-subset draw (fleet.eval_clients)
_EVAL_SUBSET_SALT = 0xE7A1


# ----------------------------------------------------------- session blocks
def dataset_to_blocks(dataset: FederatedDataset
                      ) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
    """Split a federated dataset into raw array blocks + a pickled skeleton.

    Eager datasets ship every client's train/test arrays as manifest blocks
    (the PR 4 transport).  Virtual datasets ship O(1) instead: generated
    federations put only their :class:`~repro.data.partition.FederationSpec`
    in the skeleton (any worker rebuilds any client from it), and pooled
    federations add the base arrays plus the CSR index assignment — per
    -client *index slices*, never per-client shard copies — so worker-side
    materialization stays O(cohort).
    """
    if isinstance(dataset, VirtualFederatedDataset) and dataset.spec is not None:
        # the descriptive fields travel alongside the spec (mirroring
        # VirtualFederatedDataset.__reduce__) so a post-construction change
        # to them survives this transport exactly like the pickle one
        skeleton = {"kind": "virtual", "spec": dataset.spec,
                    "overrides": {"name": dataset.name,
                                  "num_classes": dataset.num_classes,
                                  "input_shape": tuple(dataset.input_shape),
                                  "metadata": dict(dataset.metadata)}}
        return dict(dataset.transport_blocks()), skeleton
    blocks: Dict[str, np.ndarray] = {}
    for client_id in map(int, dataset.client_ids):
        shard = dataset.clients[client_id]
        blocks[f"{_DATASET_BLOCK_PREFIX}/{client_id}/train/x"] = shard.train.x
        blocks[f"{_DATASET_BLOCK_PREFIX}/{client_id}/train/y"] = shard.train.y
        blocks[f"{_DATASET_BLOCK_PREFIX}/{client_id}/test/x"] = shard.test.x
        blocks[f"{_DATASET_BLOCK_PREFIX}/{client_id}/test/y"] = shard.test.y
    skeleton = {
        "kind": "blocks",
        "name": dataset.name,
        "num_classes": dataset.num_classes,
        "input_shape": tuple(dataset.input_shape),
        "metadata": dict(dataset.metadata),
        "client_ids": [int(cid) for cid in dataset.client_ids],
    }
    return blocks, skeleton


def dataset_from_blocks(skeleton: Dict[str, object],
                        blocks: Dict[str, np.ndarray], *,
                        shard_cache: int = 256) -> FederatedDataset:
    """Inverse of :func:`dataset_to_blocks` (arrays are shared, not copied)."""
    if skeleton.get("kind") == "virtual":
        spec = skeleton["spec"]
        pooled = None
        if "dataset/base/x" in blocks:
            pooled = (blocks["dataset/base/x"], blocks["dataset/base/y"],
                      blocks["dataset/assign/indices"],
                      blocks["dataset/assign/offsets"])
        dataset = VirtualFederatedDataset.from_spec(spec,
                                                    shard_cache=shard_cache,
                                                    pooled_arrays=pooled)
        for field_name, value in skeleton.get("overrides", {}).items():
            setattr(dataset, field_name, value)
        return dataset
    clients: Dict[int, ClientData] = {}
    for client_id in skeleton["client_ids"]:
        prefix = f"{_DATASET_BLOCK_PREFIX}/{client_id}"
        clients[client_id] = ClientData(
            client_id=client_id,
            train=Dataset(blocks[f"{prefix}/train/x"],
                          blocks[f"{prefix}/train/y"]),
            test=Dataset(blocks[f"{prefix}/test/x"],
                         blocks[f"{prefix}/test/y"]))
    return FederatedDataset(
        name=skeleton["name"], clients=clients,
        num_classes=skeleton["num_classes"],
        input_shape=tuple(skeleton["input_shape"]),
        metadata=dict(skeleton["metadata"]))


#: worker-side memo of rebuilt sessions, keyed like the materialize cache —
#: thread-local for the same reason (per process-worker / per thread-worker)
_session_memo = threading.local()
_SESSION_MEMO_LIMIT = 2


def materialized_session(handle: BroadcastHandle) -> tuple:
    """The rebuilt ``(model, dataset, fleet, config, cost_model)`` session.

    :func:`repro.parallel.materialize` already caches the raw blocks and the
    pickled skeleton per worker; this memo additionally caches the
    *reconstructed* dataset so the per-task cost of a session hit is a pure
    dictionary lookup.
    """
    memo = getattr(_session_memo, "entries", None)
    if memo is None:
        memo = _session_memo.entries = {}
    key = handle.cache_key
    hit = memo.get(key)
    if hit is not None:
        return hit
    blocks, payload = materialize(handle)
    model, skeleton, fleet, config, cost_model = payload
    dataset = dataset_from_blocks(skeleton, blocks or {},
                                  shard_cache=config.fleet.shard_cache)
    session = (model, dataset, fleet, config, cost_model)
    if len(memo) >= _SESSION_MEMO_LIMIT:
        memo.clear()
    memo[key] = session
    return session


# ------------------------------------------------------------ worker tasks
def _local_update_task(payload: Tuple[Strategy, int, Client]
                       ) -> Tuple[ClientUpdate, Dict]:
    """Run one client's local update; executed on a worker.

    Strategies persist per-client information in ``client.state``, so the
    (possibly mutated) state dictionary is shipped back alongside the update
    — with the thread/process backends the caller never sees in-place
    mutations.
    """
    strategy, round_index, client = payload
    update = strategy.local_update(round_index, client)
    return update, client.state


def _evaluation_task(payload: Tuple[Strategy, Client]) -> float:
    """Evaluate one client's personalized model; executed on a worker."""
    strategy, client = payload
    params, pattern = strategy.client_evaluation(client)
    result = evaluate_params(strategy.context.model, params, client.test_data,
                             pattern=pattern)
    return result["accuracy"]


def _bind_broadcast_client(session_handle: BroadcastHandle,
                           round_handle: BroadcastHandle, client_id: int,
                           state: Optional[Dict]) -> Tuple[Strategy, Client]:
    """Rebuild a dispatch-ready strategy + client from broadcast handles.

    The session broadcast carries the run invariants (model architecture,
    dataset shards/spec, fleet, config, cost model); the round broadcast
    carries the strategy template and the global parameter blocks.  Both
    are cached per worker (:func:`repro.parallel.materialize` plus the
    session memo above), so only ``(client_id, state)`` actually crosses
    the worker boundary per task.  ``state=None`` marks a client that has
    never participated: the worker runs the strategy's (pure per client)
    ``init_client_state`` itself, which is bit-identical to server-side
    initialization and saves the server from materializing the client at
    all.  Reusing the materialized template across a worker's sequential
    tasks mirrors the serial reference, where one strategy/model instance
    serves every client of the round in turn.
    """
    model, dataset, fleet, config, cost_model = \
        materialized_session(session_handle)
    global_params, (template, rng) = materialize(round_handle)
    initialize = state is None
    client = Client(client_id, dataset.client(client_id), fleet[client_id],
                    state={} if initialize else state)
    strategy = copy.copy(template)
    strategy.global_params = global_params
    strategy.context = StrategyContext(
        model=model, clients={client_id: client}, dataset=dataset,
        fleet=fleet, config=config, cost_model=cost_model, rng=rng)
    if initialize:
        strategy.init_client_state(client)
    return strategy, client


def _broadcast_local_update_task(
        payload: Tuple[BroadcastHandle, BroadcastHandle, int, int,
                       Optional[Dict]]
        ) -> Tuple[ClientUpdate, Dict]:
    """Broadcast-era variant of :func:`_local_update_task`.

    Under a non-dense wire codec the worker encodes the update's parameters
    before returning, so the *actual* cross-process pickle carries the
    compressed wire form; the server decodes on receipt.  (The serial and
    legacy paths round-trip ``decode(encode(.))`` server-side instead,
    which composes to the identical numerics.)
    """
    session_handle, round_handle, round_index, client_id, state = payload
    strategy, client = _bind_broadcast_client(session_handle, round_handle,
                                              client_id, state)
    update = strategy.local_update(round_index, client)
    config = strategy.context.config
    if config.codec != "dense":
        update.params = resolve_codec(config.codec).encode(update.params)
    return update, client.state


def _bind_broadcast_cohort(session_handle: BroadcastHandle,
                           round_handle: BroadcastHandle,
                           client_ids: Tuple[int, ...],
                           states: Tuple[Optional[Dict], ...]
                           ) -> Tuple[Strategy, List[Client]]:
    """Rebuild a strategy + the whole cohort from broadcast handles.

    The cohort twin of :func:`_bind_broadcast_client`: one worker hosts
    every selected client so the strategy can fuse their local updates into
    a single batched tensor program.  State handling is identical — stored
    states ride the payload, ``None`` marks first-time participants whose
    (pure per client) ``init_client_state`` runs worker-side.
    """
    model, dataset, fleet, config, cost_model = \
        materialized_session(session_handle)
    global_params, (template, rng) = materialize(round_handle)
    clients: Dict[int, Client] = {}
    for client_id, state in zip(client_ids, states):
        clients[client_id] = Client(
            client_id, dataset.client(client_id), fleet[client_id],
            state={} if state is None else state)
    strategy = copy.copy(template)
    strategy.global_params = global_params
    strategy.context = StrategyContext(
        model=model, clients=clients, dataset=dataset,
        fleet=fleet, config=config, cost_model=cost_model, rng=rng)
    for client_id, state in zip(client_ids, states):
        if state is None:
            strategy.init_client_state(clients[client_id])
    return strategy, [clients[client_id] for client_id in client_ids]


def _broadcast_cohort_update_task(
        payload: Tuple[BroadcastHandle, BroadcastHandle, int,
                       Tuple[int, ...], Tuple[Optional[Dict], ...]]
        ) -> List[Tuple[ClientUpdate, Dict]]:
    """Run a whole cohort's local updates as one batched task.

    Dispatched instead of per-client :func:`_broadcast_local_update_task`
    payloads when cohort batching is engaged.  The strategy may still
    decline at run time (``local_update_cohort`` returning ``None``), in
    which case the worker falls back to the per-client loop in-task —
    either way the result list matches the per-client dispatch, update by
    update and state by state.
    """
    session_handle, round_handle, round_index, client_ids, states = payload
    strategy, clients = _bind_broadcast_cohort(session_handle, round_handle,
                                               client_ids, states)
    updates = None
    if strategy.cohort_batchable():
        updates = strategy.local_update_cohort(round_index, clients)
    if updates is None:
        updates = [strategy.local_update(round_index, client)
                   for client in clients]
    config = strategy.context.config
    if config.codec != "dense":
        codec = resolve_codec(config.codec)
        for update in updates:
            update.params = codec.encode(update.params)
    return [(update, client.state)
            for update, client in zip(updates, clients)]


def _broadcast_evaluation_task(
        payload: Tuple[BroadcastHandle, BroadcastHandle, int, Optional[Dict]]
        ) -> float:
    """Broadcast-era variant of :func:`_evaluation_task`."""
    session_handle, round_handle, client_id, state = payload
    strategy, client = _bind_broadcast_client(session_handle, round_handle,
                                              client_id, state)
    params, pattern = strategy.client_evaluation(client)
    result = evaluate_params(strategy.context.model, params, client.test_data,
                             pattern=pattern)
    return result["accuracy"]


# ------------------------------------------------------------------- core
class ServerCore:
    """Server-side state and services shared by every scheduler.

    The core is strategy-agnostic and *shape*-agnostic: it knows how to
    select clients, fan their local updates out across the executor, bill
    their costs and evaluate the personalized models — the scheduler decides
    in which order those services compose into a training run.
    """

    def __init__(self, strategy: Strategy, dataset: FederatedDataset,
                 model_builder: Callable[[], Sequential], *,
                 config: Optional[FederatedConfig] = None,
                 fleet: Optional[DeviceFleet] = None,
                 cost_model: Optional[LocalCostModel] = None,
                 executor: Optional[Executor] = None,
                 use_broadcast: bool = True) -> None:
        self.strategy = strategy
        self.dataset = dataset
        self.config = config or FederatedConfig()
        self.executor = executor
        self.use_broadcast = use_broadcast
        self._session_broadcast: Optional[Broadcast] = None
        # wire codec of the parameter round trip; the per-round wire report
        # (consumed by the scheduler via take_wire_report) is only produced
        # for non-dense codecs so dense histories stay byte-stable
        self.codec = resolve_codec(self.config.codec)
        self._last_wire: Optional[Dict[str, float]] = None
        # supervised execution (retries/timeouts/fault injection): active
        # whenever the config asks for any of it; the per-fan-out fault
        # report (take_fault_report) mirrors the wire report's one-shot
        # shape so default runs attach nothing and stay byte-stable
        self.retry_policy = RetryPolicy(
            max_retries=self.config.max_retries,
            task_timeout=self.config.task_timeout)
        self.supervised = (self.config.faults is not None
                           or self.retry_policy.active)
        self._last_faults: Optional[Dict[str, float]] = None
        self._last_failed: List[int] = []
        lazy = self.config.fleet.lazy
        self.fleet = fleet if fleet is not None else sample_device_fleet(
            dataset.num_clients, seed=self.config.seed, lazy=lazy)
        self.cost_model = cost_model or LocalCostModel(self.config.cost_alpha,
                                                       seed=self.config.seed)
        self.scenario = (ScenarioEngine(self.config.scenario,
                                        seed=self.config.seed)
                         if self.config.scenario is not None else None)
        self.model = model_builder()
        # the fleet view replaces the old eager Dict[int, Client]: with
        # ``fleet.lazy`` (the default) Client facades, shards, device
        # profiles and state come into existence per dispatched cohort.
        # ``config.fleet.shard_cache`` is authoritative for both pinning
        # layers — the facade cache here and the dataset's shard LRU (which
        # may have been built with a different bound) — so worst-case
        # resident shards are <= 2x shard_cache (disjoint id sets in the
        # two caches), documented in FleetConfig.
        shard_map = dataset.clients
        if hasattr(shard_map, "resize"):
            shard_map.resize(self.config.fleet.shard_cache)
        self.clients: ClientFleet = ClientFleet(
            dataset, self.fleet, lazy=lazy,
            cache_size=self.config.fleet.shard_cache)
        self._eval_ids: Optional[List[int]] = None
        self.context = StrategyContext(
            model=self.model, clients=self.clients, dataset=dataset,
            fleet=self.fleet, config=self.config, cost_model=self.cost_model,
            rng=np.random.default_rng(self.config.seed))

    # ------------------------------------------------------------------ run
    def run(self, *, checkpoint_dir: Optional[str] = None,
            checkpoint_every: int = 1, resume_from=None,
            stop_after_round: Optional[int] = None) -> TrainingHistory:
        """Build the configured scheduler and drive it to completion.

        ``checkpoint_dir`` enables round-boundary checkpointing (every
        ``checkpoint_every`` rounds).  ``resume_from`` continues an earlier
        run: ``"auto"`` resumes from the directory's latest checkpoint (or
        starts fresh when there is none), a path loads that file/directory,
        and a loaded :class:`~repro.checkpoint.RunCheckpoint` is used as-is
        — resuming refuses a checkpoint whose run digest does not match
        this core.  ``stop_after_round`` deterministically interrupts the
        run (checkpoint first, then raise
        :class:`~repro.checkpoint.TrainingInterrupted`), which is how the
        resume tests and the CI smoke job simulate preemption.
        """
        from ..checkpoint import CheckpointManager, resolve_resume
        from .scheduler import build_scheduler

        scheduler = build_scheduler(self.config)
        checkpointer = None
        if checkpoint_dir is not None:
            checkpointer = CheckpointManager(checkpoint_dir,
                                             every=checkpoint_every,
                                             stop_after_round=stop_after_round)
        elif stop_after_round is not None:
            raise ValueError("stop_after_round requires a checkpoint_dir "
                             "(interrupting without a checkpoint would "
                             "discard the run)")
        resume = resolve_resume(resume_from, checkpointer)
        try:
            return scheduler.run(self, checkpointer=checkpointer,
                                 resume=resume)
        finally:
            self.close()

    # -------------------------------------------------------------- scenario
    def select_clients(self, round_index: int) -> List[int]:
        """Ask the strategy for a round's clients, over-selecting if asked.

        Over-selection passes the widened budget to the strategy as an
        explicit ``count`` argument; the shared config is never mutated, so
        concurrent readers (workers holding the broadcast config, tests
        inspecting ``config.clients_per_round``) can never observe a
        temporarily patched value.
        """
        if self.scenario is None:
            return self.strategy.select_clients(round_index)
        base = self.config.clients_per_round
        target = min(self.scenario.selection_target(base), len(self.clients))
        if target == base:
            return self.strategy.select_clients(round_index)
        return self.strategy.select_clients(round_index, count=target)

    def split_available(self, round_index: int, selected: List[int]
                        ) -> Tuple[List[int], List[int]]:
        """Partition invited clients into (reachable, unreachable)."""
        if self.scenario is None:
            return list(selected), []
        return self.scenario.split_available(round_index, selected)

    def latency(self, round_index: int, client_id: int,
                base_seconds: float) -> float:
        """A client's sim latency (straggler spikes included, if scenario)."""
        if self.scenario is None:
            return float(base_seconds)
        return self.scenario.latency(round_index, client_id, base_seconds)

    def resolve_round(self, round_index: int,
                      costs: Dict[int, CostBreakdown]) -> RoundOutcome:
        """Let the scenario decide who survives and how long the round took.

        Without a scenario every client that ran participates and the round
        takes the synchronous Eq. 18 time, exactly as before this engine
        existed.
        """
        if self.scenario is None:
            return RoundOutcome(tuple(sorted(costs)), (),
                                LocalCostModel.round_time(costs.values()))
        latencies = {client_id: self.scenario.latency(
            round_index, client_id, cost.total_seconds)
            for client_id, cost in costs.items()}
        return self.scenario.resolve(round_index, latencies)

    # ----------------------------------------------------------------- costs
    def client_costs(self, round_index: int, updates: List[ClientUpdate]
                     ) -> Dict[int, CostBreakdown]:
        """Per-client Eq. 14 cost of the round's reported footprints."""
        costs: Dict[int, CostBreakdown] = {}
        for update in updates:
            device = self.fleet[update.client_id]
            footprint = SparseCost(update.flops, update.upload_bytes,
                                   update.download_bytes)
            costs[update.client_id] = self.cost_model.client_cost(
                device, footprint, round_index)
        return costs

    # ------------------------------------------------------------ broadcast
    def _broadcast_enabled(self) -> bool:
        """Whether fan-out should go through the shared-memory broadcast."""
        return (self.use_broadcast and self.executor is not None
                and self.executor.supports_broadcast)

    def _session_handle(self) -> BroadcastHandle:
        """Publish the run invariants once per trainer (lazily).

        The model's parameter *values* at publication time are irrelevant:
        every task installs the parameters it needs (``train_locally`` /
        ``evaluate_params`` both call ``set_parameters`` first), so only the
        architecture matters — exactly as with the serial reference, where
        one model instance is scratch space for every client in turn.  An
        eager dataset's arrays travel as raw manifest blocks with only the
        skeleton pickled; a virtual dataset ships its spec (plus, for pooled
        partitions, the base arrays and CSR index slices), so the session
        payload — like everything else — is O(cohort), not O(fleet).
        """
        if self._session_broadcast is None:
            blocks, skeleton = dataset_to_blocks(self.dataset)
            self._session_broadcast = Broadcast(
                (self.model, skeleton, self.fleet, self.config,
                 self.cost_model),
                params=blocks, round_index=_SESSION_ROUND_INDEX)
        return self._session_broadcast.handle

    def _round_broadcast(self, round_index: int, *,
                         encoded: Optional[EncodedParams] = None) -> Broadcast:
        """Publish the round-invariant payload: strategy template + params.

        The template is the strategy with its big, round-invariant pieces
        stripped: ``global_params`` travels as raw shared-memory blocks and
        ``context`` is rebuilt worker-side from the session broadcast.
        With ``encoded`` (a lossy codec's downlink snapshot) the parameters
        ship as codec-tagged wire blocks instead; workers decode them in
        :func:`repro.parallel.materialize` to exactly the arrays the server
        installed in :meth:`_snap_global_params`.
        """
        template = copy.copy(self.strategy)
        template.context = None
        template.global_params = None
        if encoded is not None:
            return Broadcast((template, self.context.rng),
                             encoded_params=encoded,
                             round_index=round_index)
        return Broadcast((template, self.context.rng),
                         params=self.strategy.global_params,
                         round_index=round_index)

    def _snap_global_params(self) -> Optional[EncodedParams]:
        """Push the global model through the lossy downlink (if any).

        Lossy codecs replace the global parameters with their decoded wire
        form at every dispatch/evaluation point, so the serial path,
        worker-side materialization and the next aggregation all see
        exactly what a compressed downlink delivers — a pure function of
        the config, uniform across schedulers and backends, and re-snapped
        identically after a checkpoint resume.  Lossless codecs return
        None: their downlink is the historical raw block path,
        byte-for-byte (the global model is dense, so the sparse codec
        compresses the *uplink* residuals, not the downlink).
        """
        if self.codec.lossless:
            return None
        encoded = self.codec.encode(self.strategy.global_params)
        self.strategy.global_params = self.codec.decode(encoded)
        return encoded

    def take_wire_report(self) -> Optional[Dict[str, float]]:
        """The last fan-out's wire byte accounting (None for dense codec).

        One-shot: the scheduler attaches it to the round's record via
        ``RoundRecord.extras``.  Evaluation traffic is deliberately
        excluded — the report measures the training round trip.
        """
        report, self._last_wire = self._last_wire, None
        return report

    def reduce_context(self):
        """The context every aggregation/merge runs under.

        With ``config.reducer_shards > 1`` this installs a
        :func:`repro.parallel.sharding.shard_plan`, partitioning the
        parameter manifest by key across reducer shards for the extent of
        the aggregation — the parameter-server reduce path.  Sharding
        never touches the history (bit-identical by construction; the
        byte ledger lives in module-level ``shard_stats``), so the
        single-shard default is a no-op context.
        """
        if self.config.reducer_shards > 1:
            from ..parallel.sharding import shard_plan
            return shard_plan(self.config.reducer_shards)
        return nullcontext()

    def close(self) -> None:
        """Release broadcast resources (recreated lazily if needed again)."""
        if self._session_broadcast is not None:
            self._session_broadcast.close()
            self._session_broadcast = None

    # ------------------------------------------------------------- dispatch
    def _dispatch_strategy(self, client: Client) -> Strategy:
        """A shallow strategy copy whose context carries only ``client``.

        The copy shares the (read-only during fan-out) global parameters and
        model with the original; slimming ``context.clients`` and the
        dataset's shards down to the one dispatched client keeps
        thread/process payloads proportional to a single client — the other
        clients' states and data never cross the worker boundary.  Dataset
        metadata (name, num_classes, input_shape) stays intact for
        strategies that consult it during local work.
        """
        strategy = copy.copy(self.strategy)
        # a plain FederatedDataset regardless of the server-side flavour:
        # a virtual dataset's lazy machinery (and any pooled base arrays)
        # must not ride along in a per-task pickle
        slim_dataset = FederatedDataset(
            name=self.dataset.name,
            clients={client.client_id: client.data},
            num_classes=self.dataset.num_classes,
            input_shape=tuple(self.dataset.input_shape),
            metadata=dict(self.dataset.metadata))
        strategy.context = replace(self.context,
                                   clients={client.client_id: client},
                                   dataset=slim_dataset)
        return strategy

    def _cohort_batching(self, selected: List[int]) -> bool:
        """Whether this fan-out runs as one batched cohort program.

        Requires the config opt-in, a cohort worth batching, no supervision
        (retry/fault bookkeeping is per client task) and a strategy/model
        pair whose batched path is bit-identical to the loop
        (``Strategy.cohort_batchable``).
        """
        return (self.config.batch_cohort and len(selected) > 1
                and not self.supervised
                and self.strategy.cohort_batchable())

    def run_local_updates(self, round_index: int, selected: List[int], *,
                          ordered: bool = True) -> List[ClientUpdate]:
        """Run the selected clients' local updates, fanning out if possible.

        With either mode the pool runs the cohort's clients concurrently and
        the call returns once the whole cohort has finished.  ``ordered=False``
        goes through the executor's ``map_unordered``, which skips the
        input-order barrier on the result list (and is the hook for streaming
        per-arrival consumption later); the asynchronous schedulers use it
        because they impose their own order — the event queue's pure
        ``(finish_time, client_id)`` sort — so the per-update contents are
        identical either way.

        With supervision active (``config.faults`` / ``max_retries`` /
        ``task_timeout``) the fan-out goes through
        :func:`repro.parallel.supervision.run_supervised` instead: failed
        tasks are retried with backoff, crashed workers replenished, and a
        client that exhausts its retries is *dropped* — it produces no
        update (so it never reaches ``aggregate``/``post_round``) and is
        reported through :meth:`take_fault_report` for the scheduler's
        ``dropped`` bookkeeping.
        """
        encoded_down = self._snap_global_params()
        if self.executor is None or not selected:
            if self.supervised:
                def inline_task(cid):
                    return self.strategy.local_update(round_index,
                                                      self.clients[cid])

                report = run_supervised(
                    None, inline_task, [(cid, cid) for cid in selected],
                    policy=self.retry_policy, plan=self.config.faults,
                    round_index=round_index)
                self._stash_fault_report(report)
                updates = [update for update in report.results
                           if update is not None]
            else:
                updates = None
                if self._cohort_batching(selected):
                    updates = self.strategy.local_update_cohort(
                        round_index, [self.clients[cid] for cid in selected])
                if updates is None:
                    updates = [self.strategy.local_update(round_index,
                                                          self.clients[cid])
                               for cid in selected]
        else:
            if self._broadcast_enabled():
                session = self._session_handle()
                with self._round_broadcast(round_index,
                                           encoded=encoded_down) as broadcast:
                    # peek_state ships the stored state, or None for
                    # first-time participants (the worker runs the pure init
                    # itself), so dispatch materializes nothing server-side —
                    # the worker is the only place the cohort's shards are
                    # built
                    if self._cohort_batching(selected):
                        # one task hosts the whole cohort: the worker fuses
                        # the local updates into a single batched tensor
                        # program (or falls back to the loop in-task)
                        payload = (session, broadcast.handle, round_index,
                                   tuple(int(cid) for cid in selected),
                                   tuple(self.clients.peek_state(cid)
                                         for cid in selected))
                        results = self.executor.map_ordered(
                            _broadcast_cohort_update_task, [payload])[0]
                    else:
                        payloads = [(session, broadcast.handle, round_index,
                                     cid, self.clients.peek_state(cid))
                                    for cid in selected]
                        results = self._dispatch(_broadcast_local_update_task,
                                                 selected, payloads,
                                                 round_index=round_index,
                                                 ordered=ordered)
            else:
                legacy = [(self._dispatch_strategy(self.clients[cid]),
                           round_index, self.clients[cid])
                          for cid in selected]
                results = self._dispatch(_local_update_task, selected, legacy,
                                         round_index=round_index,
                                         ordered=ordered)
            updates = []
            for update, state in results:
                self.clients.update_state(update.client_id, state)
                updates.append(update)
        if self.codec.name != "dense":
            self._decode_uplinks(updates, encoded_down, len(selected))
        return updates

    def _dispatch(self, fn, selected: List[int], payloads, *,
                  round_index: int, ordered: bool) -> List:
        """Fan payloads out — supervised when the config asks for it."""
        if not self.supervised:
            return self._map(fn, payloads, ordered=ordered)
        report = run_supervised(
            self.executor, fn, list(zip(selected, payloads)),
            policy=self.retry_policy, plan=self.config.faults,
            round_index=round_index)
        self._stash_fault_report(report)
        return [result for result in report.results if result is not None]

    def _stash_fault_report(self, report) -> None:
        self._last_faults = report.counters.as_extras()
        self._last_failed = sorted(report.failed)

    def take_fault_report(self) -> Tuple[Dict[str, float], List[int]]:
        """The last fan-out's fault accounting + the clients it gave up on.

        One-shot, like :meth:`take_wire_report`: the scheduler merges the
        counters into ``RoundRecord.extras`` (``fault_*`` keys, present
        only when supervision is active so default histories stay
        byte-stable) and the exhausted clients into the round's ``dropped``
        list.  Returns ``({}, [])`` when supervision is inactive.
        """
        faults, failed = self._last_faults, self._last_failed
        self._last_faults, self._last_failed = None, []
        return (faults or {}, failed)

    def _decode_uplinks(self, updates: List[ClientUpdate],
                        encoded_down: Optional[EncodedParams],
                        dispatched: int) -> None:
        """Decode the cohort's uplinks and record the round's wire bytes.

        Broadcast workers hand back :class:`EncodedParams` (the compressed
        form really crossed the pickling boundary); the serial and legacy
        paths hand back dense dictionaries that are round-tripped through
        ``decode(encode(.))`` here so every backend applies the identical
        codec numerics.  Sparse uplinks decode to lazy indexed mappings the
        aggregation kernels reduce without densifying.
        """
        upload_wire = upload_dense = 0
        stored_values = total_values = 0
        for update in updates:
            encoded = (update.params
                       if isinstance(update.params, EncodedParams)
                       else self.codec.encode(update.params))
            upload_wire += encoded.wire_nbytes
            upload_dense += encoded.dense_nbytes
            stored_values += encoded.stored_values
            total_values += encoded.total_size
            update.params = self.codec.decode(encoded)
        if encoded_down is not None:
            down_wire = encoded_down.wire_nbytes
            down_dense = encoded_down.dense_nbytes
        else:
            down_wire = down_dense = param_nbytes(self.strategy.global_params)
        self._last_wire = {
            "wire_upload_bytes": float(upload_wire),
            "wire_upload_dense_bytes": float(upload_dense),
            "wire_download_bytes": float(down_wire * dispatched),
            "wire_download_dense_bytes": float(down_dense * dispatched),
            "wire_upload_density": (float(stored_values / total_values)
                                    if total_values else 1.0),
        }

    def _map(self, fn, payloads, *, ordered: bool) -> List:
        """Dispatch payloads on the executor, ordered or completion-order."""
        if ordered:
            return self.executor.map_ordered(fn, payloads)
        return [result for _, result in
                self.executor.map_unordered(fn, payloads)]

    # ------------------------------------------------------------ evaluation
    def evaluation_client_ids(self) -> List[int]:
        """The ids swept by personalized evaluation.

        Every client by default (the paper's metric); with
        ``config.fleet.eval_clients`` set, a fixed deterministic subset
        drawn once per run from ``(seed, num_clients)`` — so histories stay
        a pure function of the config across backends — or no clients at
        all when the cap is 0 (fleet-scale smoke runs).
        """
        cap = self.config.fleet.eval_clients
        ids = self.clients.client_ids
        if cap is None or cap >= len(ids):
            return [int(cid) for cid in ids]
        if self._eval_ids is None:
            rng = np.random.default_rng(
                (self.config.seed, len(ids), _EVAL_SUBSET_SALT))
            chosen = rng.choice(len(ids), size=cap, replace=False)
            self._eval_ids = sorted(int(ids[position]) for position in chosen)
        return self._eval_ids

    def evaluate_personalized(self) -> float:
        """Average accuracy of the evaluation sweep's personalized models.

        Clients are accessed through the fleet's *observer* path: a client
        that never participated gets a transient initial state (identical
        to what participation would have initialized) and does not enter
        the sparse state store.  With the broadcast transport the server
        materializes nothing at all — payloads carry the stored state (or
        ``None`` for never-participants, initialized worker-side) and each
        worker rebuilds only the clients it evaluates.  Evaluation
        inherently touches every swept client's test shard somewhere, so
        for mid-size lazy fleets either keep ``fleet.shard_cache`` at or
        above the sweep size or cap the sweep with ``fleet.eval_clients``.
        (The opt-in legacy path, ``use_broadcast=False`` with an executor,
        builds the whole sweep's payload list up front — O(sweep) resident
        shards; it exists for byte-accounting on tiny workloads, not for
        fleet scale.)
        """
        eval_ids = self.evaluation_client_ids()
        if not eval_ids:
            return 0.0
        # lossy codecs evaluate the model a compressed downlink delivers
        # (and ship exactly those wire blocks to broadcast workers)
        encoded_down = self._snap_global_params()
        if self.executor is None:
            accuracies = []
            for cid in eval_ids:
                client = self.clients.observer(cid)
                params, pattern = self.strategy.client_evaluation(client)
                result = evaluate_params(self.model, params, client.test_data,
                                         pattern=pattern)
                accuracies.append(result["accuracy"])
        elif self._broadcast_enabled():
            session = self._session_handle()
            # a fresh broadcast (not the round's): aggregation has moved the
            # global parameters since the local-update fan-out
            with self._round_broadcast(-1, encoded=encoded_down) as broadcast:
                payloads = [(session, broadcast.handle, cid,
                             self.clients.peek_state(cid))
                            for cid in eval_ids]
                accuracies = self.executor.map_ordered(
                    _broadcast_evaluation_task, payloads)
        else:
            payloads = []
            for cid in eval_ids:
                client = self.clients.observer(cid)
                payloads.append((self._dispatch_strategy(client), client))
            accuracies = self.executor.map_ordered(_evaluation_task, payloads)
        return float(np.mean(accuracies)) if accuracies else 0.0
