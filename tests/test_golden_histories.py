"""Golden-history regression suite.

Re-runs every pinned (method, scenario, aggregation, codec) spec from
``tests/fixtures/golden/`` and compares the resulting history JSON
*bit-for-bit* against the committed fixture.  Any numeric drift — a changed
RNG stream, reordered aggregation, different float math — fails loudly.

The wire-codec layer adds two contracts on top: lossless codecs must
reproduce every dense fixture bit-for-bit (they get no fixtures of their
own — the dense files ARE their reference), and the lossy ``int8`` mode is
pinned by its own fixtures, wire-byte reports included.

Intentional changes are shipped by regenerating the fixtures
(``python tests/fixtures/regenerate_golden.py``) and reviewing the diff.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "golden_fixtures",
    Path(__file__).resolve().parent / "fixtures" / "regenerate_golden.py")
golden = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(golden)

SPECS = golden.golden_specs()

#: the dense cells double as the lossless-codec reference trajectories
DENSE_SPECS = [spec for spec in SPECS if spec[4] == "dense"]


def _strip_wire_extras(history_dict):
    for record in history_dict.get("records", []):
        extras = record.get("extras", {})
        for key in [key for key in extras if key.startswith("wire_")]:
            del extras[key]
    return history_dict


class TestFixturesAreComplete:
    def test_every_registry_strategy_is_pinned(self):
        from repro.baselines import available_strategies

        pinned = {name for name, _, scenario, aggregation, codec in SPECS
                  if scenario == "ideal" and aggregation == "sync"
                  and codec == "dense"}
        assert pinned == set(available_strategies()), (
            "registry and golden fixtures diverged; run "
            "`python tests/fixtures/regenerate_golden.py`")

    def test_no_orphan_fixture_files(self):
        expected = {golden.fixture_path(spec[0]).name for spec in SPECS}
        actual = {path.name for path in golden.FIXTURE_DIR.glob("*.json")}
        assert actual == expected, (
            "stale or missing golden fixture files; run "
            "`python tests/fixtures/regenerate_golden.py`")

    def test_lossy_fixtures_cover_every_aggregation_mode(self):
        from repro.server import available_aggregations

        lossy_modes = {aggregation
                       for _, _, _, aggregation, codec in SPECS
                       if codec == "int8"}
        assert lossy_modes == set(available_aggregations()), (
            "each aggregation mode needs one pinned lossy-codec run")


@pytest.mark.parametrize("lazy_fleet", [True, False],
                         ids=["lazy-fleet", "eager-fleet"])
@pytest.mark.parametrize("name,method,scenario,aggregation,codec",
                         SPECS, ids=[spec[0] for spec in SPECS])
def test_history_matches_golden_fixture(name, method, scenario, aggregation,
                                        codec, lazy_fleet):
    """Each fixture must reproduce on BOTH fleet materialization paths.

    The lazy virtual fleet is the default; ``fleet.lazy=False`` retains the
    eager build-everything construction.  Neither is allowed to drift a
    bit from the committed fixture (which predates the virtual fleet).
    Lossy-codec fixtures compare bit-for-bit too — including their
    per-round wire-byte reports.
    """
    path = golden.fixture_path(name)
    assert path.exists(), (
        f"missing golden fixture {path.name}; run "
        "`python tests/fixtures/regenerate_golden.py`")
    payload = json.loads(path.read_text())
    assert payload["overrides"] == dict(golden.GOLDEN_OVERRIDES), (
        "golden preset changed; regenerate the fixtures")
    assert payload.get("codec", "dense") == codec
    assert payload.get("aggregation", "sync") == aggregation
    history = golden.run_golden(method, scenario, aggregation, codec,
                                lazy_fleet=lazy_fleet)
    # round-trip through JSON so float formatting cannot mask a mismatch
    fresh = json.loads(json.dumps(history.to_dict()))
    assert fresh == payload["history"], (
        f"numeric drift in {method!r} ({scenario}, {aggregation}, {codec}, "
        "lazy={lazy_fleet}); if intentional, run "
        "`python tests/fixtures/regenerate_golden.py` and commit the diff")


@pytest.mark.parametrize("lazy_fleet", [True, False],
                         ids=["lazy-fleet", "eager-fleet"])
@pytest.mark.parametrize("name,method,scenario,aggregation,codec",
                         DENSE_SPECS, ids=[spec[0] for spec in DENSE_SPECS])
def test_sparse_codec_reproduces_dense_fixtures(name, method, scenario,
                                                aggregation, codec,
                                                lazy_fleet):
    """The lossless wire codec leaves every pinned trajectory untouched.

    Re-running each dense spec under ``codec="sparse"`` must reproduce the
    committed fixture bit-for-bit once the wire-byte report (the one
    legitimate addition) is stripped — and that report must show the
    encoded upload never exceeding the dense baseline.
    """
    payload = json.loads(golden.fixture_path(name).read_text())
    history = golden.run_golden(method, scenario, aggregation, "sparse",
                                lazy_fleet=lazy_fleet)
    raw = history.to_dict()
    uploads = [(record["extras"]["wire_upload_bytes"],
                record["extras"]["wire_upload_dense_bytes"])
               for record in raw["records"]]
    assert uploads, "sparse-codec rounds must record a wire report"
    assert all(wire <= dense for wire, dense in uploads)
    fresh = json.loads(json.dumps(_strip_wire_extras(raw)))
    assert fresh == payload["history"], (
        f"the sparse codec drifted {method!r} ({scenario}) off the dense "
        "fixture — lossless codecs may not change a single bit")
