"""Vectorized cohort-local training: the client axis as a tensor dimension.

``train_cohort_batched`` is the batched twin of
:func:`repro.federated.local.train_locally`: it stacks a cohort's
same-architecture clients along a leading client axis and runs ONE batched
forward/backward/SGD-step program per mini-batch step.  Per-client masks and
unit-gate patterns apply as multiplicative gates broadcast along the client
axis; per-client prox terms and metrics reduce per slice.

Ragged cohorts — clients whose shard is smaller than the batch size — pad
to the widest per-client batch with zero rows and per-client row counts;
the padded rows are provable no-ops (the loss gradient zeroes them before
backward, and count-aware reductions in :mod:`repro.nn.batched` keep every
summation tree identical to the sequential loop).

Each client's mini-batch index sequence replicates
:func:`repro.federated.local.iterate_batches` exactly (same RNG consumption,
same reshuffle-on-exhaustion), so a batched run consumes per-client RNG
streams identically to the per-client loop and the resulting
:class:`~repro.federated.local.LocalUpdateResult` list is bit-for-bit equal
to running ``train_locally`` once per client.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..data.dataset import Dataset
from ..nn.batched import BatchedModel, batchable_model, stack_param_dicts
from ..nn.losses import accuracy_cohort, softmax_cross_entropy_cohort
from ..nn.model import Sequential
from ..nn.optim import BatchedSGD
from ..nn.params import ParamDict, copy_params, multiply
from ..sparsity.masks import gates_from_pattern
from .local import LocalUpdateResult

__all__ = ["client_batch_schedule", "train_cohort_batched"]


def client_batch_schedule(n_examples: int, batch_size: int, iterations: int, *,
                          rng: np.random.Generator) -> List[np.ndarray]:
    """Precompute the index batches ``iterate_batches`` would draw.

    Consumes ``rng`` exactly as :func:`repro.federated.local.iterate_batches`
    does (one permutation up front, reshuffle when fewer than ``batch_size``
    indices remain), so a batched run and a sequential run advance a
    client's RNG stream identically.  Every batch has the same length
    ``min(batch_size, n_examples)``.
    """
    batches: List[np.ndarray] = []
    if iterations <= 0:
        return batches
    indices = rng.permutation(n_examples)
    cursor = 0
    for _ in range(iterations):
        if cursor + batch_size > len(indices):
            indices = rng.permutation(n_examples)
            cursor = 0
        batches.append(indices[cursor:cursor + batch_size])
        cursor += batch_size
    return batches


def train_cohort_batched(
        model: Sequential,
        start_params: Sequence[Mapping[str, np.ndarray]],
        datasets: Sequence[Dataset], *,
        iterations: int, batch_size: int, learning_rate,
        momentum: float = 0.0, clip_norm: Optional[float] = None,
        prox_mu: float = 0.0,
        prox_center: Optional[Mapping[str, np.ndarray]] = None,
        param_masks: Optional[Sequence[Mapping[str, np.ndarray]]] = None,
        patterns: Optional[Sequence[Mapping[str, np.ndarray]]] = None,
        trainable_keys: Optional[Sequence[str]] = None,
        rngs: Optional[Sequence[np.random.Generator]] = None,
) -> List[LocalUpdateResult]:
    """Run local SGD for a whole cohort as one batched tensor program.

    Semantically equivalent to calling ``train_locally(model,
    start_params[i], datasets[i], ...)`` for each client in order — and
    bit-for-bit equal on every returned parameter and metric.  ``model`` is
    the architecture template; its own parameters are left untouched.

    ``learning_rate`` may be a scalar or a per-client ``(C,)`` vector;
    ``prox_center`` is the shared proximal reference (defaults to each
    client's own ``start_params`` when ``prox_mu > 0``, matching
    ``train_locally``).
    """
    cohort = len(datasets)
    if cohort == 0:
        return []
    if len(start_params) != cohort:
        raise ValueError("start_params and datasets must have equal length")
    for name, value in (("param_masks", param_masks), ("patterns", patterns),
                        ("rngs", rngs)):
        if value is not None and len(value) != cohort:
            raise ValueError(f"{name} must have one entry per client")
    if rngs is None:
        rngs = [np.random.default_rng(0) for _ in range(cohort)]

    batched = BatchedModel(model, cohort)
    masked_starts: List[ParamDict] = []
    for index in range(cohort):
        params = copy_params(start_params[index])
        if param_masks is not None:
            params = multiply(params, param_masks[index])
        masked_starts.append(params)
    batched.set_parameters(stack_param_dicts(masked_starts))

    stacked_masks: Optional[ParamDict] = None
    if param_masks is not None:
        stacked_masks = stack_param_dicts(param_masks)
    if patterns is not None:
        gate_dicts = [gates_from_pattern(pattern) for pattern in patterns]
        batched.set_unit_gates(
            {name: np.stack([gates[name] for gates in gate_dicts])
             for name in gate_dicts[0]})

    centers: Optional[ParamDict] = None
    if prox_mu > 0.0:
        if prox_center is not None:
            # shared center: a (1, ...) view broadcasts along the client axis
            centers = {key: np.asarray(value, dtype=np.float64)[None]
                       for key, value in prox_center.items()}
        else:
            centers = stack_param_dicts([copy_params(p) for p in start_params])

    schedules = [client_batch_schedule(len(datasets[index]), batch_size,
                                       iterations, rng=rngs[index])
                 for index in range(cohort)]
    counts = np.array([len(schedule[0]) if schedule else 0
                       for schedule in schedules], dtype=np.int64)
    steps = len(schedules[0]) if schedules else 0
    width = int(counts.max()) if steps else 0
    if np.any(counts != width):
        batched.set_batch_counts(counts)

    optimizer = BatchedSGD(learning_rate, momentum=momentum,
                           clip_norm=clip_norm)
    losses: List[List[float]] = [[] for _ in range(cohort)]
    accuracies: List[List[float]] = [[] for _ in range(cohort)]
    examples = [0] * cohort

    frozen_zeros: Optional[Dict[str, np.ndarray]] = None
    allowed: Optional[set] = None
    if trainable_keys is not None:
        allowed = set(trainable_keys)
        frozen_zeros = {key: np.zeros_like(value)
                        for key, value in batched.get_parameters().items()
                        if key not in allowed}

    x_pad = None
    y_pad = None
    if steps:
        sample_shape = datasets[0].x.shape[1:]
        x_pad = np.zeros((cohort, width) + tuple(sample_shape),
                         dtype=np.float64)
        y_pad = np.zeros((cohort, width), dtype=np.int64)

    for step in range(steps):
        for index in range(cohort):
            batch = schedules[index][step]
            x_pad[index, :counts[index]] = datasets[index].x[batch]
            y_pad[index, :counts[index]] = datasets[index].y[batch]
        batched.zero_grad()
        logits = batched.forward(x_pad, train=True)
        step_losses, grad = softmax_cross_entropy_cohort(logits, y_pad, counts)
        step_accuracies = accuracy_cohort(logits, y_pad, counts)
        batched.backward(grad)
        grads = batched.get_gradients()
        current = batched.get_parameters()
        prox_totals: Optional[List[float]] = None
        if prox_mu > 0.0 and centers is not None:
            # mirror train_locally: grads += (2 * mu) * (w - center) computed
            # as diff -> in-place scale -> in-place add, and the loss term
            # accumulates per-key np.sum values with Python-float semantics
            per_key_sums: List[np.ndarray] = []
            for key in grads:
                diff = current[key] - centers[key]
                squared = (current[key] - centers[key]) ** 2
                per_key_sums.append(
                    np.array([np.sum(squared.reshape(cohort, -1)[i])
                              for i in range(cohort)]))
                diff *= 2.0 * prox_mu
                grads[key] += diff
            prox_totals = [
                prox_mu * float(sum(sums[i] for sums in per_key_sums))
                for i in range(cohort)]
        if stacked_masks is not None:
            grads = {key: grads[key] * stacked_masks[key] for key in grads}
        if allowed is not None:
            grads = {key: (value if key in allowed else frozen_zeros[key])
                     for key, value in grads.items()}
        for index in range(cohort):
            loss = float(step_losses[index])
            if prox_totals is not None:
                loss += prox_totals[index]
            losses[index].append(loss)
            accuracies[index].append(float(step_accuracies[index]))
            examples[index] += int(counts[index])
        optimizer.step(batched.live_parameters(), grads)

    batched.set_unit_gates(None)
    final_stacked = batched.get_parameters()
    results: List[LocalUpdateResult] = []
    for index in range(cohort):
        final = {key: np.array(value[index], copy=True)
                 for key, value in final_stacked.items()}
        if param_masks is not None:
            final = multiply(final, param_masks[index])
        results.append(LocalUpdateResult(
            params=final,
            train_accuracy=(float(np.mean(accuracies[index]))
                            if accuracies[index] else 0.0),
            train_loss=(float(np.mean(losses[index]))
                        if losses[index] else 0.0),
            examples_seen=examples[index],
        ))
    return results
