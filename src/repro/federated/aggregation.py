"""Server-side aggregation rules."""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..nn.params import (ParamDict, copy_params, indexed_subtract_scaled,
                         indexed_weighted_accumulate, weighted_average,
                         zeros_like, _check_same_keys)


def _slices_of(update: Mapping[str, np.ndarray], key: str):
    """The indexed-slice form of one entry, or None when dense.

    Codec-decoded updates (``repro.parallel.codec.DecodedParams``) expose
    sparse entries through ``.slices(key)``; plain dictionaries (and the
    dense entries of a decoded update) answer None and take the dense path.
    """
    getter = getattr(update, "slices", None)
    if getter is None:
        return None
    return getter(key)


def _any_indexed(updates: Sequence[Mapping[str, np.ndarray]]) -> bool:
    return any(hasattr(update, "slices") for update in updates)


def fedavg(updates: Sequence[Mapping[str, np.ndarray]],
           weights: Sequence[float]) -> ParamDict:
    """Classic FedAvg: data-size-weighted average of local parameters."""
    return weighted_average(updates, weights)


def aggregate_residuals(global_params: Mapping[str, np.ndarray],
                        residuals: Sequence[Mapping[str, np.ndarray]],
                        weights: Sequence[float]) -> ParamDict:
    """FedLPS aggregation (Eq. 13).

    Every client uploads the masked residual ``r_k = (w_global - w_k) * m_k``;
    the server averages ``w_global - r_k`` weighted by the local data sizes.
    Because each client's mask is different, the averaged update is relatively
    dense even though every individual upload is sparse.

    Residuals may arrive dense (plain dictionaries) or in codec-decoded
    indexed-slice form; indexed residuals are reduced *without densifying*
    (allocations stay O(keys), independent of the cohort size) and the
    result is bit-identical to the dense reduction — see
    :func:`repro.nn.params.indexed_subtract_scaled` for the proof.
    """
    from ..parallel.sharding import active_plan
    plan = active_plan()
    if plan is not None:
        from ..parallel.sharding import sharded_aggregate_residuals
        return sharded_aggregate_residuals(plan, global_params, residuals,
                                           weights)
    if len(residuals) != len(weights):
        raise ValueError("residuals and weights must have the same length")
    if not residuals:
        return copy_params(global_params)
    if not _any_indexed(residuals):
        # stream the reconstructions: weighted_average consumes the generator
        # one dictionary at a time, so only a single reconstructed snapshot
        # is alive instead of one per client
        reconstructed = ({key: global_params[key] - residual[key]
                          for key in global_params} for residual in residuals)
        return weighted_average(reconstructed, weights)
    weight_list = [float(w) for w in weights]
    total = sum(weight_list)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    result = zeros_like(global_params)
    # C-contiguous scratch regardless of the source layout: the indexed
    # kernel writes through a flat view of it
    scratch = {key: np.empty(value.shape, dtype=value.dtype)
               for key, value in result.items()}
    for residual, weight in zip(residuals, weight_list):
        _check_same_keys(result, residual)
        factor = weight / total
        for key, accumulator in result.items():
            global_array = global_params[key]
            slices = _slices_of(residual, key)
            if slices is None:
                np.subtract(global_array, residual[key], out=scratch[key])
                np.multiply(scratch[key], factor, out=scratch[key])
            else:
                indexed_subtract_scaled(
                    global_array, factor, slices.value_indices,
                    slices.values, slices.negzero_indices, out=scratch[key])
            accumulator += scratch[key]
    return result


def masked_average(global_params: Mapping[str, np.ndarray],
                   updates: Sequence[Mapping[str, np.ndarray]],
                   masks: Sequence[Mapping[str, np.ndarray]],
                   weights: Optional[Sequence[float]] = None) -> ParamDict:
    """Coverage-aware averaging used by HeteroFL-style heterogeneous models.

    Each parameter entry is averaged only over the clients whose mask carries
    that entry; entries carried by nobody keep their previous global value.
    """
    from ..parallel.sharding import active_plan
    plan = active_plan()
    if plan is not None:
        from ..parallel.sharding import sharded_masked_average
        return sharded_masked_average(plan, global_params, updates, masks,
                                      weights)
    if len(updates) != len(masks):
        raise ValueError("updates and masks must have the same length")
    if not updates:
        return copy_params(global_params)
    if weights is None:
        weights = [1.0] * len(updates)
    if len(weights) != len(updates):
        raise ValueError("weights must match updates in length")
    numerator = zeros_like(global_params)
    denominator = zeros_like(global_params)
    scratch = {key: np.empty(value.shape, dtype=value.dtype)
               for key, value in numerator.items()}
    for update, mask, weight in zip(updates, masks, weights):
        for key in numerator:
            # one reusable scratch array instead of two fresh temporaries per
            # entry; the grouping (weight * mask) * update matches the old
            # ``weight * mask[key] * update[key]`` bit-for-bit
            weighted_mask = np.multiply(mask[key], weight, out=scratch[key])
            denominator[key] += weighted_mask
            slices = _slices_of(update, key)
            if slices is None:
                weighted_mask *= update[key]
                numerator[key] += weighted_mask
            else:
                # indexed update: only the explicit values contribute to the
                # numerator; the skipped ``+-0.0`` positions are bitwise
                # no-ops (proof in ``indexed_weighted_accumulate``), and the
                # denominator accumulation above is untouched — masks stay
                # dense server-side
                indexed_weighted_accumulate(
                    numerator[key], weighted_mask,
                    slices.value_indices, slices.values)
    result: ParamDict = {}
    for key in numerator:
        covered = denominator[key] > 0
        merged = np.array(global_params[key], copy=True)
        merged[covered] = numerator[key][covered] / denominator[key][covered]
        result[key] = merged
    return result


def staleness_weighted_average(
        entries: Iterable[Tuple[Mapping[str, np.ndarray], float, int]],
        *, decay: float = 0.5) -> ParamDict:
    """REFL-style aggregation that discounts stale updates.

    ``entries`` yields ``(params, weight, staleness)`` triples; an update that
    is ``staleness`` rounds old is discounted by ``decay ** staleness``.
    """
    params_list: List[Mapping[str, np.ndarray]] = []
    weight_list: List[float] = []
    for params, weight, staleness in entries:
        if staleness < 0:
            raise ValueError("staleness must be non-negative")
        params_list.append(params)
        weight_list.append(weight * (decay ** staleness))
    if not params_list:
        raise ValueError("cannot aggregate zero updates")
    return weighted_average(params_list, weight_list)
