"""Sparse-pattern strategies.

The paper contrasts its learnable importance-derived pattern with the
heuristic families used by prior work: random dropout (Federated Dropout),
ordered dropout (FjORD / HeteroFL), rolling windows (FedRolex),
magnitude-based pruning (FedMP / Hermes / LotteryFL) and depth scaling
(DepthFL).  All of them are implemented here against the same unit-layout
abstraction so the ablation benches (Figure 9a) can compare them directly.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from ..nn.model import Sequential
from .masks import UnitPattern, pattern_from_scores, units_to_keep, validate_sparse_ratio


def random_pattern(model: Sequential, ratio: float, *,
                   rng: Optional[np.random.Generator] = None) -> UnitPattern:
    """Keep a uniformly random subset of units in every layer."""
    validate_sparse_ratio(ratio)
    rng = rng or np.random.default_rng(0)
    pattern: UnitPattern = {}
    for group in model.unit_groups:
        keep = units_to_keep(group.n_units, ratio)
        kept = rng.choice(group.n_units, size=keep, replace=False)
        mask = np.zeros(group.n_units, dtype=bool)
        mask[kept] = True
        pattern[group.layer_name] = mask
    return pattern


def ordered_pattern(model: Sequential, ratio: float) -> UnitPattern:
    """Ordered dropout: keep the first ``ceil(s * n)`` units of every layer.

    This is the sub-model extraction rule of FjORD and HeteroFL, where nested
    sub-models always share their leading units.
    """
    validate_sparse_ratio(ratio)
    pattern: UnitPattern = {}
    for group in model.unit_groups:
        keep = units_to_keep(group.n_units, ratio)
        mask = np.zeros(group.n_units, dtype=bool)
        mask[:keep] = True
        pattern[group.layer_name] = mask
    return pattern


def rolling_pattern(model: Sequential, ratio: float, round_index: int) -> UnitPattern:
    """FedRolex-style rolling window: the kept block advances every round."""
    validate_sparse_ratio(ratio)
    if round_index < 0:
        raise ValueError("round_index must be non-negative")
    pattern: UnitPattern = {}
    for group in model.unit_groups:
        keep = units_to_keep(group.n_units, ratio)
        start = round_index % group.n_units
        indices = (start + np.arange(keep)) % group.n_units
        mask = np.zeros(group.n_units, dtype=bool)
        mask[indices] = True
        pattern[group.layer_name] = mask
    return pattern


def magnitude_pattern(model: Sequential, ratio: float) -> UnitPattern:
    """Keep the units with the largest aggregate weight magnitude."""
    validate_sparse_ratio(ratio)
    magnitudes = model.unit_weight_magnitudes()
    return pattern_from_scores(model, magnitudes, ratio)


def importance_pattern(model: Sequential, importance: Mapping[str, np.ndarray],
                       ratio: float) -> UnitPattern:
    """Keep the units with the largest learned importance scores (Eq. 4)."""
    return pattern_from_scores(model, importance, ratio)


def depth_pattern(model: Sequential, ratio: float) -> UnitPattern:
    """DepthFL-style depth scaling: drop whole deepest sparsifiable layers.

    The shallowest layers are always fully retained; enough of the deepest
    sparsifiable layers are pruned (all units masked except one, to keep the
    network connected) so that the overall kept-unit fraction approaches the
    requested ratio.
    """
    validate_sparse_ratio(ratio)
    groups = model.unit_groups
    total_units = sum(group.n_units for group in groups)
    pattern: UnitPattern = {group.layer_name: np.ones(group.n_units, dtype=bool)
                            for group in groups}
    if ratio >= 1.0 or not groups:
        return pattern
    target_kept = max(1, int(round(ratio * total_units)))
    kept = total_units
    for group in reversed(groups):
        if kept <= target_kept:
            break
        removable = group.n_units - 1
        if kept - removable < target_kept:
            # partially prune this layer (keep leading units) and stop
            to_remove = kept - target_kept
            mask = np.ones(group.n_units, dtype=bool)
            mask[group.n_units - to_remove:] = False
            mask[0] = True
            pattern[group.layer_name] = mask
            kept -= int(np.count_nonzero(~mask))
            break
        mask = np.zeros(group.n_units, dtype=bool)
        mask[0] = True
        pattern[group.layer_name] = mask
        kept -= removable
    return pattern


PATTERN_STRATEGIES = {
    "random": random_pattern,
    "ordered": ordered_pattern,
    "magnitude": magnitude_pattern,
    "depth": depth_pattern,
}


def heuristic_pattern(name: str, model: Sequential, ratio: float, *,
                      round_index: int = 0,
                      rng: Optional[np.random.Generator] = None) -> UnitPattern:
    """Dispatch helper over the heuristic pattern strategies by name."""
    name = name.lower()
    if name == "random":
        return random_pattern(model, ratio, rng=rng)
    if name == "ordered":
        return ordered_pattern(model, ratio)
    if name == "rolling":
        return rolling_pattern(model, ratio, round_index)
    if name == "magnitude":
        return magnitude_pattern(model, ratio)
    if name == "depth":
        return depth_pattern(model, ratio)
    raise ValueError(f"unknown pattern strategy {name!r}")
