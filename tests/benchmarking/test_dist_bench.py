"""The distributed benchmark harness (BENCH_dist.json)."""

from __future__ import annotations

import json

from repro.benchmarking import (format_dist_report, measure_shard_balance,
                                run_dist_bench)
from repro.benchmarking.dist import GATE_BALANCE_TOLERANCE, SHARD_COUNTS
from repro.cli import main


class TestShardBalance:
    def test_even_manifest_splits_near_fairly(self):
        balance = measure_shard_balance(SHARD_COUNTS)
        for count in SHARD_COUNTS:
            cell = balance["cells"][str(count)]
            assert len(cell["per_shard_bytes"]) == count
            assert sum(cell["per_shard_bytes"]) == cell["total_bytes"]
            assert cell["within_tolerance"], cell
            assert cell["max_shard_fraction"] <= \
                (1.0 / count) * (1.0 + GATE_BALANCE_TOLERANCE)

    def test_single_shard_owns_all_bytes(self):
        cell = measure_shard_balance([1])["cells"]["1"]
        assert cell["max_shard_fraction"] == 1.0
        assert cell["within_tolerance"]


class TestDistBench:
    def test_report_schema_and_gate(self, tmp_path):
        output = tmp_path / "BENCH_dist.json"
        report = run_dist_bench(scale=0.5, output=str(output))
        assert report["gate"]["pass"], report["gate"]
        assert report["gate"]["bit_identical"]
        assert report["gate"]["shard_bytes_scale"]
        assert set(report["cells"]) == {str(c) for c in SHARD_COUNTS}
        for count, cell in report["cells"].items():
            assert cell["matches_serial_reference"], count
            assert cell["transport_sent_bytes"] > 0
            assert cell["transport_received_bytes"] > 0
            if int(count) > 1:
                assert len(cell["per_shard_bytes"]) == int(count)
                assert sum(cell["per_shard_bytes"]) == cell["reduce_bytes"]
            else:
                # one shard never activates the sharded path
                assert cell["per_shard_bytes"] is None
                assert cell["reduce_bytes"] == 0
        persisted = json.loads(output.read_text())
        assert persisted["gate"]["pass"] is True
        assert "PASS" in format_dist_report(report)

    def test_cli_dist_scale_axis(self, tmp_path, capsys):
        output = tmp_path / "BENCH_dist.json"
        code = main(["bench", "--dist-scale", "0.5",
                     "--dist-output", str(output), "--check"])
        assert code == 0
        assert output.exists()
        out = capsys.readouterr().out
        assert "backend socket" in out and "gate:" in out

    def test_cli_rejects_mixed_axes_and_fanout_flags(self, capsys):
        assert main(["bench", "--dist-scale", "0.5",
                     "--codec-scale", "0.5"]) == 2
        assert "separate axes" in capsys.readouterr().out
        assert main(["bench", "--dist-scale", "0.5",
                     "--repeats", "1"]) == 2
        assert "--repeats" in capsys.readouterr().out
