"""Key-sharded parameter-server aggregation.

ps-lite-style reducers partition the parameter manifest *by key*: shard
``s`` owns every key with ``shard_of_key(key, N) == s`` and reduces only
its slice of every update, so per-shard aggregation bandwidth shrinks
~1/N with the shard count.  The assignment is a pure function of the key
name and the shard count (a blake2b digest, no process state), so every
participant — server, reducers, benchmarks, tests — computes the same
partition without coordination.

Determinism contract: sharding must not change a single output bit.
That holds because every aggregation kernel in this codebase
(:func:`repro.nn.params.weighted_average`,
:func:`repro.federated.aggregation.aggregate_residuals`,
:func:`repro.federated.aggregation.masked_average`) accumulates each key
independently, in input (client) order.  Restricting a kernel to a key
subset therefore performs the *identical* float operations on those keys
in the identical order; running it once per shard and reassembling the
pieces in the original key order reproduces the unsharded result — and
the unsharded dict insertion order — bit-for-bit.  The sharded wrappers
below do exactly that: they re-invoke the unmodified base kernels on
per-shard key views of the same inputs (full client list, full weights)
and concatenate.

Activation is a dynamically-scoped plan rather than a parameter thread:
strategies call the kernels from a dozen call sites, and none of them
need to know about sharding.  :func:`shard_plan` installs a thread-local
:class:`ShardPlan`; the kernels check :func:`active_plan` at entry and
dispatch here when one is installed (``ServerCore.reduce_context`` is the
production entry point).  The wrappers suspend the plan while running the
base kernels per shard, so dispatch cannot recurse.

Byte accounting (what the ``--dist-scale`` bench gates) is charged on the
plan: each shard is charged its partial-result bytes times the number of
contributing updates — the bytes that shard's reducer actually streams
through its accumulators — and :func:`shard_stats` exposes the totals
with the same module-counter idiom as ``broadcast_stats``.
"""

from __future__ import annotations

import hashlib
import threading
from contextlib import contextmanager
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

__all__ = [
    "shard_of_key", "partition_keys", "ShardPlan", "shard_plan",
    "active_plan", "shard_stats", "reset_shard_stats", "shard_view",
    "sharded_weighted_average", "sharded_aggregate_residuals",
    "sharded_masked_average",
]


def shard_of_key(key: str, shards: int) -> int:
    """The reducer shard owning ``key`` — pure in ``(key, shards)``.

    blake2b rather than the builtin ``hash`` because the builtin is salted
    per process (PYTHONHASHSEED), and the whole point is that the server
    and every remote reducer agree on the partition without talking.
    """
    if shards < 1:
        raise ValueError("shard count must be positive")
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % shards


def partition_keys(keys: Iterable[str], shards: int) -> List[List[str]]:
    """Group ``keys`` by owning shard, preserving input order per shard."""
    groups: List[List[str]] = [[] for _ in range(shards)]
    for key in keys:
        groups[shard_of_key(key, shards)].append(key)
    return groups


class ShardPlan:
    """One activation of sharded reduction: shard count + byte ledger."""

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ValueError("shard count must be positive")
        self.shards = shards
        self.per_shard_bytes = [0] * shards
        self.reductions = 0

    def charge(self, shard: int, nbytes: int) -> None:
        self.per_shard_bytes[shard] += int(nbytes)


class _ActivePlan(threading.local):
    plan: Optional[ShardPlan] = None


_active = _ActivePlan()

_stats_lock = threading.Lock()
_STATS: Dict[str, object] = {
    "reductions": 0,
    "reduce_bytes": 0,
    "per_shard_bytes": {},  # shard count -> accumulated per-shard list
}


def active_plan() -> Optional[ShardPlan]:
    """The shard plan installed on this thread, if any."""
    return _active.plan


@contextmanager
def shard_plan(shards: int):
    """Install a :class:`ShardPlan` for the dynamic extent of the block.

    On exit the previous plan (usually None) is restored and the plan's
    ledger is folded into the module counters read by
    :func:`shard_stats`.
    """
    plan = ShardPlan(shards)
    previous = _active.plan
    _active.plan = plan
    try:
        yield plan
    finally:
        _active.plan = previous
        with _stats_lock:
            _STATS["reductions"] += plan.reductions
            _STATS["reduce_bytes"] += sum(plan.per_shard_bytes)
            accumulated = _STATS["per_shard_bytes"].setdefault(
                shards, [0] * shards)
            for shard, nbytes in enumerate(plan.per_shard_bytes):
                accumulated[shard] += nbytes


@contextmanager
def _suspended():
    """Clear the active plan so base-kernel calls do not re-dispatch here."""
    previous = _active.plan
    _active.plan = None
    try:
        yield
    finally:
        _active.plan = previous


def shard_stats() -> Dict[str, object]:
    """Cumulative sharded-reduction counters (``broadcast_stats`` idiom)."""
    with _stats_lock:
        return {
            "reductions": _STATS["reductions"],
            "reduce_bytes": _STATS["reduce_bytes"],
            "per_shard_bytes": {count: list(values) for count, values
                                in _STATS["per_shard_bytes"].items()},
        }


def reset_shard_stats() -> None:
    with _stats_lock:
        _STATS["reductions"] = 0
        _STATS["reduce_bytes"] = 0
        _STATS["per_shard_bytes"] = {}


class _ShardView(Mapping):
    """Read-only view of a parameter mapping restricted to one shard's keys.

    Iteration order is the shard's key order (original order, filtered),
    so the base kernels build their per-shard accumulators in a stable
    order and the wrappers can reassemble deterministically.
    """

    __slots__ = ("_base", "_keys", "_key_set")

    def __init__(self, base: Mapping[str, np.ndarray],
                 keys: Sequence[str]) -> None:
        self._base = base
        self._keys = keys
        self._key_set = frozenset(keys)

    def __getitem__(self, key: str) -> np.ndarray:
        if key not in self._key_set:
            raise KeyError(key)
        return self._base[key]

    def __iter__(self):
        return iter(self._keys)

    def __len__(self) -> int:
        return len(self._keys)


class _IndexedShardView(_ShardView):
    """Shard view over a codec-decoded update: forwards ``slices``.

    The aggregation kernels detect indexed-slice updates by the presence
    of a ``slices`` attribute (``_any_indexed``/``_slices_of``), so the
    view must carry it exactly when the underlying update does.
    """

    __slots__ = ()

    def slices(self, key: str):
        return self._base.slices(key)


def shard_view(base: Mapping[str, np.ndarray],
               keys: Sequence[str]) -> Mapping[str, np.ndarray]:
    if hasattr(base, "slices"):
        return _IndexedShardView(base, keys)
    return _ShardView(base, keys)


def _result_nbytes(params: Mapping[str, np.ndarray]) -> int:
    return int(sum(value.nbytes for value in params.values()))


def _covers(mapping: Mapping[str, np.ndarray],
            keys: Iterable[str]) -> bool:
    try:
        return all(key in mapping for key in keys)
    except TypeError:
        return False


def sharded_weighted_average(plan: ShardPlan,
                             param_dicts: Iterable[Mapping[str, np.ndarray]],
                             weights: Iterable[float]):
    """Key-sharded :func:`repro.nn.params.weighted_average`.

    Materializes the (possibly generator) inputs once, then runs the base
    kernel per shard on key-restricted views with the full weight list.
    Anything irregular — empty input, length mismatch, non-positive
    weights, mismatched key sets — is delegated wholesale to the base
    kernel so error behavior is byte-for-byte unchanged.
    """
    from ..nn.params import weighted_average

    dicts = list(param_dicts)
    weight_list = [float(w) for w in weights]
    with _suspended():
        if (not dicts or len(dicts) != len(weight_list)
                or sum(weight_list) <= 0):
            return weighted_average(dicts, weight_list)
        keys = list(dicts[0])
        key_set = set(keys)
        if any(set(other) != key_set for other in dicts[1:]):
            return weighted_average(dicts, weight_list)
        plan.reductions += 1
        merged: Dict[str, np.ndarray] = {}
        for shard, shard_keys in enumerate(partition_keys(keys, plan.shards)):
            if not shard_keys:
                continue
            views = [shard_view(params, shard_keys) for params in dicts]
            reduced = weighted_average(views, weight_list)
            plan.charge(shard, _result_nbytes(reduced) * len(dicts))
            merged.update(reduced)
        return {key: merged[key] for key in keys}


def sharded_aggregate_residuals(plan: ShardPlan,
                                global_params: Mapping[str, np.ndarray],
                                residuals: Sequence[Mapping[str, np.ndarray]],
                                weights: Sequence[float]):
    """Key-sharded :func:`repro.federated.aggregation.aggregate_residuals`."""
    from ..federated.aggregation import aggregate_residuals

    residual_list = list(residuals)
    weight_list = [float(w) for w in weights]
    with _suspended():
        keys = list(global_params)
        if (not residual_list or len(residual_list) != len(weight_list)
                or sum(weight_list) <= 0
                or any(not _covers(residual, keys) or len(residual) != len(keys)
                       for residual in residual_list)):
            return aggregate_residuals(global_params, residual_list,
                                       weight_list)
        plan.reductions += 1
        merged: Dict[str, np.ndarray] = {}
        for shard, shard_keys in enumerate(partition_keys(keys, plan.shards)):
            if not shard_keys:
                continue
            global_view = shard_view(global_params, shard_keys)
            views = [shard_view(residual, shard_keys)
                     for residual in residual_list]
            reduced = aggregate_residuals(global_view, views, weight_list)
            plan.charge(shard, _result_nbytes(reduced) * len(residual_list))
            merged.update(reduced)
        return {key: merged[key] for key in keys}


def sharded_masked_average(plan: ShardPlan,
                           global_params: Mapping[str, np.ndarray],
                           updates: Sequence[Mapping[str, np.ndarray]],
                           masks: Sequence[Mapping[str, np.ndarray]],
                           weights: Optional[Sequence[float]] = None):
    """Key-sharded :func:`repro.federated.aggregation.masked_average`."""
    from ..federated.aggregation import masked_average

    update_list = list(updates)
    mask_list = list(masks)
    with _suspended():
        keys = list(global_params)
        if (not update_list or len(update_list) != len(mask_list)
                or (weights is not None
                    and len(weights) != len(update_list))
                or any(not _covers(update, keys) for update in update_list)
                or any(not _covers(mask, keys) for mask in mask_list)):
            return masked_average(global_params, update_list, mask_list,
                                  weights)
        plan.reductions += 1
        merged: Dict[str, np.ndarray] = {}
        for shard, shard_keys in enumerate(partition_keys(keys, plan.shards)):
            if not shard_keys:
                continue
            global_view = shard_view(global_params, shard_keys)
            update_views = [shard_view(update, shard_keys)
                            for update in update_list]
            mask_views = [shard_view(mask, shard_keys) for mask in mask_list]
            reduced = masked_average(global_view, update_views, mask_views,
                                     weights)
            plan.charge(shard, _result_nbytes(reduced) * len(update_list))
            merged.update(reduced)
        return {key: merged[key] for key in keys}
