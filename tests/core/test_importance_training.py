"""Tests for the importance indicator, FedLPS losses and learnable sparse training."""

import numpy as np
import pytest

from repro.core import (FedLPS, ImportanceIndicator, accuracy_utility,
                        add_gradients, combine_unit_gradients,
                        initialize_importance, learnable_sparse_training,
                        proximal_gradient, proximal_loss, utility_gain)
from repro.core.importance import smoothed_unit_magnitudes
from repro.data import Dataset
from repro.models import build_mlp
from repro.nn.params import l2_norm
from repro.sparsity import pattern_keep_ratio, units_to_keep


def toy_dataset(n=60, dim=12, classes=4, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, dim))
    w = rng.standard_normal((dim, classes))
    return Dataset(x, np.argmax(x @ w, axis=1))


class TestImportanceIndicator:
    def test_initialize_shapes(self, small_mlp):
        importance = initialize_importance(small_mlp, seed=0)
        assert importance.total_units == small_mlp.total_units
        for group in small_mlp.unit_groups:
            assert importance.scores[group.layer_name].shape == (group.n_units,)

    def test_smoothed_magnitudes_in_unit_interval(self, small_mlp):
        targets = smoothed_unit_magnitudes(small_mlp)
        for values in targets.values():
            assert np.all(values > 0.0) and np.all(values < 1.0)

    def test_copy_is_independent(self, small_mlp):
        importance = initialize_importance(small_mlp, seed=0)
        clone = importance.copy()
        clone.scores["fc1"][0] = 99.0
        assert importance.scores["fc1"][0] != 99.0

    def test_pattern_respects_ratio(self, small_mlp):
        importance = initialize_importance(small_mlp, seed=0)
        pattern = importance.pattern(small_mlp, 0.5)
        for group in small_mlp.unit_groups:
            assert pattern[group.layer_name].sum() == units_to_keep(group.n_units, 0.5)

    def test_apply_gradient_moves_scores(self, small_mlp):
        importance = initialize_importance(small_mlp, seed=0)
        before = importance.scores["fc1"].copy()
        grads = {name: np.ones_like(values)
                 for name, values in importance.scores.items()}
        importance.apply_gradient(grads, 0.1)
        np.testing.assert_allclose(importance.scores["fc1"], before - 0.1)

    def test_apply_gradient_validates(self, small_mlp):
        importance = initialize_importance(small_mlp, seed=0)
        with pytest.raises(ValueError):
            importance.apply_gradient({}, 0.0)
        with pytest.raises(ValueError):
            importance.apply_gradient({"fc1": np.zeros(3)}, 0.1)

    def test_regularization_pulls_towards_targets(self, small_mlp):
        importance = initialize_importance(small_mlp, seed=0)
        targets = smoothed_unit_magnitudes(small_mlp)
        importance.scores = {name: values + 1.0 for name, values in targets.items()}
        grads = importance.regularization_gradient(small_mlp, 0.5)
        for values in grads.values():
            np.testing.assert_allclose(values, 1.0)  # 2 * 0.5 * (Q - target)
        assert importance.regularization_loss(small_mlp, 0.5) > 0

    def test_vector_roundtrip(self, small_mlp):
        importance = initialize_importance(small_mlp, seed=0)
        vector = importance.as_vector(small_mlp)
        assert vector.shape == (small_mlp.total_units,)


class TestCoreLosses:
    def test_proximal_loss_and_gradient(self):
        params = {"w": np.array([2.0])}
        center = {"w": np.array([1.0])}
        assert proximal_loss(params, center, 0.5) == pytest.approx(0.5)
        np.testing.assert_allclose(proximal_gradient(params, center, 0.5)["w"], [1.0])
        with pytest.raises(ValueError):
            proximal_loss(params, center, -1.0)

    def test_add_and_combine_gradients(self):
        total = add_gradients({"w": np.array([1.0])}, {"w": np.array([2.0])})
        np.testing.assert_allclose(total["w"], [3.0])
        combined = combine_unit_gradients({"fc": np.array([1.0])},
                                          {"fc": np.array([0.5])})
        np.testing.assert_allclose(combined["fc"], [1.5])

    def test_utility_function_properties(self):
        assert accuracy_utility(0.0) == pytest.approx(0.0)
        assert accuracy_utility(90.0) > accuracy_utility(10.0)
        # marginal gains shrink near saturation
        early = utility_gain(20.0, 10.0)
        late = utility_gain(99.0, 89.0)
        assert early > late
        with pytest.raises(ValueError):
            accuracy_utility(120.0)


class TestLearnableSparseTraining:
    def setup_method(self):
        self.model = build_mlp(12, [16, 8], 4, seed=0)
        self.dataset = toy_dataset()
        self.importance = initialize_importance(self.model, seed=0)

    def _run(self, **kwargs):
        defaults = dict(sparse_ratio=0.5, iterations=8, batch_size=10,
                        learning_rate=0.2, prox_mu=0.05, importance_lambda=0.1,
                        rng=np.random.default_rng(0))
        defaults.update(kwargs)
        return learnable_sparse_training(
            self.model, self.model.get_parameters(), self.importance,
            self.dataset, **defaults)

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            self._run(sparse_ratio=0.0)

    def test_residual_and_personalized_respect_mask(self):
        result = self._run()
        mask = self.model.expand_unit_masks(
            {k: np.asarray(v, dtype=float) for k, v in result.pattern.items()})
        for key, values in result.personalized_params.items():
            assert np.all(values[mask[key] == 0.0] == 0.0)
        for key, values in result.residual.items():
            assert np.all(values[mask[key] == 0.0] == 0.0)

    def test_pattern_keep_ratio_close_to_requested(self):
        result = self._run(sparse_ratio=0.5)
        assert 0.35 <= pattern_keep_ratio(result.pattern) <= 0.65

    def test_importance_is_updated(self):
        result = self._run()
        moved = any(not np.allclose(result.importance.scores[name],
                                    self.importance.scores[name])
                    for name in self.importance.scores)
        assert moved

    def test_training_learns_at_full_ratio(self):
        result = self._run(sparse_ratio=1.0, iterations=25)
        assert result.train_accuracy > 0.4

    def test_full_ratio_masks_nothing(self):
        result = self._run(sparse_ratio=1.0)
        assert pattern_keep_ratio(result.pattern) == 1.0

    def test_prox_mu_limits_drift_from_global(self):
        # the masked residual (omega_global - omega_local) * m measures the
        # drift of the retained sub-model from the global parameters
        free = self._run(prox_mu=0.0, iterations=15, learning_rate=0.05)
        anchored = self._run(prox_mu=2.0, iterations=15, learning_rate=0.05)
        free_drift = l2_norm(free.residual)
        anchored_drift = l2_norm(anchored.residual)
        assert anchored_drift < free_drift + 1e-9

    def test_per_iteration_refresh_mode_runs(self):
        result = self._run(refresh_pattern_each_iteration=True, iterations=4)
        assert result.examples_seen == 4 * 10

    def test_gates_cleared_after_training(self):
        self._run()
        assert all(layer.unit_gate is None for layer in self.model.layers)
