"""Server-side aggregation rules."""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..nn.params import ParamDict, copy_params, weighted_average, zeros_like


def fedavg(updates: Sequence[Mapping[str, np.ndarray]],
           weights: Sequence[float]) -> ParamDict:
    """Classic FedAvg: data-size-weighted average of local parameters."""
    return weighted_average(updates, weights)


def aggregate_residuals(global_params: Mapping[str, np.ndarray],
                        residuals: Sequence[Mapping[str, np.ndarray]],
                        weights: Sequence[float]) -> ParamDict:
    """FedLPS aggregation (Eq. 13).

    Every client uploads the masked residual ``r_k = (w_global - w_k) * m_k``;
    the server averages ``w_global - r_k`` weighted by the local data sizes.
    Because each client's mask is different, the averaged update is relatively
    dense even though every individual upload is sparse.
    """
    if len(residuals) != len(weights):
        raise ValueError("residuals and weights must have the same length")
    if not residuals:
        return copy_params(global_params)
    # stream the reconstructions: weighted_average consumes the generator one
    # dictionary at a time, so only a single reconstructed snapshot is alive
    # instead of one per client
    reconstructed = ({key: global_params[key] - residual[key]
                      for key in global_params} for residual in residuals)
    return weighted_average(reconstructed, weights)


def masked_average(global_params: Mapping[str, np.ndarray],
                   updates: Sequence[Mapping[str, np.ndarray]],
                   masks: Sequence[Mapping[str, np.ndarray]],
                   weights: Optional[Sequence[float]] = None) -> ParamDict:
    """Coverage-aware averaging used by HeteroFL-style heterogeneous models.

    Each parameter entry is averaged only over the clients whose mask carries
    that entry; entries carried by nobody keep their previous global value.
    """
    if len(updates) != len(masks):
        raise ValueError("updates and masks must have the same length")
    if not updates:
        return copy_params(global_params)
    if weights is None:
        weights = [1.0] * len(updates)
    if len(weights) != len(updates):
        raise ValueError("weights must match updates in length")
    numerator = zeros_like(global_params)
    denominator = zeros_like(global_params)
    scratch = {key: np.empty_like(value) for key, value in numerator.items()}
    for update, mask, weight in zip(updates, masks, weights):
        for key in numerator:
            # one reusable scratch array instead of two fresh temporaries per
            # entry; the grouping (weight * mask) * update matches the old
            # ``weight * mask[key] * update[key]`` bit-for-bit
            weighted_mask = np.multiply(mask[key], weight, out=scratch[key])
            denominator[key] += weighted_mask
            weighted_mask *= update[key]
            numerator[key] += weighted_mask
    result: ParamDict = {}
    for key in numerator:
        covered = denominator[key] > 0
        merged = np.array(global_params[key], copy=True)
        merged[covered] = numerator[key][covered] / denominator[key][covered]
        result[key] = merged
    return result


def staleness_weighted_average(
        entries: Iterable[Tuple[Mapping[str, np.ndarray], float, int]],
        *, decay: float = 0.5) -> ParamDict:
    """REFL-style aggregation that discounts stale updates.

    ``entries`` yields ``(params, weight, staleness)`` triples; an update that
    is ``staleness`` rounds old is discounted by ``decay ** staleness``.
    """
    params_list: List[Mapping[str, np.ndarray]] = []
    weight_list: List[float] = []
    for params, weight, staleness in entries:
        if staleness < 0:
            raise ValueError("staleness must be non-negative")
        params_list.append(params)
        weight_list.append(weight * (decay ** staleness))
    if not params_list:
        raise ValueError("cannot aggregate zero updates")
    return weighted_average(params_list, weight_list)
