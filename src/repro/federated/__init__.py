"""Federated-learning substrate: clients, strategies, trainer, aggregation."""

from .aggregation import (aggregate_residuals, fedavg, masked_average,
                          staleness_weighted_average)
from .batched import client_batch_schedule, train_cohort_batched
from .client import Client
from .config import AGGREGATIONS, FederatedConfig, FleetConfig
from .evaluation import average_personalized_accuracy, evaluate_params
from .fleet import ClientFleet, FleetStateStore, bind_client_state_initializer
from .local import LocalUpdateResult, iterate_batches, train_locally
from .strategy import ClientUpdate, Strategy, StrategyContext
from .trainer import FederatedTrainer, run_federated

__all__ = [
    "Client",
    "FederatedConfig",
    "FleetConfig",
    "ClientFleet",
    "FleetStateStore",
    "bind_client_state_initializer",
    "AGGREGATIONS",
    "Strategy",
    "StrategyContext",
    "ClientUpdate",
    "FederatedTrainer",
    "run_federated",
    "train_locally",
    "train_cohort_batched",
    "client_batch_schedule",
    "iterate_batches",
    "LocalUpdateResult",
    "evaluate_params",
    "average_personalized_accuracy",
    "fedavg",
    "aggregate_residuals",
    "masked_average",
    "staleness_weighted_average",
]
