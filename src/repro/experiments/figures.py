"""Reproduction of the paper's figures (as data series, not plots).

Every function returns plain Python data structures (lists of dictionaries or
``{label: series}`` mappings) that the benchmark harness prints; plotting is
intentionally left to the user so the library has no drawing dependencies.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..baselines import ablations, build_strategy
from ..systems import TrainingHistory
from .presets import preset_for, scaled
from .runner import run_method

#: methods plotted in Figures 3 and 4 of the paper
FIGURE3_METHODS = ("fedavg", "refl", "fedmp", "perfedavg", "hermes", "fedspa",
                   "fedlps")


def accuracy_vs_flops(dataset: str = "mnist",
                      methods: Iterable[str] = FIGURE3_METHODS,
                      overrides: Optional[dict] = None
                      ) -> Dict[str, List[Dict[str, float]]]:
    """Figure 3: test accuracy as a function of cumulative FLOPs."""
    overrides = overrides or {}
    preset = scaled(preset_for(dataset), **overrides)
    series: Dict[str, List[Dict[str, float]]] = {}
    for method in methods:
        history = run_method(method, preset)
        series[method] = [{"flops": record.cumulative_flops,
                           "accuracy": record.test_accuracy}
                          for record in history.records]
    return series


def accuracy_vs_time(dataset: str = "mnist",
                     methods: Iterable[str] = FIGURE3_METHODS,
                     overrides: Optional[dict] = None
                     ) -> Dict[str, List[Dict[str, float]]]:
    """Figure 4: test accuracy as a function of simulated running time."""
    overrides = overrides or {}
    preset = scaled(preset_for(dataset), **overrides)
    series: Dict[str, List[Dict[str, float]]] = {}
    for method in methods:
        history = run_method(method, preset)
        series[method] = [{"time_seconds": record.cumulative_time_seconds,
                           "accuracy": record.test_accuracy}
                          for record in history.records]
    return series


def time_to_accuracy(datasets: Iterable[str] = ("cifar10",),
                     methods: Iterable[str] = ("fedper", "hermes", "fedspa",
                                               "perfedavg", "fedlps"),
                     target_fraction: float = 0.8,
                     overrides: Optional[dict] = None
                     ) -> List[Dict[str, object]]:
    """Figure 5: time to reach a target accuracy (TTA) per method and dataset.

    The target is expressed as a fraction of the best accuracy any method
    reaches on that dataset, which keeps the notion of "target accuracy"
    meaningful across the synthetic substitutes.
    """
    overrides = overrides or {}
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        preset = scaled(preset_for(dataset), **overrides)
        histories: Dict[str, TrainingHistory] = {
            method: run_method(method, preset) for method in methods}
        best = max(history.best_accuracy() for history in histories.values())
        target = target_fraction * best
        for method, history in histories.items():
            rows.append({
                "dataset": dataset,
                "method": method,
                "target_accuracy": target,
                "time_to_accuracy_seconds": history.time_to_accuracy(target),
                "final_accuracy": history.final_accuracy(),
            })
    return rows


def noniid_level_sweep(dataset: str = "mnist",
                       missing_classes: Iterable[int] = (2, 4, 6, 8),
                       methods: Iterable[str] = ("fedper", "hermes", "fedspa",
                                                 "perfedavg", "fedlps"),
                       overrides: Optional[dict] = None
                       ) -> List[Dict[str, object]]:
    """Figure 6: accuracy under increasing non-IID levels.

    The horizontal axis follows the paper: a level of ``x`` means every client
    lacks ``x`` of the dataset's classes.
    """
    overrides = overrides or {}
    base = preset_for(dataset)
    rows: List[Dict[str, object]] = []
    for missing in missing_classes:
        total_classes = 10 if dataset != "cifar100" else 20
        classes_per_client = max(1, total_classes - missing)
        preset = scaled(base, classes_per_client=classes_per_client, **overrides)
        for method in methods:
            history = run_method(method, preset)
            rows.append({
                "dataset": dataset,
                "missing_classes": missing,
                "method": method,
                "accuracy": history.final_accuracy(),
            })
    return rows


def heterogeneity_sweep(dataset: str = "cifar10",
                        levels: Iterable[str] = ("low", "median", "high"),
                        methods: Iterable[str] = ("fedavg", "fedmp", "fedspa",
                                                  "fedlps"),
                        overrides: Optional[dict] = None
                        ) -> List[Dict[str, object]]:
    """Figures 7 and 8: accuracy and running time vs system heterogeneity."""
    overrides = overrides or {}
    rows: List[Dict[str, object]] = []
    for level in levels:
        preset = scaled(preset_for(dataset), heterogeneity=level, **overrides)
        for method in methods:
            history = run_method(method, preset)
            rows.append({
                "dataset": dataset,
                "heterogeneity": level,
                "method": method,
                "accuracy": history.final_accuracy(),
                "total_time_seconds": history.total_time_seconds,
                "total_flops": history.total_flops,
            })
    return rows


def pattern_ratio_sweep(dataset: str = "mnist",
                        ratios: Iterable[float] = (0.2, 0.4, 0.6, 0.8),
                        patterns: Iterable[str] = ("learnable", "random",
                                                   "ordered", "magnitude"),
                        overrides: Optional[dict] = None
                        ) -> List[Dict[str, object]]:
    """Figure 9a/9b: accuracy and time under different patterns and ratios."""
    overrides = overrides or {}
    preset = scaled(preset_for(dataset), **overrides)
    rows: List[Dict[str, object]] = []
    for ratio in ratios:
        for pattern in patterns:
            if pattern == "learnable":
                strategy = ablations.fedlps_learnable_fixed_ratio(ratio)
            else:
                strategy = ablations.fedlps_with_pattern(pattern, ratio)
            history = run_method(strategy.name, preset, strategy=strategy)
            training_time = sum(
                record.round_time_seconds for record in history.records)
            communication = history.total_upload_bytes
            rows.append({
                "dataset": dataset,
                "sparse_ratio": ratio,
                "pattern": pattern,
                "accuracy": history.final_accuracy(),
                "total_time_seconds": history.total_time_seconds,
                "training_time_seconds": training_time,
                "upload_bytes": communication,
                "total_flops": history.total_flops,
            })
    return rows
