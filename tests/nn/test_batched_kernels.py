"""Batched cohort kernels vs the sequential layer stack, bit-for-bit.

``repro.nn.batched`` promises that a :class:`BatchedModel` run over stacked
``(C, ...)`` parameters reproduces each client's sequential forward/backward
EXACTLY — same bits, not just close — including under per-client unit gates
and ragged cohorts (``set_batch_counts``), where padded rows must stay
exactly zero through the whole pass.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import build_cnn, build_lstm_lm, build_mlp
from repro.nn import (BatchedModel, batchable_model, softmax_cross_entropy,
                      stack_param_dicts, unstack_param_dict)
from repro.sparsity import gates_from_pattern, random_pattern


def _perturbed_params(model, cohort, seed=0):
    rng = np.random.default_rng(seed)
    base = model.get_parameters()
    return [{key: value + 0.01 * rng.normal(size=value.shape)
             for key, value in base.items()} for _ in range(cohort)]


def _sequential_pass(model, params, x, y, gates=None):
    model.set_parameters(params)
    model.set_unit_gates(gates)
    model.zero_grad()
    logits = model.forward(x, train=True)
    loss, grad = softmax_cross_entropy(logits, y)
    model.backward(grad)
    grads = model.get_gradients()
    model.set_unit_gates(None)
    return logits, grads


class TestStacking:
    def test_stack_unstack_roundtrip(self):
        model = build_mlp(6, [5], 3, seed=0)
        stacks = stack_param_dicts(_perturbed_params(model, 3))
        for key, value in stacks.items():
            assert value.shape[0] == 3
        sliced = unstack_param_dict(stacks, 1)
        reference = _perturbed_params(model, 3)[1]
        for key in reference:
            np.testing.assert_array_equal(sliced[key], reference[key])

    def test_batchable_model_predicate(self):
        assert batchable_model(build_mlp(6, [5], 3))
        assert batchable_model(build_cnn(1, 8, 4))
        # recurrent layers have no batched kernel — must report False
        assert not batchable_model(build_lstm_lm(20, seq_len=6))


@pytest.mark.parametrize("builder", [
    lambda: build_mlp(6, [5, 4], 3, seed=1),
    lambda: build_cnn(1, 8, 4, seed=1),
], ids=["mlp", "cnn"])
class TestHomogeneousEquivalence:
    def test_forward_backward_bit_identical(self, builder):
        model = builder()
        cohort = 3
        params = _perturbed_params(model, cohort, seed=2)
        batched = BatchedModel(model, cohort)
        batched.set_parameters(stack_param_dicts(params))

        rng = np.random.default_rng(3)
        shape = (cohort, 4) + tuple(model.input_shape)
        x = rng.normal(size=shape)
        y = rng.integers(0, 3, size=(cohort, 4))

        batched.zero_grad()
        logits = batched.forward(x)
        grad = np.empty_like(logits)
        for i in range(cohort):
            ref_logits, _ = _sequential_pass(model, params[i], x[i], y[i])
            np.testing.assert_array_equal(logits[i], ref_logits)
            _, g = softmax_cross_entropy(logits[i], y[i])
            grad[i] = g
        batched.backward(grad)
        grads = batched.get_gradients()
        for i in range(cohort):
            _, ref_grads = _sequential_pass(model, params[i], x[i], y[i])
            for key in ref_grads:
                np.testing.assert_array_equal(grads[key][i], ref_grads[key])

    def test_per_client_gates_match_sequential(self, builder):
        model = builder()
        cohort = 3
        params = _perturbed_params(model, cohort, seed=4)
        patterns = [random_pattern(model, ratio,
                                   rng=np.random.default_rng(10 + i))
                    for i, ratio in enumerate((0.5, 0.75, 1.0))]
        batched = BatchedModel(model, cohort)
        batched.set_parameters(stack_param_dicts(params))
        gate_stacks = {
            group.layer_name: np.stack(
                [gates_from_pattern(patterns[i])[group.layer_name]
                 for i in range(cohort)])
            for group in model.unit_groups}
        batched.set_unit_gates(gate_stacks)

        rng = np.random.default_rng(5)
        x = rng.normal(size=(cohort, 4) + tuple(model.input_shape))
        y = rng.integers(0, 3, size=(cohort, 4))
        batched.zero_grad()
        logits = batched.forward(x)
        grad = np.empty_like(logits)
        for i in range(cohort):
            _, g = softmax_cross_entropy(logits[i], y[i])
            grad[i] = g
        batched.backward(grad)
        grads = batched.get_gradients()
        for i in range(cohort):
            ref_logits, ref_grads = _sequential_pass(
                model, params[i], x[i], y[i],
                gates=gates_from_pattern(patterns[i]))
            np.testing.assert_array_equal(logits[i], ref_logits)
            for key in ref_grads:
                np.testing.assert_array_equal(grads[key][i], ref_grads[key])


@pytest.mark.parametrize("builder", [
    lambda: build_mlp(6, [5], 3, seed=1),
    lambda: build_cnn(1, 8, 4, seed=1),
], ids=["mlp", "cnn"])
class TestRaggedEquivalence:
    """Ragged cohorts: real rows bit-identical, padded rows exactly zero.

    GEMM results depend on the operand row count (edge micro-kernels regroup
    the k accumulation), so the ragged path must NOT push padded rows
    through batched matmuls — these tests pin both the equivalence and the
    padded-row no-op proof.
    """

    COUNTS = (4, 2, 3)

    def test_real_rows_bit_identical(self, builder):
        model = builder()
        cohort = len(self.COUNTS)
        width = max(self.COUNTS)
        params = _perturbed_params(model, cohort, seed=6)
        batched = BatchedModel(model, cohort)
        batched.set_parameters(stack_param_dicts(params))
        batched.set_batch_counts(np.asarray(self.COUNTS))

        rng = np.random.default_rng(7)
        x = np.zeros((cohort, width) + tuple(model.input_shape))
        y = np.zeros((cohort, width), dtype=np.int64)
        for i, count in enumerate(self.COUNTS):
            x[i, :count] = rng.normal(size=(count,) + tuple(model.input_shape))
            y[i, :count] = rng.integers(0, 3, size=count)

        batched.zero_grad()
        logits = batched.forward(x)
        grad = np.zeros_like(logits)
        for i, count in enumerate(self.COUNTS):
            _, g = softmax_cross_entropy(logits[i, :count], y[i, :count])
            grad[i, :count] = g
        batched.backward(grad)
        grads = batched.get_gradients()
        for i, count in enumerate(self.COUNTS):
            ref_logits, ref_grads = _sequential_pass(
                model, params[i], x[i, :count], y[i, :count])
            np.testing.assert_array_equal(logits[i, :count], ref_logits)
            for key in ref_grads:
                np.testing.assert_array_equal(grads[key][i], ref_grads[key])

    def test_padded_rows_are_exact_zeros(self, builder):
        model = builder()
        cohort = len(self.COUNTS)
        width = max(self.COUNTS)
        params = _perturbed_params(model, cohort, seed=8)
        batched = BatchedModel(model, cohort)
        batched.set_parameters(stack_param_dicts(params))
        batched.set_batch_counts(np.asarray(self.COUNTS))

        rng = np.random.default_rng(9)
        x = np.zeros((cohort, width) + tuple(model.input_shape))
        for i, count in enumerate(self.COUNTS):
            x[i, :count] = rng.normal(size=(count,) + tuple(model.input_shape))
        logits = batched.forward(x)
        for i, count in enumerate(self.COUNTS):
            assert np.all(logits[i, count:] == 0.0)
        grad = np.zeros_like(logits)
        for i, count in enumerate(self.COUNTS):
            grad[i, :count] = rng.normal(size=(count, logits.shape[-1]))
        batched.zero_grad()
        grad_x = batched.backward(grad)
        for i, count in enumerate(self.COUNTS):
            assert np.all(grad_x[i, count:] == 0.0)
