"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

TINY = ["--rounds", "2", "--clients", "5", "--clients-per-round", "2",
        "--local-iterations", "2", "--seed", "1"]


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.method == "fedlps"
        assert args.dataset == "mnist"
        assert args.backend == "serial"
        assert args.workers == 1

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--method", "nonsense"])

    def test_backend_choices(self):
        args = build_parser().parse_args(
            ["run", "--backend", "process", "--workers", "4"])
        assert args.backend == "process"
        assert args.workers == 4
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--backend", "gpu"])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert "mnist" in args.datasets
        assert args.methods == ["fedavg", "fedlps"]
        assert not args.no_cache

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.scale == 1.0
        assert args.backends == ["process", "serial", "socket", "thread"]
        assert args.workers_list == [1, 2, 4]
        # None means "BENCH_fanout.json unless --fleet-scale took over"
        assert args.output is None
        assert args.fleet_scale is None
        assert args.fleet_output == "BENCH_fleet.json"
        assert not args.check

    def test_bench_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--backends", "gpu"])

    def test_aggregation_choices(self):
        args = build_parser().parse_args(["run", "--aggregation", "fedasync"])
        assert args.aggregation == "fedasync"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--aggregation", "eventually"])

    def test_sweep_aggregations_default_to_sync(self):
        args = build_parser().parse_args(["sweep"])
        assert args.aggregations == ["sync"]
        args = build_parser().parse_args(
            ["sweep", "--aggregations", "sync", "fedbuff"])
        assert args.aggregations == ["sync", "fedbuff"]

    def test_codec_choices(self):
        args = build_parser().parse_args(["run", "--codec", "sparse"])
        assert args.codec == "sparse"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--codec", "gzip"])

    def test_sweep_codecs_default_to_dense(self):
        args = build_parser().parse_args(["sweep"])
        assert args.codecs == ["dense"]
        args = build_parser().parse_args(
            ["sweep", "--codecs", "sparse", "int8"])
        assert args.codecs == ["sparse", "int8"]

    def test_bench_codec_axis_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.codec_scale is None
        assert args.codec_output == "BENCH_codec.json"

    def test_fault_plan_choices(self):
        args = build_parser().parse_args(
            ["run", "--fault-plan", "chaos", "--max-retries", "3",
             "--task-timeout", "30"])
        assert args.fault_plan == "chaos"
        assert args.max_retries == 3
        assert args.task_timeout == 30.0
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--fault-plan",
                                       "meteor-strike"])

    def test_fault_flags_default_off(self):
        for command in ("run", "sweep"):
            args = build_parser().parse_args([command])
            assert args.fault_plan is None
            assert args.task_timeout is None
            assert args.max_retries is None

    def test_bench_fault_axis_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.fault_scale is None
        assert args.fault_output == "BENCH_faults.json"
        assert args.fault_plan is None


class TestCommands:
    def test_list_prints_methods(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fedlps" in out and "fedavg" in out

    def test_run_prints_summary(self, capsys):
        assert main(["run", "--method", "fedavg", "--dataset", "mnist"] + TINY) == 0
        out = capsys.readouterr().out
        assert "fedavg" in out and "accuracy" in out

    def test_compare_prints_one_row_per_method(self, capsys):
        assert main(["compare", "--methods", "fedavg", "fedlps",
                     "--dataset", "mnist"] + TINY) == 0
        out = capsys.readouterr().out
        assert "fedavg" in out and "fedlps" in out

    def test_table1_subset(self, capsys):
        assert main(["table1", "--datasets", "mnist",
                     "--methods", "fedavg", "fedlps"] + TINY) == 0
        out = capsys.readouterr().out
        assert "fedlps" in out

    def test_table1_with_thread_backend_matches_serial(self, capsys):
        argv = ["table1", "--datasets", "mnist",
                "--methods", "fedavg", "fedlps"] + TINY
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--backend", "thread", "--workers", "2"]) == 0
        thread_out = capsys.readouterr().out
        assert thread_out == serial_out

    def test_run_with_thread_backend_matches_serial(self, capsys):
        assert main(["run", "--method", "fedavg", "--dataset", "mnist"]
                    + TINY) == 0
        serial_out = capsys.readouterr().out
        assert main(["run", "--method", "fedavg", "--dataset", "mnist",
                     "--backend", "thread", "--workers", "2"] + TINY) == 0
        thread_out = capsys.readouterr().out
        assert thread_out == serial_out

    def test_run_with_recovered_chaos_matches_clean_run(self, capsys):
        """Supervised retries absorb the injected faults: same summary."""
        argv = ["run", "--method", "fedavg", "--dataset", "mnist"] + TINY
        assert main(argv) == 0
        clean_out = capsys.readouterr().out
        assert main(argv + ["--fault-plan", "chaos", "--max-retries", "4",
                            "--task-timeout", "30"]) == 0
        chaos_out = capsys.readouterr().out
        assert chaos_out == clean_out

    def test_run_with_fedasync_aggregation(self, capsys):
        assert main(["run", "--method", "fedavg", "--dataset", "mnist",
                     "--scenario", "flaky", "--aggregation", "fedasync"]
                    + TINY) == 0
        out = capsys.readouterr().out
        assert "fedasync" in out and "accuracy" in out

    def test_run_with_sparse_codec_matches_dense(self, capsys):
        assert main(["run", "--method", "fedlps"] + TINY) == 0
        dense_out = capsys.readouterr().out
        assert main(["run", "--method", "fedlps", "--codec", "sparse"]
                    + TINY) == 0
        sparse_out = capsys.readouterr().out
        # lossless wire codec: the summary table is bit-identical
        assert sparse_out == dense_out

    def test_sweep_grids_over_codecs(self, capsys, tmp_path):
        argv = ["sweep", "--datasets", "mnist", "--methods", "fedlps",
                "--codecs", "dense", "int8",
                "--cache-dir", str(tmp_path / "cache")] + TINY
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "codec" in out and "int8" in out
        assert "wire_upload_bytes" in out
        assert "2 miss(es)" in out

    def test_sweep_grids_over_aggregations(self, capsys, tmp_path):
        argv = ["sweep", "--datasets", "mnist", "--methods", "fedavg",
                "--scenarios", "flaky", "--aggregations", "sync", "fedasync",
                "--cache-dir", str(tmp_path / "cache")] + TINY
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "fedasync" in out
        assert "2 miss(es)" in out

    def test_sweep_writes_and_reuses_cache(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        argv = ["sweep", "--datasets", "mnist",
                "--methods", "fedavg", "fedlps",
                "--cache-dir", cache_dir] + TINY
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "2 miss(es)" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "2 hit(s)" in second
        # cached rows must be identical to the freshly computed ones
        assert first.splitlines()[:4] == second.splitlines()[:4]

    def test_sweep_no_cache(self, capsys, tmp_path):
        assert main(["sweep", "--datasets", "mnist", "--methods", "fedavg",
                     "--no-cache", "--cache-dir",
                     str(tmp_path / "unused")] + TINY) == 0
        out = capsys.readouterr().out
        assert "fedavg" in out
        assert "cache:" not in out
        assert not (tmp_path / "unused").exists()

    def test_bench_writes_artifact(self, capsys, tmp_path):
        artifact = tmp_path / "BENCH_fanout.json"
        assert main(["bench", "--scale", "0.25", "--backends", "serial",
                     "thread", "--workers-list", "2", "--repeats", "1",
                     "--output", str(artifact), "--check"]) == 0
        out = capsys.readouterr().out
        assert "reduction" in out and "thread-2" in out
        assert artifact.exists()
