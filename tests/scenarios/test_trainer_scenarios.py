"""Integration: the scenario engine wired through the federated trainer."""

from __future__ import annotations

import pytest

from repro.experiments import (preset_for, run_method, scaled, scenario_table,
                               summarize)
from repro.scenarios import available_scenarios

TINY = dict(num_clients=8, num_rounds=4, clients_per_round=3,
            examples_per_client=20, local_iterations=2, batch_size=8, seed=3)


def tiny_preset(scenario="ideal", **extra):
    return scaled(preset_for("mnist"), scenario=scenario, **{**TINY, **extra})


class TestIdealScenarioIsLegacyBehaviour:
    def test_ideal_records_have_no_drops(self):
        history = run_method("fedavg", tiny_preset("ideal"))
        for record in history.records:
            assert record.dropped == []
            assert record.straggler_count == 0
            assert record.sim_time == pytest.approx(record.round_time_seconds)
        assert history.total_sim_time == pytest.approx(
            history.total_time_seconds)


class TestScenarioRuns:
    @pytest.mark.parametrize("scenario", ["flaky", "deadline-tight", "trace"])
    def test_scenarios_are_reproducible(self, scenario):
        first = run_method("fedavg", tiny_preset(scenario))
        second = run_method("fedavg", tiny_preset(scenario))
        assert first.to_dict() == second.to_dict()

    def test_deadline_tight_drops_stragglers(self):
        history = run_method("fedavg", tiny_preset("deadline-tight"))
        assert history.total_stragglers > 0
        assert history.total_dropped >= history.total_stragglers

    def test_over_selection_widens_invitations(self):
        history = run_method("fedavg", tiny_preset("deadline-tight"))
        # deadline-tight over-selects 1.5x: ceil(3 * 1.5) = 5 invitations
        assert all(len(record.selected_clients) == 5
                   for record in history.records)

    def test_flaky_drops_are_unavailability_only(self):
        history = run_method("fedavg", tiny_preset("flaky"))
        assert history.total_stragglers == 0  # wait-all never cuts runners
        assert history.total_dropped > 0

    def test_trace_scenario_runs_and_drops(self):
        history = run_method("fedavg", tiny_preset("trace"))
        assert len(history) == TINY["num_rounds"]
        # the diurnal trace makes some invited clients unavailable
        assert history.total_dropped > 0

    def test_dropped_clients_are_recorded_consistently(self):
        history = run_method("fedavg", tiny_preset("deadline-tight"))
        for record in history.records:
            invited = set(record.selected_clients)
            assert set(record.dropped) <= invited
            assert record.straggler_count <= len(record.dropped)
            # participants = invited minus dropped; their ratios were recorded
            # for everyone who ran (stragglers burned compute too)
            assert set(record.sparse_ratios) <= invited

    def test_scenario_histories_serialize_round_trip(self):
        from repro.systems import TrainingHistory

        history = run_method("fedavg", tiny_preset("deadline-tight"))
        restored = TrainingHistory.from_dict(history.to_dict())
        assert restored.to_dict() == history.to_dict()

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_method("fedavg", tiny_preset("chaos"))


class TestScenarioMetrics:
    def test_summarize_reports_scenario_columns(self):
        summary = summarize(run_method("fedavg", tiny_preset("deadline-tight")))
        assert summary["sim_time_seconds"] > 0
        assert summary["straggler_drops"] > 0
        assert summary["dropped_clients"] >= summary["straggler_drops"]

    def test_scenario_override_in_overrides_is_ignored_by_sweep(self):
        from repro.experiments import run_scenario_sweep

        # a 'scenario' key in overrides (e.g. forwarded CLI --scenario) must
        # not collide with the sweep's own scenarios axis
        histories = run_scenario_sweep(
            ["fedavg"], ["mnist"], ["deadline-tight"],
            overrides={**TINY, "scenario": "ideal", "num_rounds": 2})
        ((method, dataset, scenario, aggregation),) = histories.keys()
        assert (method, dataset, scenario, aggregation) == (
            "fedavg", "mnist", "deadline-tight", "sync")

    def test_scenario_table_covers_the_grid(self):
        rows = scenario_table(dataset="mnist", methods=("fedavg",),
                              scenarios=("ideal", "deadline-tight"),
                              overrides=dict(TINY))
        assert {(row["method"], row["scenario"]) for row in rows} == {
            ("fedavg", "ideal"), ("fedavg", "deadline-tight")}
        ideal = next(r for r in rows if r["scenario"] == "ideal")
        tight = next(r for r in rows if r["scenario"] == "deadline-tight")
        assert ideal["dropped_clients"] == 0
        assert tight["dropped_clients"] > 0

    def test_scenario_table_shared_sync_target(self):
        rows = scenario_table(dataset="mnist", methods=("fedavg",),
                              scenarios=("flaky",),
                              aggregations=("sync", "fedasync"),
                              overrides=dict(TINY))
        by_mode = {row["aggregation"]: row for row in rows}
        assert set(by_mode) == {"sync", "fedasync"}
        # the shared target is 90% of the sync run's best: the sync row
        # always reaches its own target
        assert by_mode["sync"]["time_to_sync_target_seconds"] is not None
        assert by_mode["sync"]["mean_staleness"] == 0.0
        assert by_mode["fedasync"]["mean_staleness"] > 0

    def test_every_named_scenario_is_runnable(self):
        for scenario in available_scenarios():
            history = run_method("fedavg",
                                 tiny_preset(scenario, num_rounds=2))
            assert len(history) == 2
