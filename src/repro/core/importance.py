"""The unit-wise importance indicator ``Q`` and its learnable update.

Every client maintains one importance score per sparsifiable unit of the
model (Eq. 3).  The scores are optimized by back-propagation together with
the model parameters: the task gradient reaches ``Q`` through the unit gates
(a straight-through estimator of the non-differentiable step function in
Eq. 4), and the importance regularizer of Eq. (8) keeps ``Q`` anchored to a
smoothed view of the unit weight magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

import numpy as np

from ..nn.activations import sigmoid
from ..nn.model import Sequential
from ..sparsity.masks import UnitPattern, pattern_from_scores


def smoothed_unit_magnitudes(model: Sequential) -> Dict[str, np.ndarray]:
    """The regularization target ``sigmoid(|omega|_J)`` of Eq. (8).

    The raw per-unit magnitude is the *sum* of absolute parameter values,
    which for any realistic layer is far into the sigmoid's saturated region
    (every unit would map to ~1.0 and the regularizer would carry no
    information).  We therefore standardize the magnitudes within each layer
    before applying the sigmoid, which keeps the target in the open interval
    (0, 1) while preserving the relative ordering of units that Eq. (8) is
    meant to encode.  This is an implementation choice documented in
    DESIGN.md.
    """
    targets: Dict[str, np.ndarray] = {}
    for name, magnitude in model.unit_weight_magnitudes().items():
        std = float(np.std(magnitude))
        if std < 1e-12:
            centered = np.zeros_like(magnitude)
        else:
            centered = (magnitude - float(np.mean(magnitude))) / std
        targets[name] = sigmoid(centered)
    return targets


@dataclass
class ImportanceIndicator:
    """Per-layer importance scores for one client."""

    scores: Dict[str, np.ndarray]

    def copy(self) -> "ImportanceIndicator":
        return ImportanceIndicator(
            {name: np.array(values, copy=True) for name, values in self.scores.items()})

    @property
    def total_units(self) -> int:
        return int(sum(values.size for values in self.scores.values()))

    def as_vector(self, model: Sequential) -> np.ndarray:
        """Model-wide flattened view (``Q`` as a single vector)."""
        return model.join_unit_vector(self.scores)

    def pattern(self, model: Sequential, sparse_ratio: float) -> UnitPattern:
        """Importance-derived sparse pattern (Eq. 4, layer-wise quantile)."""
        return pattern_from_scores(model, self.scores, sparse_ratio)

    def apply_gradient(self, gradients: Mapping[str, np.ndarray],
                       learning_rate: float) -> None:
        """One SGD step on the importance scores (Eq. 11)."""
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        for name, values in self.scores.items():
            grad = gradients.get(name)
            if grad is None:
                continue
            grad = np.asarray(grad, dtype=np.float64)
            if grad.shape != values.shape:
                raise ValueError(
                    f"gradient for {name!r} has shape {grad.shape}, "
                    f"expected {values.shape}")
            self.scores[name] = values - learning_rate * grad

    def regularization_gradient(self, model: Sequential,
                                importance_lambda: float) -> Dict[str, np.ndarray]:
        """Gradient of ``lambda * ||Q - sigmoid(|omega|_J)||^2`` w.r.t. ``Q``."""
        targets = smoothed_unit_magnitudes(model)
        return {name: 2.0 * importance_lambda * (values - targets[name])
                for name, values in self.scores.items()}

    def regularization_loss(self, model: Sequential,
                            importance_lambda: float) -> float:
        """Value of the importance regularizer ``L_ir`` (Eq. 8)."""
        targets = smoothed_unit_magnitudes(model)
        total = 0.0
        for name, values in self.scores.items():
            total += float(np.sum((values - targets[name]) ** 2))
        return importance_lambda * total


def initialize_importance(model: Sequential, *, seed: int = 0,
                          jitter: float = 1e-3) -> ImportanceIndicator:
    """Initial importance scores.

    Scores start at the smoothed weight magnitudes (the fixed point of the
    Eq. 8 regularizer) plus a tiny jitter so that quantile thresholds break
    ties differently across clients.
    """
    rng = np.random.default_rng(seed)
    targets = smoothed_unit_magnitudes(model)
    scores = {name: values + jitter * rng.standard_normal(values.shape)
              for name, values in targets.items()}
    return ImportanceIndicator(scores)
