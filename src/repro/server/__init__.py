"""Event-driven federated server core.

The server is split into three layers:

* :mod:`repro.server.clock` — a simulated clock and a completion-event
  queue ordered by the pure key ``(finish_time, client_id)``;
* :mod:`repro.server.scheduler` — the training *shape*: synchronous
  rounds (:class:`SyncScheduler`), FedAsync-style per-arrival aggregation
  (:class:`AsyncScheduler`) and FedBuff-style buffered aggregation
  (:class:`BufferedScheduler`);
* :mod:`repro.server.policy` — staleness-weighted merging of arrivals
  into the global model, separate from the averaging kernels.

:class:`~repro.server.core.ServerCore` carries the state and services the
schedulers compose; :class:`~repro.federated.trainer.FederatedTrainer` is a
thin facade over it.
"""

from .clock import ClientEvent, EventQueue, SimClock
from .core import (ServerCore, dataset_from_blocks, dataset_to_blocks,
                   materialized_session)
from .policy import (AggregationPolicy, Arrival, mix_params, staleness_decay,
                     staleness_weight)
from .scheduler import (SCHEDULERS, AsyncScheduler, BufferedScheduler,
                        Scheduler, SyncScheduler, available_aggregations,
                        build_scheduler)

__all__ = [
    "SimClock",
    "EventQueue",
    "ClientEvent",
    "ServerCore",
    "dataset_to_blocks",
    "dataset_from_blocks",
    "materialized_session",
    "AggregationPolicy",
    "Arrival",
    "staleness_decay",
    "staleness_weight",
    "mix_params",
    "Scheduler",
    "SyncScheduler",
    "AsyncScheduler",
    "BufferedScheduler",
    "SCHEDULERS",
    "available_aggregations",
    "build_scheduler",
]
