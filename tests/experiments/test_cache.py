"""Tests for the JSON-on-disk experiment result cache."""

from __future__ import annotations

import json

import pytest

from repro.experiments import (ResultCache, preset_for, run_method,
                               run_methods, run_spec, run_sweep, scaled,
                               spec_key)

TINY = dict(num_clients=4, num_rounds=2, clients_per_round=2,
            examples_per_client=20, local_iterations=2, batch_size=8, seed=5)


def tiny_preset(**extra):
    return scaled(preset_for("mnist"), **{**TINY, **extra})


class TestSpecKeys:
    def test_key_is_stable(self):
        spec = run_spec("fedavg", tiny_preset())
        assert spec_key(spec) == spec_key(run_spec("fedavg", tiny_preset()))

    def test_key_covers_method_preset_and_kwargs(self):
        base = spec_key(run_spec("fedavg", tiny_preset()))
        assert spec_key(run_spec("fedlps", tiny_preset())) != base
        assert spec_key(run_spec("fedavg", tiny_preset(seed=6))) != base
        assert spec_key(run_spec("fedavg", tiny_preset(),
                                 {"mu": 0.5})) != base

    def test_key_covers_the_scenario(self):
        base = spec_key(run_spec("fedavg", tiny_preset()))
        assert spec_key(run_spec(
            "fedavg", tiny_preset(scenario="deadline-tight"))) != base

    def test_key_covers_the_supervision_knobs(self):
        """Chaos runs must never collide with clean runs in the cache."""
        base = spec_key(run_spec("fedavg", tiny_preset()))
        assert spec_key(run_spec(
            "fedavg", tiny_preset(fault_plan="chaos",
                                  max_retries=4))) != base
        assert spec_key(run_spec(
            "fedavg", tiny_preset(max_retries=2))) != base
        assert spec_key(run_spec(
            "fedavg", tiny_preset(task_timeout=30.0))) != base

    def test_kwargs_insertion_order_is_irrelevant(self):
        forward = run_spec("fedavg", tiny_preset(), {"a": 1, "b": 2})
        backward = run_spec("fedavg", tiny_preset(), {"b": 2, "a": 1})
        assert spec_key(forward) == spec_key(backward)

    def test_nested_dict_insertion_order_is_irrelevant(self):
        forward = run_spec("fedavg", tiny_preset(),
                           {"sched": {"warmup": 2, "decay": 0.9}})
        backward = run_spec("fedavg", tiny_preset(),
                            {"sched": {"decay": 0.9, "warmup": 2}})
        assert spec_key(forward) == spec_key(backward)

    def test_non_string_keys_are_canonicalized(self):
        # int-keyed overrides must survive a JSON round trip and stay
        # order-insensitive (json would otherwise stringify the keys and
        # break the stored-spec comparison on every read)
        forward = run_spec("fedavg", tiny_preset(), {"ratios": {2: 0.5, 1: 1.0}})
        backward = run_spec("fedavg", tiny_preset(), {"ratios": {1: 1.0, 2: 0.5}})
        assert spec_key(forward) == spec_key(backward)
        round_tripped = json.loads(json.dumps(forward))
        assert round_tripped == forward

    def test_colliding_keys_fail_loudly(self):
        # {1: ..., "1": ...} cannot be canonicalized without dropping an
        # entry; a loud error beats a silent wrong cache hit
        with pytest.raises(ValueError):
            spec_key(run_spec("fedavg", tiny_preset(), {"m": {1: "a", "1": "b"}}))

    def test_sets_hash_order_independently(self):
        forward = run_spec("fedavg", tiny_preset(), {"levels": {0.5, 1.0, 0.25}})
        backward = run_spec("fedavg", tiny_preset(), {"levels": {1.0, 0.25, 0.5}})
        assert spec_key(forward) == spec_key(backward)

    def test_extra_config_order_is_irrelevant(self):
        forward = tiny_preset(extra_config={"x": 1.0, "y": 2.0})
        backward = tiny_preset(extra_config={"y": 2.0, "x": 1.0})
        assert (spec_key(run_spec("fedavg", forward))
                == spec_key(run_spec("fedavg", backward)))


class TestResultCache:
    def test_round_trip_is_exact(self, tmp_path):
        cache = ResultCache(tmp_path)
        history = run_method("fedlps", tiny_preset())
        cache.put("fedlps", tiny_preset(), None, history)
        restored = cache.get("fedlps", tiny_preset())
        assert restored is not None
        assert restored.to_dict() == history.to_dict()
        assert cache.hits == 1

    def test_miss_on_unknown_spec(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("fedavg", tiny_preset()) is None
        assert cache.misses == 1

    def test_corrupted_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        history = run_method("fedavg", tiny_preset())
        path = cache.put("fedavg", tiny_preset(), None, history)
        path.write_text("{not json")
        assert cache.get("fedavg", tiny_preset()) is None

    def test_spec_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        history = run_method("fedavg", tiny_preset())
        path = cache.put("fedavg", tiny_preset(), None, history)
        payload = json.loads(path.read_text())
        payload["spec"]["preset"]["seed"] = 12345
        path.write_text(json.dumps(payload))
        assert cache.get("fedavg", tiny_preset()) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("fedavg", tiny_preset(), None,
                  run_method("fedavg", tiny_preset()))
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0


class TestCachedSweeps:
    def test_run_methods_is_incremental(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_methods(["fedavg", "fedlps"], tiny_preset(), cache=cache)
        assert cache.misses == 2 and cache.hits == 0
        second = run_methods(["fedavg", "fedlps"], tiny_preset(), cache=cache)
        assert cache.hits == 2
        for method in first:
            assert first[method].to_dict() == second[method].to_dict()

    def test_run_sweep_covers_the_grid(self, tmp_path):
        cache = ResultCache(tmp_path)
        grid = run_sweep(["fedavg", "fedlps"], ["mnist"],
                         overrides=dict(TINY), cache=cache)
        assert set(grid) == {("fedavg", "mnist"), ("fedlps", "mnist")}
        assert len(cache) == 2
        again = run_sweep(["fedavg", "fedlps"], ["mnist"],
                          overrides=dict(TINY), cache=cache)
        assert cache.hits == 2
        for key in grid:
            assert grid[key].to_dict() == again[key].to_dict()

    def test_prebuilt_strategy_bypasses_cache(self, tmp_path):
        from repro.baselines import build_strategy

        cache = ResultCache(tmp_path)
        run_method("fedavg", tiny_preset(),
                   strategy=build_strategy("fedavg"), cache=cache)
        assert len(cache) == 0

    def test_reordered_kwargs_hit_the_same_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        history = run_method("fedlps", tiny_preset())
        cache.put("fedlps", tiny_preset(), {"mu": 0.1, "lam": 0.2}, history)
        restored = cache.get("fedlps", tiny_preset(), {"lam": 0.2, "mu": 0.1})
        assert restored is not None
        assert restored.to_dict() == history.to_dict()
        assert len(cache) == 1
