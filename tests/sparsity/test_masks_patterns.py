"""Tests for sparse masks, patterns and the cost accounting."""

import numpy as np
import pytest

from repro.sparsity import (build_parameter_mask, dense_forward_flops,
                            depth_pattern, download_bytes, full_pattern,
                            gates_from_pattern, heuristic_pattern,
                            importance_pattern, importance_threshold,
                            local_round_cost, local_training_flops,
                            magnitude_pattern, masked_parameter_count,
                            ordered_pattern, pattern_from_scores,
                            pattern_keep_ratio, pattern_overlap,
                            per_layer_keep_ratio, random_pattern,
                            rolling_pattern, sparse_forward_flops,
                            units_to_keep, upload_bytes, validate_sparse_ratio)


class TestMaskBasics:
    def test_validate_sparse_ratio(self):
        assert validate_sparse_ratio(0.5) == 0.5
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                validate_sparse_ratio(bad)

    @pytest.mark.parametrize("n,ratio,expected", [
        (10, 0.5, 5), (10, 0.05, 1), (10, 1.0, 10), (3, 0.34, 1), (8, 0.75, 6),
    ])
    def test_units_to_keep(self, n, ratio, expected):
        assert units_to_keep(n, ratio) == expected

    def test_pattern_from_scores_keeps_top_units(self, small_mlp):
        scores = {group.layer_name: np.arange(group.n_units, dtype=float)
                  for group in small_mlp.unit_groups}
        pattern = pattern_from_scores(small_mlp, scores, 0.5)
        for group in small_mlp.unit_groups:
            mask = pattern[group.layer_name]
            keep = units_to_keep(group.n_units, 0.5)
            assert mask.sum() == keep
            # highest scores retained
            assert mask[-1] and not mask[0]

    def test_pattern_from_scores_shape_mismatch(self, small_mlp):
        scores = {group.layer_name: np.zeros(group.n_units + 1)
                  for group in small_mlp.unit_groups}
        with pytest.raises(ValueError):
            pattern_from_scores(small_mlp, scores, 0.5)

    def test_importance_threshold_is_quantile(self):
        scores = np.arange(10, dtype=float)
        tau = importance_threshold(scores, 0.3)
        assert np.count_nonzero(scores >= tau) in (3, 4)

    def test_full_pattern_keeps_everything(self, small_cnn):
        pattern = full_pattern(small_cnn)
        assert pattern_keep_ratio(pattern) == 1.0

    def test_parameter_mask_zeroes_pruned_units(self, small_mlp):
        pattern = ordered_pattern(small_mlp, 0.5)
        mask = build_parameter_mask(small_mlp, pattern)
        assert set(mask) == set(small_mlp.get_parameters())
        # head params are never masked
        assert np.all(mask["head.W"] == 1.0)
        # some body entries are masked
        assert any(np.any(values == 0.0) for key, values in mask.items()
                   if not key.startswith("head."))

    def test_keep_ratio_and_per_layer(self, small_mlp):
        pattern = ordered_pattern(small_mlp, 0.5)
        ratios = per_layer_keep_ratio(pattern)
        assert all(0 < value <= 1 for value in ratios.values())
        assert 0 < pattern_keep_ratio(pattern) <= 0.6

    def test_pattern_overlap_bounds(self, small_mlp):
        a = ordered_pattern(small_mlp, 0.5)
        b = ordered_pattern(small_mlp, 0.5)
        assert pattern_overlap(a, b) == 1.0
        c = random_pattern(small_mlp, 0.5, rng=np.random.default_rng(0))
        assert 0.0 <= pattern_overlap(a, c) <= 1.0

    def test_gates_from_pattern_dtype(self, small_mlp):
        gates = gates_from_pattern(ordered_pattern(small_mlp, 0.5))
        assert all(g.dtype == np.float64 for g in gates.values())


class TestPatternStrategies:
    @pytest.mark.parametrize("ratio", [0.25, 0.5, 0.75])
    def test_every_strategy_respects_ratio(self, small_cnn, ratio):
        strategies = {
            "random": random_pattern(small_cnn, ratio,
                                     rng=np.random.default_rng(1)),
            "ordered": ordered_pattern(small_cnn, ratio),
            "rolling": rolling_pattern(small_cnn, ratio, 3),
            "magnitude": magnitude_pattern(small_cnn, ratio),
        }
        for name, pattern in strategies.items():
            for group in small_cnn.unit_groups:
                kept = int(np.count_nonzero(pattern[group.layer_name]))
                assert kept == units_to_keep(group.n_units, ratio), name

    def test_ordered_pattern_is_prefix(self, small_cnn):
        pattern = ordered_pattern(small_cnn, 0.5)
        for mask in pattern.values():
            kept = np.where(mask)[0]
            np.testing.assert_array_equal(kept, np.arange(len(kept)))

    def test_rolling_pattern_moves_with_round(self, small_cnn):
        a = rolling_pattern(small_cnn, 0.5, 0)
        b = rolling_pattern(small_cnn, 0.5, 2)
        assert any(not np.array_equal(a[k], b[k]) for k in a)

    def test_rolling_negative_round_rejected(self, small_cnn):
        with pytest.raises(ValueError):
            rolling_pattern(small_cnn, 0.5, -1)

    def test_magnitude_pattern_prefers_heavy_units(self, small_mlp):
        layer = small_mlp.layer_by_name("fc1")
        layer.params["W"][:, 0] = 10.0  # make unit 0 heavy
        pattern = magnitude_pattern(small_mlp, 0.25)
        assert pattern["fc1"][0]

    def test_importance_pattern_uses_scores(self, small_mlp):
        scores = {group.layer_name: np.zeros(group.n_units)
                  for group in small_mlp.unit_groups}
        scores["fc1"][3] = 5.0
        pattern = importance_pattern(small_mlp, scores, 0.25)
        assert pattern["fc1"][3]

    def test_depth_pattern_prunes_deepest_layers_first(self, small_mlp):
        pattern = depth_pattern(small_mlp, 0.5)
        groups = small_mlp.unit_groups
        first, last = groups[0].layer_name, groups[-1].layer_name
        assert pattern[first].mean() >= pattern[last].mean()

    def test_depth_pattern_full_ratio_keeps_all(self, small_mlp):
        pattern = depth_pattern(small_mlp, 1.0)
        assert pattern_keep_ratio(pattern) == 1.0

    def test_heuristic_dispatch(self, small_mlp):
        for name in ("random", "ordered", "rolling", "magnitude", "depth"):
            pattern = heuristic_pattern(name, small_mlp, 0.5,
                                        rng=np.random.default_rng(0))
            assert set(pattern) == {g.layer_name for g in small_mlp.unit_groups}
        with pytest.raises(ValueError):
            heuristic_pattern("unknown", small_mlp, 0.5)


class TestAccounting:
    def test_sparse_flops_less_than_dense(self, small_cnn):
        dense = dense_forward_flops(small_cnn)
        sparse = sparse_forward_flops(small_cnn,
                                      pattern=ordered_pattern(small_cnn, 0.5))
        assert 0 < sparse < dense

    def test_uniform_ratio_equivalent_scaling(self, small_cnn):
        half = sparse_forward_flops(small_cnn, uniform_ratio=0.5)
        quarter = sparse_forward_flops(small_cnn, uniform_ratio=0.25)
        assert quarter < half

    def test_pattern_and_ratio_mutually_exclusive(self, small_cnn):
        with pytest.raises(ValueError):
            sparse_forward_flops(small_cnn,
                                 pattern=full_pattern(small_cnn),
                                 uniform_ratio=0.5)

    def test_no_sparsity_equals_dense(self, small_cnn):
        assert sparse_forward_flops(small_cnn) == dense_forward_flops(small_cnn)

    def test_training_flops_scale_with_iterations(self, small_cnn):
        once = local_training_flops(small_cnn, 100, 1, 10)
        thrice = local_training_flops(small_cnn, 100, 3, 10)
        assert thrice == pytest.approx(3 * once)

    def test_training_flops_invalid_args(self, small_cnn):
        with pytest.raises(ValueError):
            local_training_flops(small_cnn, 100, -1, 10)
        with pytest.raises(ValueError):
            local_training_flops(small_cnn, 100, 1, 0)

    def test_masked_parameter_count(self, small_cnn):
        total = masked_parameter_count(small_cnn)
        half = masked_parameter_count(small_cnn, ordered_pattern(small_cnn, 0.5))
        assert half < total == small_cnn.num_parameters

    def test_upload_and_download_bytes(self, small_cnn):
        dense_up = upload_bytes(small_cnn)
        sparse_up = upload_bytes(small_cnn, ordered_pattern(small_cnn, 0.5))
        assert sparse_up < dense_up
        assert download_bytes(small_cnn) == small_cnn.num_parameters * 4

    def test_local_round_cost_bundle(self, small_cnn):
        cost = local_round_cost(small_cnn, 50, 4, 10,
                                pattern=ordered_pattern(small_cnn, 0.5))
        assert cost.flops > 0
        assert cost.upload_bytes > 0
        assert cost.download_bytes == download_bytes(small_cnn)
        scaled = cost.scaled(2.0)
        assert scaled.flops == pytest.approx(2 * cost.flops)
