"""Device capability, cost and metrics simulation."""

from .cost import CostBreakdown, LocalCostModel
from .devices import (CAPABILITY_LEVELS, DEFAULT_BANDWIDTH_LEVELS,
                      HETEROGENEITY_PRESETS, MIN_AFFORDABLE_RATIO,
                      REFERENCE_BANDWIDTH_BYTES, REFERENCE_FLOPS_PER_SECOND,
                      DeviceFleet, DeviceProfile, VirtualDeviceFleet,
                      affordable_ratio, fleet_for_heterogeneity,
                      sample_device_fleet, sample_device_profile)
from .metrics import RoundRecord, TrainingHistory

__all__ = [
    "DeviceProfile",
    "DeviceFleet",
    "VirtualDeviceFleet",
    "sample_device_fleet",
    "sample_device_profile",
    "DEFAULT_BANDWIDTH_LEVELS",
    "fleet_for_heterogeneity",
    "CAPABILITY_LEVELS",
    "HETEROGENEITY_PRESETS",
    "MIN_AFFORDABLE_RATIO",
    "affordable_ratio",
    "REFERENCE_FLOPS_PER_SECOND",
    "REFERENCE_BANDWIDTH_BYTES",
    "LocalCostModel",
    "CostBreakdown",
    "RoundRecord",
    "TrainingHistory",
]
