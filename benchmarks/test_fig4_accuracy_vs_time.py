"""Figure 4: test accuracy versus simulated running time."""

from __future__ import annotations

import pytest

from repro.experiments import FIGURE3_METHODS, accuracy_vs_time

from conftest import bench_overrides, print_rows

DATASETS = ("mnist", "cifar10")


@pytest.mark.benchmark(group="figure4")
def test_fig4_accuracy_vs_time(benchmark):
    overrides = bench_overrides()

    def run():
        return {dataset: accuracy_vs_time(dataset, FIGURE3_METHODS, overrides)
                for dataset in DATASETS}

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for dataset, by_method in series.items():
        for method, points in by_method.items():
            rows.append({
                "dataset": dataset,
                "method": method,
                "final_accuracy": points[-1]["accuracy"],
                "total_time_seconds": points[-1]["time_seconds"],
            })
    print_rows("Figure 4: accuracy vs running time (series endpoints)", rows)
    for dataset, by_method in series.items():
        fedlps = by_method["fedlps"][-1]["time_seconds"]
        fedavg = by_method["fedavg"][-1]["time_seconds"]
        # FedLPS's rounds are cheaper than dense synchronous FedAvg rounds
        assert fedlps <= fedavg
