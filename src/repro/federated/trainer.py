"""Facade over the event-driven server core (:mod:`repro.server`).

Historically this module owned the whole synchronous round loop.  That loop
now lives in :class:`repro.server.scheduler.SyncScheduler`, one of several
schedulers (sync / fedasync / fedbuff) driving the
:class:`repro.server.core.ServerCore`; the trainer remains as the stable
public entry point that wires a strategy, dataset, executor and scenario
into the core and exposes the attributes tests and callers have always
used (``trainer.strategy``, ``trainer.context``, ``trainer.clients``, ...).

``config.aggregation`` selects the training shape:

* ``"sync"`` — the paper's synchronous round loop (select, fan out, wait
  for everyone, aggregate).  Bit-identical to the pre-refactor trainer.
* ``"fedasync"`` — FedAsync-style asynchronous aggregation: the server
  consumes client completions in simulated-time order and folds every
  arrival into the global model with the staleness-decayed weight
  ``alpha / (1 + staleness)^a``.
* ``"fedbuff"`` — FedBuff-style buffered aggregation: arrivals accumulate
  and are aggregated every ``buffer_size`` completions.

All three shapes share the executor fan-out (per-round client work crosses
the worker boundary through the shared-memory broadcast transport) and the
determinism contract: every decision is a pure function of
``(seed, round, client)``, so histories are bit-identical across the
serial/thread/process backends.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..data.dataset import FederatedDataset
from ..nn.model import Sequential
from ..parallel import Executor
from ..server.core import ServerCore
from ..systems.cost import LocalCostModel
from ..systems.devices import DeviceFleet
from ..systems.metrics import TrainingHistory
from .config import FederatedConfig
from .fleet import ClientFleet
from .strategy import Strategy, StrategyContext


class FederatedTrainer:
    """Runs a federated simulation for one strategy on one federated dataset.

    The trainer is a thin facade: construction builds a
    :class:`~repro.server.core.ServerCore` (model, clients, fleet, cost
    model, scenario engine, broadcast transport) and :meth:`run` hands it to
    the scheduler selected by ``config.aggregation``.  See the module
    docstring for the available training shapes.

    When an :class:`~repro.parallel.Executor` is supplied, per-round local
    updates and evaluation fan out across its workers; with a pool backend
    (``use_broadcast=True``, the default) the round-invariant payload ships
    through the shared-memory broadcast and each task only carries
    ``(client_id, client.state)`` plus two small handles.
    ``use_broadcast=False`` restores the legacy per-task payloads (every
    task carries its own pickled strategy copy) — the benchmark harness uses
    it to measure the bytes saved.
    """

    def __init__(self, strategy: Strategy, dataset: FederatedDataset,
                 model_builder: Callable[[], Sequential], *,
                 config: Optional[FederatedConfig] = None,
                 fleet: Optional[DeviceFleet] = None,
                 cost_model: Optional[LocalCostModel] = None,
                 executor: Optional[Executor] = None,
                 use_broadcast: bool = True) -> None:
        self.core = ServerCore(strategy, dataset, model_builder,
                               config=config, fleet=fleet,
                               cost_model=cost_model, executor=executor,
                               use_broadcast=use_broadcast)

    # ------------------------------------------------------------ delegates
    @property
    def strategy(self) -> Strategy:
        return self.core.strategy

    @property
    def dataset(self) -> FederatedDataset:
        return self.core.dataset

    @property
    def config(self) -> FederatedConfig:
        return self.core.config

    @property
    def executor(self) -> Optional[Executor]:
        return self.core.executor

    @property
    def use_broadcast(self) -> bool:
        return self.core.use_broadcast

    @property
    def fleet(self) -> DeviceFleet:
        return self.core.fleet

    @property
    def cost_model(self) -> LocalCostModel:
        return self.core.cost_model

    @property
    def scenario(self):
        return self.core.scenario

    @property
    def model(self) -> Sequential:
        return self.core.model

    @property
    def clients(self) -> ClientFleet:
        """The (possibly lazy) client fleet view, a ``Mapping[int, Client]``."""
        return self.core.clients

    @property
    def context(self) -> StrategyContext:
        return self.core.context

    # ------------------------------------------------------------------ run
    def run(self, *, checkpoint_dir: Optional[str] = None,
            checkpoint_every: int = 1, resume_from=None,
            stop_after_round: Optional[int] = None) -> TrainingHistory:
        """Execute the configured scheduler and return the history.

        The checkpoint knobs are forwarded to
        :meth:`repro.server.core.ServerCore.run`: ``checkpoint_dir`` turns
        on round-boundary checkpointing, ``resume_from`` (``"auto"``, a
        path, or a loaded checkpoint) continues an interrupted run
        bit-identically, ``stop_after_round`` is the deterministic
        preemption used by the resume tests.
        """
        return self.core.run(checkpoint_dir=checkpoint_dir,
                             checkpoint_every=checkpoint_every,
                             resume_from=resume_from,
                             stop_after_round=stop_after_round)

    def evaluate_personalized(self) -> float:
        """Average accuracy of every client's inference model on its test shard."""
        return self.core.evaluate_personalized()

    def close(self) -> None:
        """Release broadcast resources (recreated lazily if needed again)."""
        self.core.close()


def run_federated(strategy: Strategy, dataset: FederatedDataset,
                  model_builder: Callable[[], Sequential], *,
                  config: Optional[FederatedConfig] = None,
                  fleet: Optional[DeviceFleet] = None,
                  cost_model: Optional[LocalCostModel] = None,
                  executor: Optional[Executor] = None,
                  use_broadcast: bool = True,
                  checkpoint_dir: Optional[str] = None,
                  checkpoint_every: int = 1, resume_from=None,
                  stop_after_round: Optional[int] = None) -> TrainingHistory:
    """Convenience wrapper: build a trainer and run it."""
    trainer = FederatedTrainer(strategy, dataset, model_builder, config=config,
                               fleet=fleet, cost_model=cost_model,
                               executor=executor, use_broadcast=use_broadcast)
    return trainer.run(checkpoint_dir=checkpoint_dir,
                       checkpoint_every=checkpoint_every,
                       resume_from=resume_from,
                       stop_after_round=stop_after_round)
