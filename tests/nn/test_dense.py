"""Unit tests for the Dense layer."""

import numpy as np
import pytest

from repro.nn import Dense


def numeric_gradient(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = x[idx]
        x[idx] = original + eps
        plus = f()
        x[idx] = original - eps
        minus = f()
        x[idx] = original
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


class TestDenseForward:
    def test_output_shape(self):
        layer = Dense(5, 3, name="d")
        out = layer.forward(np.ones((4, 5)))
        assert out.shape == (4, 3)

    def test_linear_map_matches_manual_computation(self):
        layer = Dense(3, 2, name="d")
        x = np.array([[1.0, 2.0, -1.0]])
        expected = x @ layer.params["W"] + layer.params["b"]
        np.testing.assert_allclose(layer.forward(x), expected)

    def test_rejects_wrong_input_width(self):
        layer = Dense(3, 2, name="d")
        with pytest.raises(ValueError):
            layer.forward(np.ones((2, 4)))

    def test_rejects_non_positive_sizes(self):
        with pytest.raises(ValueError):
            Dense(0, 3)
        with pytest.raises(ValueError):
            Dense(3, -1)


class TestDenseBackward:
    def test_weight_gradient_matches_numeric(self):
        rng = np.random.default_rng(0)
        layer = Dense(4, 3, name="d", rng=rng)
        x = rng.standard_normal((5, 4))
        target = rng.standard_normal((5, 3))

        def loss():
            return 0.5 * float(np.sum((layer.forward(x) - target) ** 2))

        layer.zero_grad()
        out = layer.forward(x)
        layer.backward(out - target)
        numeric = numeric_gradient(loss, layer.params["W"])
        np.testing.assert_allclose(layer.grads["W"], numeric, atol=1e-5)

    def test_bias_gradient_matches_numeric(self):
        rng = np.random.default_rng(1)
        layer = Dense(3, 2, name="d", rng=rng)
        x = rng.standard_normal((4, 3))
        target = rng.standard_normal((4, 2))

        def loss():
            return 0.5 * float(np.sum((layer.forward(x) - target) ** 2))

        layer.zero_grad()
        out = layer.forward(x)
        layer.backward(out - target)
        numeric = numeric_gradient(loss, layer.params["b"])
        np.testing.assert_allclose(layer.grads["b"], numeric, atol=1e-5)

    def test_input_gradient_shape(self):
        layer = Dense(4, 3, name="d")
        out = layer.forward(np.ones((2, 4)))
        grad_in = layer.backward(np.ones_like(out))
        assert grad_in.shape == (2, 4)

    def test_backward_before_forward_raises(self):
        layer = Dense(4, 3, name="d")
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((2, 3)))


class TestDenseUnits:
    def test_n_units_equals_output_features(self):
        assert Dense(4, 7, name="d").n_units == 7

    def test_non_sparsifiable_layer_has_zero_units(self):
        assert Dense(4, 7, name="d", sparsifiable=False).n_units == 0

    def test_gate_zeroes_selected_columns(self):
        layer = Dense(3, 4, name="d")
        gate = np.array([1.0, 0.0, 1.0, 0.0])
        layer.set_unit_gate(gate)
        out = layer.forward(np.ones((2, 3)))
        assert np.all(out[:, 1] == 0.0)
        assert np.all(out[:, 3] == 0.0)

    def test_gate_gradient_accumulates(self):
        layer = Dense(3, 2, name="d")
        layer.set_unit_gate(np.ones(2))
        layer.zero_grad()
        layer.forward(np.ones((2, 3)))
        layer.backward(np.ones((2, 2)))
        assert layer.unit_gate_grad is not None
        assert layer.unit_gate_grad.shape == (2,)

    def test_wrong_gate_shape_rejected(self):
        layer = Dense(3, 2, name="d")
        with pytest.raises(ValueError):
            layer.set_unit_gate(np.ones(3))

    def test_expand_unit_mask_shapes(self):
        layer = Dense(3, 4, name="d")
        masks = layer.expand_unit_mask(np.array([1, 0, 1, 0], dtype=float))
        assert masks["W"].shape == (3, 4)
        assert masks["b"].shape == (4,)
        assert np.all(masks["W"][:, 1] == 0)
        assert np.all(masks["b"][[0, 2]] == 1)

    def test_unit_weight_magnitude(self):
        layer = Dense(2, 2, name="d")
        layer.params["W"] = np.array([[1.0, -2.0], [3.0, 0.5]])
        layer.params["b"] = np.array([0.5, -0.5])
        np.testing.assert_allclose(layer.unit_weight_magnitude(), [4.5, 3.0])


class TestDenseAccounting:
    def test_flops(self):
        layer = Dense(10, 5, name="d")
        flops, shape = layer.flops_per_example((10,))
        assert flops == 2 * 10 * 5
        assert shape == (5,)

    def test_flops_rejects_non_flat_input(self):
        layer = Dense(10, 5, name="d")
        with pytest.raises(ValueError):
            layer.flops_per_example((2, 5))
