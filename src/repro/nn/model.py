"""Sequential model container with structured-unit introspection."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .base import Array, Layer
from .params import ParamDict, copy_params


@dataclass(frozen=True)
class UnitGroup:
    """Description of one sparsifiable layer's units.

    Attributes:
        layer_name: name of the owning layer.
        n_units: number of structurally prunable units (neurons / channels /
            hidden units) in that layer.
        offset: index of the group's first unit in the model-wide flattened
            unit vector (the importance indicator ``Q`` of the paper).
    """

    layer_name: str
    n_units: int
    offset: int


class Sequential:
    """A plain feed-forward stack of layers.

    Besides the usual ``forward`` / ``backward`` / parameter bookkeeping, the
    model exposes the *unit layout* required by structured sparsification:
    the ordered list of sparsifiable layers, the total number of units ``J``
    and conversion between model-wide unit vectors and per-layer slices.
    """

    def __init__(self, layers: Sequence[Layer], *, input_shape: Tuple[int, ...],
                 name: str = "model") -> None:
        if not layers:
            raise ValueError("a model needs at least one layer")
        names = [layer.name for layer in layers]
        if len(set(names)) != len(names):
            raise ValueError(f"layer names must be unique, got {names}")
        self.name = name
        self.layers: List[Layer] = list(layers)
        self.input_shape = tuple(input_shape)
        self._unit_groups = self._build_unit_groups()

    # ------------------------------------------------------------- forward
    def forward(self, x: Array, *, train: bool = True) -> Array:
        out = x
        for layer in self.layers:
            out = layer.forward(out, train=train)
        return out

    def backward(self, grad_out: Array) -> Array:
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    # ---------------------------------------------------------- parameters
    def get_parameters(self) -> ParamDict:
        """Snapshot of all trainable parameters keyed ``"layer.param"``."""
        snapshot: ParamDict = {}
        for layer in self.layers:
            for key, value in layer.params.items():
                snapshot[f"{layer.name}.{key}"] = np.array(value, copy=True)
        return snapshot

    def set_parameters(self, params: Mapping[str, np.ndarray]) -> None:
        """Load a parameter snapshot produced by :meth:`get_parameters`."""
        for layer in self.layers:
            for key in layer.params:
                full_key = f"{layer.name}.{key}"
                if full_key not in params:
                    raise KeyError(f"missing parameter {full_key!r}")
                value = np.asarray(params[full_key], dtype=np.float64)
                if value.shape != layer.params[key].shape:
                    raise ValueError(
                        f"shape mismatch for {full_key!r}: "
                        f"{value.shape} vs {layer.params[key].shape}")
                layer.params[key] = np.array(value, copy=True)

    def get_gradients(self) -> ParamDict:
        """Snapshot of accumulated parameter gradients."""
        grads: ParamDict = {}
        for layer in self.layers:
            for key, value in layer.grads.items():
                grads[f"{layer.name}.{key}"] = np.array(value, copy=True)
        return grads

    def apply_gradient_step(self, optimizer, *, grads: Optional[ParamDict] = None) -> None:
        """Apply one optimizer step using the model's accumulated gradients.

        ``grads`` may override the accumulated gradients (e.g. after masking).
        """
        params_by_key = {}
        for layer in self.layers:
            for key in layer.params:
                params_by_key[f"{layer.name}.{key}"] = layer.params[key]
        optimizer.step(params_by_key, grads if grads is not None else self.get_gradients())

    @property
    def num_parameters(self) -> int:
        return int(sum(v.size for layer in self.layers for v in layer.params.values()))

    def parameter_shapes(self) -> Dict[str, Tuple[int, ...]]:
        return {f"{layer.name}.{key}": value.shape
                for layer in self.layers for key, value in layer.params.items()}

    # --------------------------------------------------------------- units
    def _build_unit_groups(self) -> List[UnitGroup]:
        groups: List[UnitGroup] = []
        offset = 0
        for layer in self.layers:
            if layer.sparsifiable and layer.n_units > 0:
                groups.append(UnitGroup(layer.name, layer.n_units, offset))
                offset += layer.n_units
        return groups

    @property
    def unit_groups(self) -> List[UnitGroup]:
        return list(self._unit_groups)

    @property
    def total_units(self) -> int:
        """``J`` in the paper: the number of sparsifiable units in the model."""
        return int(sum(group.n_units for group in self._unit_groups))

    def layer_by_name(self, name: str) -> Layer:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no layer named {name!r}")

    def split_unit_vector(self, vector: Array) -> Dict[str, np.ndarray]:
        """Split a model-wide unit vector into per-layer slices."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.total_units,):
            raise ValueError(
                f"unit vector must have shape ({self.total_units},), got {vector.shape}")
        return {group.layer_name: vector[group.offset:group.offset + group.n_units]
                for group in self._unit_groups}

    def join_unit_vector(self, per_layer: Mapping[str, np.ndarray]) -> np.ndarray:
        """Concatenate per-layer unit values into a model-wide vector."""
        parts = []
        for group in self._unit_groups:
            if group.layer_name not in per_layer:
                raise KeyError(f"missing unit values for layer {group.layer_name!r}")
            values = np.asarray(per_layer[group.layer_name], dtype=np.float64)
            if values.shape != (group.n_units,):
                raise ValueError(
                    f"unit values for {group.layer_name!r} must have shape "
                    f"({group.n_units},), got {values.shape}")
            parts.append(values)
        return np.concatenate(parts) if parts else np.zeros(0)

    def set_unit_gates(self, gates: Optional[Mapping[str, np.ndarray]]) -> None:
        """Install per-layer unit gates; ``None`` clears all gates."""
        for group in self._unit_groups:
            layer = self.layer_by_name(group.layer_name)
            layer.set_unit_gate(None if gates is None else gates.get(group.layer_name))

    def gate_gradients(self) -> Dict[str, np.ndarray]:
        """Collect accumulated d(loss)/d(gate) for all sparsifiable layers."""
        grads: Dict[str, np.ndarray] = {}
        for group in self._unit_groups:
            layer = self.layer_by_name(group.layer_name)
            grad = layer.unit_gate_grad
            grads[group.layer_name] = (np.zeros(group.n_units) if grad is None
                                       else np.array(grad, copy=True))
        return grads

    def expand_unit_masks(self, unit_masks: Mapping[str, np.ndarray]) -> ParamDict:
        """Expand per-layer unit masks into a parameter-level binary mask.

        Parameters of non-sparsifiable layers are fully retained (mask of
        ones), which matches the paper's treatment of the output layer.
        """
        mask: ParamDict = {}
        for layer in self.layers:
            if layer.sparsifiable and layer.n_units > 0 and layer.name in unit_masks:
                layer_masks = layer.expand_unit_mask(unit_masks[layer.name])
            else:
                layer_masks = {}
            for key, value in layer.params.items():
                mask[f"{layer.name}.{key}"] = layer_masks.get(
                    key, np.ones_like(value))
        return mask

    def unit_weight_magnitudes(self) -> Dict[str, np.ndarray]:
        """Per-unit sum of absolute parameter values, ``|omega|_J`` in Eq. (8)."""
        return {group.layer_name:
                self.layer_by_name(group.layer_name).unit_weight_magnitude()
                for group in self._unit_groups}

    # ---------------------------------------------------------- accounting
    def flops_per_example(self) -> int:
        """Dense forward FLOPs for one example (training cost models scale this)."""
        shape = self.input_shape
        total = 0
        for layer in self.layers:
            flops, shape = layer.flops_per_example(shape)
            total += flops
        return total

    def layer_flops(self) -> Dict[str, int]:
        """Per-layer dense forward FLOPs for one example."""
        shape = self.input_shape
        breakdown: Dict[str, int] = {}
        for layer in self.layers:
            flops, shape = layer.flops_per_example(shape)
            breakdown[layer.name] = flops
        return breakdown

    # ------------------------------------------------------------- utility
    def clone_parameters(self) -> ParamDict:
        return copy_params(self.get_parameters())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        inner = ", ".join(type(layer).__name__ for layer in self.layers)
        return f"Sequential(name={self.name!r}, layers=[{inner}])"
