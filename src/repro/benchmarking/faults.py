"""Fault-tolerance benchmark: chaos-run cost and determinism per backend.

``repro bench --fault-scale`` pins the contract of the supervised execution
layer (:mod:`repro.parallel.supervision` / :mod:`repro.parallel.faults`):

* a chaos run — injected exceptions, worker crashes and hangs, retried
  under supervision — must produce a **bit-identical history on every
  backend**, including the process pool where crashes kill real workers;
* when every injected fault is recovered by a retry (``fault_exhausted``
  stays 0), the chaos history with the ``fault_*`` accounting stripped must
  be **byte-equal to the fault-free run** — supervision must never perturb
  the math it protects;
* the wall-clock overhead of surviving the chaos (retries, backoff, pool
  replenishment) must stay within a budgeted factor of the clean run.

The report lands in ``BENCH_faults.json``, schema-compatible with the
``BENCH_fanout``/``BENCH_checkpoint`` family (``bench_scale``,
``cpu_count``, per-cell ``seconds``), so future PRs have a trajectory to
move.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, Iterable, Optional

from ..parallel import resolve_executor
from ..parallel.faults import available_fault_plans

#: chaos may cost this factor of the clean run plus the absolute slack —
#: real sleeps are capped (hang budget, wall-clock backoff cap), so the
#: overhead is dominated by retried task work and pool respawns
GATE_OVERHEAD_FACTOR = 5.0
GATE_OVERHEAD_SLACK_SECONDS = 10.0

#: backends every fault cell times (serial is the reference semantics;
#: process is where crashes/hangs are realized for real)
BENCH_BACKENDS = ("serial", "thread", "process")

#: supervision knobs of the chaos run: enough retries that the default
#: plans recover every fault at the bench workload size
BENCH_MAX_RETRIES = 4
BENCH_TASK_TIMEOUT = 60.0


def fault_preset(scale: float = 1.0, *, plan: Optional[str] = None,
                 seed: int = 0):
    """The bench workload: a small supervised mnist run, chaos optional."""
    from ..experiments.presets import preset_for, scaled

    return scaled(
        preset_for("mnist"),
        num_clients=8,
        num_rounds=max(2, int(round(3 * scale))),
        clients_per_round=4,
        local_iterations=max(1, int(round(2 * scale))),
        examples_per_client=max(8, int(round(20 * scale))),
        eval_clients=0,
        seed=seed,
        fault_plan=plan,
        max_retries=BENCH_MAX_RETRIES if plan is not None else 0,
        task_timeout=BENCH_TASK_TIMEOUT if plan is not None else None)


def _history_digest(history, *, strip_faults: bool = False) -> str:
    payload = history.to_dict()
    if strip_faults:
        for record in payload["records"]:
            record["extras"] = {key: value
                                for key, value in record["extras"].items()
                                if not key.startswith("fault_")}
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _fault_totals(history) -> Dict[str, float]:
    totals: Dict[str, float] = {}
    for record in history.records:
        for key, value in record.extras.items():
            if key.startswith("fault_"):
                totals[key] = totals.get(key, 0.0) + float(value)
    return totals


def measure_faults(backend: str, *, scale: float = 1.0,
                   plan: str = "chaos", seed: int = 0,
                   workers: int = 2) -> Dict[str, object]:
    """Time one backend's clean run and chaos run; digest both histories."""
    from ..experiments.runner import run_method

    cell: Dict[str, object] = {"backend": backend, "workers": workers}
    for label, preset in (("clean", fault_preset(scale, seed=seed)),
                          ("chaos", fault_preset(scale, plan=plan,
                                                 seed=seed))):
        executor = (None if backend == "serial"
                    else resolve_executor(backend, workers))
        try:
            start = time.perf_counter()
            history = run_method("fedlps", preset, executor=executor)
            seconds = time.perf_counter() - start
        finally:
            if executor is not None:
                executor.close()
        cell[f"{label}_seconds"] = seconds
        cell[f"{label}_digest"] = _history_digest(history)
        if label == "chaos":
            cell["chaos_stripped_digest"] = _history_digest(
                history, strip_faults=True)
            cell["fault_totals"] = _fault_totals(history)
    # "seconds" is the family-wide headline column: the chaos run's cost
    cell["seconds"] = cell["chaos_seconds"]
    return cell


def _gate(cells: Dict[str, Dict[str, object]]) -> Dict[str, object]:
    """Pass/fail: determinism across backends, clean equivalence, budget."""
    if not cells:
        return {"pass": False, "reason": "no backend cells"}
    chaos_digests = {cell["chaos_digest"] for cell in cells.values()}
    clean_digests = {cell["clean_digest"] for cell in cells.values()}
    serial = cells.get("serial") or next(iter(cells.values()))
    totals = serial["fault_totals"]
    injected = (totals.get("fault_retries", 0.0)
                + totals.get("fault_exhausted", 0.0))
    crashes = totals.get("fault_worker_restarts", 0.0)
    exhausted = totals.get("fault_exhausted", 0.0)
    # all-retries-succeed ⇒ stripped chaos history == fault-free history
    equivalent = all(cell["chaos_stripped_digest"] == cell["clean_digest"]
                     for cell in cells.values())
    budgets = {
        backend: float(cell["clean_seconds"]) * GATE_OVERHEAD_FACTOR
                 + GATE_OVERHEAD_SLACK_SECONDS
        for backend, cell in cells.items()}
    within_budget = all(float(cells[backend]["chaos_seconds"])
                        <= budgets[backend] for backend in cells)
    verdict = (len(chaos_digests) == 1 and len(clean_digests) == 1
               and injected > 0 and crashes > 0 and exhausted == 0
               and equivalent and within_budget)
    return {
        "pass": bool(verdict),
        "chaos_bit_identical": len(chaos_digests) == 1,
        "clean_bit_identical": len(clean_digests) == 1,
        "faults_injected": injected,
        "worker_restarts": crashes,
        "exhausted": exhausted,
        "clean_equivalent": equivalent,
        "within_budget": within_budget,
        "overhead_factor_budget": GATE_OVERHEAD_FACTOR,
        "overhead_slack_seconds": GATE_OVERHEAD_SLACK_SECONDS,
    }


def run_fault_bench(scale: float = 1.0, *, plan: str = "chaos",
                    backends: Optional[Iterable[str]] = None,
                    seed: int = 0,
                    output: Optional[str] = None) -> Dict[str, object]:
    """Run the fault benchmark and return (optionally write) the report.

    ``scale`` multiplies the workload (rounds, local iterations, shard
    size), the same convention as the other ``repro bench`` axes.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    if plan not in available_fault_plans():
        raise ValueError(f"unknown fault plan {plan!r}; "
                         f"choose from {available_fault_plans()}")
    cells: Dict[str, Dict[str, object]] = {}
    for backend in (backends if backends is not None else BENCH_BACKENDS):
        cells[backend] = measure_faults(backend, scale=scale, plan=plan,
                                        seed=seed)
    report: Dict[str, object] = {
        "bench_scale": scale,
        "fault_plan": plan,
        "max_retries": BENCH_MAX_RETRIES,
        "task_timeout": BENCH_TASK_TIMEOUT,
        "python": platform.python_version(),
        "platform": sys.platform,
        "cpu_count": os.cpu_count(),
        "backends": cells,
        "gate": _gate(cells),
    }
    if output:
        Path(output).write_text(json.dumps(report, indent=2, sort_keys=True))
    return report


def format_fault_report(report: Dict[str, object]) -> str:
    """Render a fault report as the aligned text table the CLI prints."""
    lines = [f"# repro bench --fault-scale {report['bench_scale']} — "
             f"plan {report['fault_plan']}, cpu_count {report['cpu_count']}"]
    header = (f"{'backend':>8s} | {'clean_s':>8s} | {'chaos_s':>8s} | "
              f"{'retries':>7s} | {'restarts':>8s} | {'timeouts':>8s} | "
              f"{'exhausted':>9s}")
    lines += [header, "-" * len(header)]
    for cell in report["backends"].values():
        totals = cell["fault_totals"]
        lines.append(
            f"{cell['backend']:>8s} | "
            f"{cell['clean_seconds']:>8.3f} | "
            f"{cell['chaos_seconds']:>8.3f} | "
            f"{totals.get('fault_retries', 0.0):>7.0f} | "
            f"{totals.get('fault_worker_restarts', 0.0):>8.0f} | "
            f"{totals.get('fault_timeouts', 0.0):>8.0f} | "
            f"{totals.get('fault_exhausted', 0.0):>9.0f}")
    gate = report["gate"]
    if "chaos_bit_identical" in gate:
        lines.append(
            f"gate: chaos bit-identical {gate['chaos_bit_identical']}, "
            f"clean-equivalent {gate['clean_equivalent']}, "
            f"{gate['faults_injected']:.0f} fault(s) injected "
            f"({gate['worker_restarts']:.0f} crash(es)), "
            f"budget {'ok' if gate['within_budget'] else 'BLOWN'} "
            f"-> {'PASS' if gate['pass'] else 'FAIL'}")
    else:
        lines.append(f"gate: FAIL ({gate.get('reason', 'unknown')})")
    return "\n".join(lines)
