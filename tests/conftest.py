"""Shared fixtures for the test suite: tiny datasets, models and configs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import build_federated_dataset
from repro.federated import FederatedConfig
from repro.models import build_cnn, build_mlp
from repro.systems import sample_device_fleet


@pytest.fixture(scope="session")
def small_fed_dataset():
    """A small synthetic MNIST-style federation shared across tests."""
    return build_federated_dataset("mnist", num_clients=6,
                                   examples_per_client=40, seed=0)


@pytest.fixture(scope="session")
def reddit_fed_dataset():
    """A small synthetic Reddit-style federation shared across tests."""
    return build_federated_dataset("reddit", num_clients=4,
                                   examples_per_client=40, seed=0)


@pytest.fixture()
def tiny_config():
    """A federated config small enough for per-test training runs."""
    return FederatedConfig(num_rounds=3, clients_per_round=2,
                           local_iterations=2, batch_size=8,
                           learning_rate=0.1, seed=0)


@pytest.fixture()
def small_cnn():
    """A small CNN matching the MNIST-style input shape."""
    return build_cnn(1, 16, 10, channels=(4, 8), hidden_dim=16, seed=0)


@pytest.fixture()
def small_mlp():
    """A small MLP for fast gradient and sparsity tests."""
    return build_mlp(12, [16, 8], 4, seed=0)


@pytest.fixture()
def small_fleet(small_fed_dataset):
    """Device fleet matching the small federation."""
    return sample_device_fleet(small_fed_dataset.num_clients, seed=0)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
