"""Activation layers and activation helper functions."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import Array, Layer, as_float


def sigmoid(x: Array) -> Array:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    exp_x = np.exp(x[~pos])
    out[~pos] = exp_x / (1.0 + exp_x)
    return out


def softmax(logits: Array, axis: int = -1) -> Array:
    """Softmax along ``axis`` with the usual max-shift for stability."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


class ReLU(Layer):
    """Rectified linear unit."""

    trainable = False

    def __init__(self, name: str = "relu") -> None:
        super().__init__(name)
        self._mask: Array | None = None

    def forward(self, x: Array, *, train: bool = True) -> Array:
        x = as_float(x)
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_out: Array) -> Array:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._mask


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    trainable = False

    def __init__(self, name: str = "tanh") -> None:
        super().__init__(name)
        self._out: Array | None = None

    def forward(self, x: Array, *, train: bool = True) -> Array:
        self._out = np.tanh(as_float(x))
        return self._out

    def backward(self, grad_out: Array) -> Array:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad_out * (1.0 - self._out ** 2)


class Sigmoid(Layer):
    """Logistic sigmoid activation."""

    trainable = False

    def __init__(self, name: str = "sigmoid") -> None:
        super().__init__(name)
        self._out: Array | None = None

    def forward(self, x: Array, *, train: bool = True) -> Array:
        self._out = sigmoid(as_float(x))
        return self._out

    def backward(self, grad_out: Array) -> Array:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._out * (1.0 - self._out)


class Dropout(Layer):
    """Inverted dropout; active only when ``train=True``."""

    trainable = False

    def __init__(self, rate: float, name: str = "dropout", seed: int = 0) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        super().__init__(name)
        self.rate = rate
        self._rng = np.random.default_rng(seed)
        self._mask: Array | None = None

    def forward(self, x: Array, *, train: bool = True) -> Array:
        x = as_float(x)
        if not train or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: Array) -> Array:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


class Flatten(Layer):
    """Flatten all non-batch dimensions."""

    trainable = False

    def __init__(self, name: str = "flatten") -> None:
        super().__init__(name)
        self._input_shape: Tuple[int, ...] | None = None

    def forward(self, x: Array, *, train: bool = True) -> Array:
        x = as_float(x)
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: Array) -> Array:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        return grad_out.reshape(self._input_shape)

    def flops_per_example(self, input_shape):
        return 0, (int(np.prod(input_shape)),)
