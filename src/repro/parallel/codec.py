"""Pluggable wire codecs for the parameter round trip.

Every model delta used to travel the broadcast/return path as dense float64.
This module gives both directions a codec layer (``FederatedConfig.codec``):

* ``dense`` — the identity codec: raw blocks, byte-for-byte the historical
  wire format.  The default, and the only codec the golden fixtures run.
* ``sparse`` — lossless ``(mask o values)`` indexed-slice deltas.  A sparse
  upload (a FedLPS residual, a masked HeteroFL update) is mostly zeros; the
  wire format stores two packed bitmaps (which positions carry an explicit
  value, which are exactly ``-0.0``) plus the packed values.  Decoding
  yields :class:`IndexedSlices` that the aggregation kernels reduce
  *without densifying*; densification is lazy and per key when a consumer
  really needs the full array.  ``decode(encode(x))`` is bit-identical for
  every input — ``-0.0`` and NaN payloads included — which is what lets the
  golden-history suite run every fixture through this codec unchanged.
* ``int8`` — ALPT-style learned-scale low-precision blocks: one int8 code
  per element with a per-array scale refined by least squares
  (``s = sum(x*q) / sum(q*q)``), floored at ``max|x| / 127`` so no code
  ever clips.  Lossy, with a per-block reconstruction-error certificate
  measured at encode time and carried in the block metadata.
* ``pq`` — product-quantization codebooks for embedding-shaped (2-D, many
  rows) arrays: rows are split into small sub-vectors, each quantized to
  one of ``k`` learned centroids (deterministic k-means, fixed seed and
  iteration count), so the wire carries uint8 codes plus a tiny codebook.
  Arrays that are not embedding-shaped fall back to the int8 encoding.

Losslessness is a *per-codec contract* (:attr:`Codec.lossless`), enforced
by the conformance suite in ``tests/parallel/test_codec.py``: lossless
codecs must satisfy bit-exact ``decode(encode(x)) == x`` on arbitrary
arrays; lossy codecs must be deterministic (same input, same bytes) and
must honour the error bound they certify in ``EncodedBlock.meta``.

Every codec guards the byte budget the same way: if an encoding would not
beat the dense representation, the block ships ``raw`` instead — so
``wire_nbytes <= dense_nbytes`` always holds and a dense upload under the
``sparse`` codec costs exactly what it costs under ``dense``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Tuple

import numpy as np

#: sign-bit-only patterns of the IEEE-754 float widths numpy ships; used to
#: tell ``-0.0`` (bit pattern nonzero, value zero) from true zeros so the
#: sparse codec stays bit-exact on the ``(g - w) * mask`` residuals FedLPS
#: uploads, which are full of negative zeros at off-mask positions
_SIGN_BITS = {
    np.dtype(np.float16): (np.uint16, np.uint16(0x8000)),
    np.dtype(np.float32): (np.uint32, np.uint32(0x80000000)),
    np.dtype(np.float64): (np.uint64, np.uint64(0x8000000000000000)),
}

#: least-squares refinement steps of the int8 learned scale (ALPT-style)
_INT8_SCALE_ITERS = 3

#: product quantization: sub-vector width, centroids per subspace, Lloyd
#: iterations and the fixed seed of the deterministic k-means init
_PQ_SUBDIM = 2
_PQ_CENTROIDS = 16
_PQ_ITERS = 8
_PQ_SEED = 0xC0DEC
#: minimum rows for an array to count as embedding-shaped (else int8)
_PQ_MIN_ROWS = 32


# ------------------------------------------------------------------- wire
@dataclass(frozen=True)
class EncodedBlock:
    """One parameter array in wire form.

    ``arrays`` are the contiguous sub-arrays that actually cross the wire
    (bitmaps, packed values, codes, codebooks); ``meta`` is a small tuple of
    picklable scalars the decoder needs (scale, error bound, flags).  The
    logical ``dtype``/``shape`` always describe the *decoded* array.
    """

    codec: str
    dtype: str
    shape: Tuple[int, ...]
    arrays: Tuple[np.ndarray, ...]
    meta: Tuple = ()

    @property
    def size(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1

    @property
    def dense_nbytes(self) -> int:
        """Bytes of the dense representation this block replaces."""
        return self.size * np.dtype(self.dtype).itemsize

    @property
    def wire_nbytes(self) -> int:
        """Bytes that actually cross the wire."""
        return int(sum(array.nbytes for array in self.arrays))

    @property
    def stored_values(self) -> int:
        """Explicitly stored scalar values (= nonzeros for ``sparse``)."""
        if self.codec == "sparse":
            return int(self.arrays[-1].size)
        return self.size


@dataclass(frozen=True)
class EncodedParams:
    """A parameter dictionary in wire form: one encoded block per key."""

    blocks: Dict[str, EncodedBlock]

    @property
    def wire_nbytes(self) -> int:
        return sum(block.wire_nbytes for block in self.blocks.values())

    @property
    def dense_nbytes(self) -> int:
        return sum(block.dense_nbytes for block in self.blocks.values())

    @property
    def stored_values(self) -> int:
        return sum(block.stored_values for block in self.blocks.values())

    @property
    def total_size(self) -> int:
        return sum(block.size for block in self.blocks.values())


@dataclass(frozen=True)
class IndexedSlices:
    """A decoded sparse array: explicit entries by flat index.

    ``value_indices``/``values`` carry the positions whose stored value is
    neither ``+0.0`` nor ``-0.0``; ``negzero_indices`` the positions that
    are exactly ``-0.0`` (everything else is ``+0.0``).  Keeping the two
    apart is what makes the representation bit-exact *and* lets reducers
    treat the ``-0.0`` positions as the no-ops they numerically are.
    """

    shape: Tuple[int, ...]
    dtype: str
    value_indices: np.ndarray
    values: np.ndarray
    negzero_indices: np.ndarray

    def densify(self) -> np.ndarray:
        dense = np.zeros(int(np.prod(self.shape, dtype=np.int64)),
                         dtype=self.dtype)
        if self.negzero_indices.size:
            dense[self.negzero_indices] = np.array(-0.0, dtype=self.dtype)
        if self.value_indices.size:
            dense[self.value_indices] = self.values
        return dense.reshape(self.shape)


class DecodedParams(Mapping):
    """Lazily-densifying view of decoded blocks.

    Behaves as a ``Mapping[str, np.ndarray]`` — any consumer that treats an
    update as a plain parameter dictionary keeps working, paying the dense
    materialization per key on first access — while codec-aware reducers
    call :meth:`slices` to get the :class:`IndexedSlices` of a sparse key
    and never densify at all.  Picklable (the dense cache is dropped and
    rebuilt deterministically), so FedBuff buffers holding decoded updates
    checkpoint cleanly.
    """

    def __init__(self, blocks: Dict[str, EncodedBlock]) -> None:
        self._blocks = blocks
        self._dense: Dict[str, np.ndarray] = {}

    def slices(self, key: str) -> Optional[IndexedSlices]:
        """The indexed form of ``key``, or None when the block is dense."""
        block = self._blocks[key]
        if block.codec != "sparse":
            return None
        return _sparse_decode(block)

    def __getitem__(self, key: str) -> np.ndarray:
        dense = self._dense.get(key)
        if dense is None:
            dense = self._dense[key] = decode_block(self._blocks[key])
        return dense

    def __iter__(self) -> Iterator[str]:
        return iter(self._blocks)

    def __len__(self) -> int:
        return len(self._blocks)

    def __reduce__(self):
        return (DecodedParams, (self._blocks,))


# ----------------------------------------------------------- block helpers
def _raw_block(array: np.ndarray) -> EncodedBlock:
    contiguous = np.ascontiguousarray(array)
    return EncodedBlock(codec="raw", dtype=array.dtype.str,
                        shape=tuple(array.shape), arrays=(contiguous,))


def _nonzero_masks(flat: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(has-explicit-value, is-negative-zero) masks by *bit pattern*.

    Float comparison would call ``-0.0 == 0.0`` and drop NaNs; viewing the
    bits catches ``-0.0`` and preserves NaN payloads exactly.
    """
    sign = _SIGN_BITS.get(flat.dtype)
    if sign is None:
        return flat != 0, np.zeros(flat.shape, dtype=bool)
    uint_type, sign_bit = sign
    bits = flat.view(uint_type)
    negzero = bits == sign_bit
    return (bits != 0) & ~negzero, negzero


def _sparse_encode(array: np.ndarray) -> EncodedBlock:
    flat = np.ascontiguousarray(array).reshape(-1)
    value_mask, negzero_mask = _nonzero_masks(flat)
    values = flat[value_mask]
    has_negzero = bool(negzero_mask.any())
    bitmap = np.packbits(value_mask)
    arrays = [bitmap]
    if has_negzero:
        arrays.append(np.packbits(negzero_mask))
    arrays.append(values)
    wire = sum(part.nbytes for part in arrays)
    if wire >= flat.nbytes:
        return _raw_block(array)
    return EncodedBlock(codec="sparse", dtype=array.dtype.str,
                        shape=tuple(array.shape), arrays=tuple(arrays),
                        meta=(has_negzero,))


def _sparse_decode(block: EncodedBlock) -> IndexedSlices:
    (has_negzero,) = block.meta
    size = block.size
    value_bits = np.unpackbits(block.arrays[0], count=size).view(bool)
    value_indices = np.flatnonzero(value_bits)
    if has_negzero:
        negzero_bits = np.unpackbits(block.arrays[1], count=size).view(bool)
        negzero_indices = np.flatnonzero(negzero_bits)
    else:
        negzero_indices = np.zeros(0, dtype=np.int64)
    return IndexedSlices(shape=block.shape, dtype=block.dtype,
                         value_indices=value_indices,
                         values=block.arrays[-1],
                         negzero_indices=negzero_indices)


def _int8_encode(array: np.ndarray) -> EncodedBlock:
    if array.dtype not in _SIGN_BITS or array.size == 0 \
            or not np.isfinite(array).all():
        return _raw_block(array)
    flat = np.ascontiguousarray(array).reshape(-1).astype(np.float64)
    amax = float(np.max(np.abs(flat)))
    if amax == 0.0:
        block = EncodedBlock(codec="int8", dtype=array.dtype.str,
                             shape=tuple(array.shape),
                             arrays=(np.zeros(0, dtype=np.int8),),
                             meta=(0.0, 0.0))
        return block if block.wire_nbytes < array.nbytes else _raw_block(array)
    floor = amax / 127.0
    scale = floor
    for _ in range(_INT8_SCALE_ITERS):
        codes = np.rint(flat / scale)
        denominator = float(np.dot(codes, codes))
        if denominator == 0.0:
            break
        # the floor guarantees |x|/scale <= 127, so rint never clips and the
        # half-step error bound below holds unconditionally
        scale = max(float(np.dot(flat, codes)) / denominator, floor)
    codes = np.rint(flat / scale).astype(np.int8)
    decoded = (scale * codes.astype(np.float64)).astype(array.dtype)
    bound = float(np.max(np.abs(flat - decoded.astype(np.float64))))
    block = EncodedBlock(codec="int8", dtype=array.dtype.str,
                         shape=tuple(array.shape), arrays=(codes,),
                         meta=(scale, bound))
    if block.wire_nbytes >= array.nbytes:
        return _raw_block(array)
    return block


def _int8_decode(block: EncodedBlock) -> np.ndarray:
    scale, _ = block.meta
    if block.arrays[0].size == 0:
        return np.zeros(block.shape, dtype=block.dtype)
    decoded = scale * block.arrays[0].astype(np.float64)
    return decoded.astype(block.dtype).reshape(block.shape)


def _pq_train(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic Lloyd k-means of one subspace: (codebook, codes)."""
    n = matrix.shape[0]
    rng = np.random.default_rng(_PQ_SEED)
    centroids = matrix[np.sort(rng.choice(n, size=_PQ_CENTROIDS,
                                          replace=False))].copy()
    for _ in range(_PQ_ITERS):
        distances = np.linalg.norm(matrix[:, None, :] - centroids[None, :, :],
                                   axis=2)
        codes = np.argmin(distances, axis=1)
        for centroid_index in range(_PQ_CENTROIDS):
            members = codes == centroid_index
            if members.any():
                centroids[centroid_index] = matrix[members].mean(axis=0)
            else:
                # deterministic re-seed: the row farthest from its centroid
                # (ties resolved by argmax's lowest index)
                farthest = int(np.argmax(distances[np.arange(n), codes]))
                centroids[centroid_index] = matrix[farthest]
    distances = np.linalg.norm(matrix[:, None, :] - centroids[None, :, :],
                               axis=2)
    codes = np.argmin(distances, axis=1)
    return centroids, codes.astype(np.uint8)


def _pq_encode(array: np.ndarray) -> EncodedBlock:
    embedding_shaped = (array.ndim == 2 and array.dtype in _SIGN_BITS
                        and array.shape[0] >= max(_PQ_MIN_ROWS,
                                                  2 * _PQ_CENTROIDS)
                        and array.shape[1] >= 1
                        and np.isfinite(array).all())
    if not embedding_shaped:
        return _int8_encode(array)
    rows, cols = array.shape
    matrix = np.ascontiguousarray(array).astype(np.float64)
    codebooks = []
    code_columns = []
    for start in range(0, cols, _PQ_SUBDIM):
        codebook, codes = _pq_train(matrix[:, start:start + _PQ_SUBDIM])
        codebooks.append(codebook)
        code_columns.append(codes)
    codes = np.stack(code_columns, axis=1).astype(np.uint8)
    # subspace codebooks may have unequal widths (odd trailing column), so
    # they travel flattened with the widths in the metadata; float32 on the
    # wire — the codebook is the fixed cost of the format, and the cast is
    # part of the (measured) reconstruction error like any other rounding
    widths = tuple(book.shape[1] for book in codebooks)
    codebook_array = np.concatenate(
        [book.reshape(-1) for book in codebooks]).astype(np.float32)
    decoded = _pq_reconstruct(block_shape=(rows, cols), widths=widths,
                              codebook_array=codebook_array, codes=codes)
    bound = float(np.max(np.abs(matrix - decoded)))
    block = EncodedBlock(codec="pq", dtype=array.dtype.str,
                         shape=tuple(array.shape),
                         arrays=(codes, codebook_array),
                         meta=(widths, bound))
    fallback = _int8_encode(array)
    return block if block.wire_nbytes < fallback.wire_nbytes else fallback


def _pq_reconstruct(block_shape: Tuple[int, int], widths: Tuple[int, ...],
                    codebook_array: np.ndarray, codes: np.ndarray
                    ) -> np.ndarray:
    rows, cols = block_shape
    decoded = np.empty((rows, cols), dtype=np.float64)
    offset = 0
    start = 0
    for subspace, width in enumerate(widths):
        codebook = codebook_array[offset:offset + _PQ_CENTROIDS * width] \
            .reshape(_PQ_CENTROIDS, width)
        decoded[:, start:start + width] = codebook[codes[:, subspace]]
        offset += _PQ_CENTROIDS * width
        start += width
    return decoded


def _pq_decode(block: EncodedBlock) -> np.ndarray:
    widths, _ = block.meta
    codes, codebook_array = block.arrays
    decoded = _pq_reconstruct(block_shape=block.shape, widths=tuple(widths),
                              codebook_array=codebook_array, codes=codes)
    return decoded.astype(block.dtype)


def decode_block(block: EncodedBlock) -> np.ndarray:
    """Decode one block to its dense array (any codec tag)."""
    if block.codec == "raw":
        return block.arrays[0].reshape(block.shape)
    if block.codec == "sparse":
        return _sparse_decode(block).densify()
    if block.codec == "int8":
        return _int8_decode(block)
    if block.codec == "pq":
        return _pq_decode(block)
    raise ValueError(f"unknown block codec {block.codec!r}")


# ------------------------------------------------------------------ codecs
class Codec:
    """One wire format: per-array encode, dict-level encode/decode."""

    name = "base"
    lossless = False

    def encode_array(self, array: np.ndarray) -> EncodedBlock:
        raise NotImplementedError

    def encode(self, params: Mapping[str, np.ndarray]) -> EncodedParams:
        return EncodedParams(blocks={key: self.encode_array(params[key])
                                     for key in sorted(params)})

    def decode(self, encoded: EncodedParams):
        """Decoded parameters: a plain dict, or a lazy indexed mapping.

        When any block carries indexed slices the result is a
        :class:`DecodedParams` so reducers can consume the sparse form
        without densifying; otherwise a plain ``{key: ndarray}`` dict.
        """
        if any(block.codec == "sparse"
               for block in encoded.blocks.values()):
            return DecodedParams(encoded.blocks)
        return {key: decode_block(block)
                for key, block in encoded.blocks.items()}


class DenseCodec(Codec):
    name = "dense"
    lossless = True

    def encode_array(self, array: np.ndarray) -> EncodedBlock:
        return _raw_block(array)


class SparseCodec(Codec):
    name = "sparse"
    lossless = True

    def encode_array(self, array: np.ndarray) -> EncodedBlock:
        return _sparse_encode(array)


class Int8Codec(Codec):
    name = "int8"
    lossless = False

    def encode_array(self, array: np.ndarray) -> EncodedBlock:
        return _int8_encode(array)


class PQCodec(Codec):
    name = "pq"
    lossless = False

    def encode_array(self, array: np.ndarray) -> EncodedBlock:
        return _pq_encode(array)


CODECS: Dict[str, Codec] = {codec.name: codec for codec in
                            (DenseCodec(), SparseCodec(), Int8Codec(),
                             PQCodec())}

#: codecs whose decode(encode(x)) is bit-identical for every input — the
#: only ones allowed anywhere near the golden-fixture contract by default
LOSSLESS_CODECS = tuple(name for name, codec in CODECS.items()
                        if codec.lossless)


def available_codecs() -> Tuple[str, ...]:
    """Names accepted by ``FederatedConfig.codec`` / the CLI."""
    return tuple(CODECS)


def resolve_codec(name: str) -> Codec:
    """The codec registered under ``name``."""
    key = str(name).lower()
    if key not in CODECS:
        raise ValueError(f"unknown codec {name!r}; "
                         f"choose from {tuple(CODECS)}")
    return CODECS[key]
