"""Figure 8: running time under different system-heterogeneity levels."""

from __future__ import annotations

import pytest

from repro.experiments import heterogeneity_sweep

from conftest import bench_overrides, print_rows

METHODS = ("fedavg", "fedmp", "fedspa", "fedlps")
LEVELS = ("low", "median", "high")


@pytest.mark.benchmark(group="figure8")
def test_fig8_heterogeneity_time(benchmark):
    overrides = bench_overrides()

    def run():
        return heterogeneity_sweep(dataset="cifar10", levels=LEVELS,
                                   methods=METHODS, overrides=overrides)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_rows("Figure 8: running time vs system heterogeneity", rows)

    def time_of(method, level):
        return next(r["total_time_seconds"] for r in rows
                    if r["method"] == method and r["heterogeneity"] == level)

    # dense synchronous FL does not get faster as heterogeneity grows
    # (stragglers), and FedLPS stays cheaper than FedAvg at the highest
    # heterogeneity level.  The 0.6 slack absorbs bandwidth sampling noise in
    # the small CI-sized fleets.
    assert time_of("fedavg", "high") >= time_of("fedavg", "low") * 0.6
    assert time_of("fedlps", "high") <= time_of("fedavg", "high")
