"""JSON-on-disk cache of experiment results, keyed by their full spec.

Rebuilding the paper's figure grid re-runs many (method, preset) pairs; the
cache makes those rebuilds incremental.  A run is identified by the complete
specification that determines its outcome — method name, every preset field
(including the seed) and any strategy constructor overrides — hashed into a
stable key.  Because simulations are bit-deterministic, a cache hit is
indistinguishable from a re-run.

The on-disk format is one human-readable JSON file per run, carrying both the
spec (for inspection and collision checks) and the serialized
:class:`~repro.systems.metrics.TrainingHistory`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional, Union

from ..systems.metrics import TrainingHistory
# canonicalize moved to the neutral ``repro.util`` module so the checkpoint
# digest and the cache keys share one definition of "the same spec";
# re-exported here for the callers that historically imported it from us.
from ..util import canonicalize  # noqa: F401  (re-export)
from .presets import ExperimentPreset

#: bump when the simulator's numerics change in a way that invalidates runs
#: (2: scenario engine — RoundRecord gained sim_time/dropped/stragglers and
#: presets gained the scenario field).  The event-driven server core (PR 4)
#: did NOT bump: synchronous numerics are bit-identical to version 2, and
#: presets gaining the ``aggregation`` field already changes every spec dict,
#: so stale entries miss on the spec comparison rather than colliding.
CACHE_VERSION = 2

DEFAULT_CACHE_DIR = ".repro-cache"


def run_spec(method: str, preset: ExperimentPreset,
             strategy_kwargs: Optional[dict] = None) -> Dict[str, object]:
    """The canonical, JSON-serializable description of one run."""
    return {
        "version": CACHE_VERSION,
        "method": method,
        "preset": canonicalize(asdict(preset)),
        "strategy_kwargs": canonicalize(dict(strategy_kwargs or {})),
    }


def spec_key(spec: Dict[str, object]) -> str:
    """Stable content hash of a run spec."""
    canonical = json.dumps(canonicalize(spec), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory-backed store mapping run specs to training histories."""

    def __init__(self, directory: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # ----------------------------------------------------------------- paths
    def path_for(self, method: str, preset: ExperimentPreset,
                 strategy_kwargs: Optional[dict] = None) -> Path:
        spec = run_spec(method, preset, strategy_kwargs)
        digest = spec_key(spec)[:16]
        safe_method = "".join(c if c.isalnum() else "_" for c in method)
        return self.directory / f"{safe_method}-{preset.dataset}-{digest}.json"

    # ------------------------------------------------------------------- api
    def get(self, method: str, preset: ExperimentPreset,
            strategy_kwargs: Optional[dict] = None) -> Optional[TrainingHistory]:
        """The cached history for this spec, or None on a miss."""
        spec = run_spec(method, preset, strategy_kwargs)
        path = self.path_for(method, preset, strategy_kwargs)
        if not path.exists():
            self.misses += 1
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if payload.get("spec") != spec:
            # stale format or (vanishingly unlikely) truncated-hash collision
            self.misses += 1
            return None
        self.hits += 1
        return TrainingHistory.from_dict(payload["history"])

    def put(self, method: str, preset: ExperimentPreset,
            strategy_kwargs: Optional[dict], history: TrainingHistory) -> Path:
        """Persist one run's history; returns the file written."""
        spec = run_spec(method, preset, strategy_kwargs)
        path = self.path_for(method, preset, strategy_kwargs)
        payload = {"spec": spec, "history": history.to_dict()}
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        tmp.replace(path)  # atomic publish so concurrent readers never see a torn file
        return path

    def clear(self) -> int:
        """Delete every cached run; returns the number of files removed."""
        removed = 0
        for path in self.directory.glob("*.json"):
            path.unlink()
            removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def __repr__(self) -> str:
        return (f"ResultCache({str(self.directory)!r}, entries={len(self)}, "
                f"hits={self.hits}, misses={self.misses})")
