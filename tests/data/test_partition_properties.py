"""Property-based tests (hypothesis) for the non-IID partitioners.

The invariants every partitioner must uphold:

* the client index sets are pairwise disjoint,
* together they cover the dataset exactly (no example lost or duplicated),
* the pathological partition gives each client at most ``classes_per_client``
  distinct labels (and exactly that many when the data allows it),
* the Dirichlet partition honours its ``min_examples`` floor.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Dataset
from repro.data.partition import (dirichlet_partition, iid_partition,
                                  pathological_partition)


def label_dataset(num_classes: int, examples_per_class: int,
                  seed: int) -> Dataset:
    """A tiny labelled dataset with a balanced, shuffled label vector."""
    rng = np.random.default_rng(seed)
    y = rng.permutation(np.repeat(np.arange(num_classes), examples_per_class))
    x = rng.standard_normal((len(y), 3))
    return Dataset(x, y)


def assert_exact_cover(partitions, dataset):
    """Disjointness + coverage: the partition is a bijection onto indices."""
    merged = np.concatenate([np.asarray(part) for part in partitions]) \
        if partitions else np.zeros(0, dtype=np.int64)
    assert len(merged) == len(dataset), "examples lost or duplicated"
    assert len(np.unique(merged)) == len(merged), "index assigned twice"
    assert set(merged.tolist()) == set(range(len(dataset)))


@given(num_clients=st.integers(min_value=1, max_value=12),
       num_classes=st.integers(min_value=2, max_value=6),
       examples_per_class=st.integers(min_value=4, max_value=12),
       seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=40, deadline=None)
def test_iid_partition_is_an_exact_cover(num_clients, num_classes,
                                         examples_per_class, seed):
    dataset = label_dataset(num_classes, examples_per_class, seed)
    partitions = iid_partition(dataset, num_clients, seed=seed)
    assert len(partitions) == num_clients
    assert_exact_cover(partitions, dataset)
    # the deal is even: client sizes differ by at most one example
    sizes = [len(part) for part in partitions]
    assert max(sizes) - min(sizes) <= 1


@given(num_clients=st.integers(min_value=1, max_value=10),
       num_classes=st.integers(min_value=2, max_value=6),
       classes_per_client=st.integers(min_value=1, max_value=6),
       examples_per_class=st.integers(min_value=6, max_value=14),
       seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=40, deadline=None)
def test_pathological_partition_properties(num_clients, num_classes,
                                           classes_per_client,
                                           examples_per_class, seed):
    classes_per_client = min(classes_per_client, num_classes)
    dataset = label_dataset(num_classes, examples_per_class, seed)
    if num_clients * classes_per_client < num_classes:
        # coverage is impossible: rejecting beats silently dropping classes
        with pytest.raises(ValueError):
            pathological_partition(dataset, num_clients, classes_per_client,
                                   seed=seed)
        return
    partitions = pathological_partition(dataset, num_clients,
                                        classes_per_client, seed=seed)
    assert len(partitions) == num_clients
    assert_exact_cover(partitions, dataset)
    labels = dataset.y
    for part in partitions:
        distinct = np.unique(labels[np.asarray(part, dtype=np.int64)]) \
            if len(part) else np.zeros(0)
        # label-skew contract: never more classes than requested
        assert len(distinct) <= classes_per_client


@given(num_classes=st.integers(min_value=2, max_value=6),
       examples_per_class=st.integers(min_value=6, max_value=14),
       seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=25, deadline=None)
def test_pathological_partition_uses_all_requested_classes(
        num_classes, examples_per_class, seed):
    # with one client per class bundle and ample data, every client gets
    # exactly classes_per_client distinct labels
    dataset = label_dataset(num_classes, examples_per_class, seed)
    classes_per_client = 2 if num_classes >= 2 else 1
    partitions = pathological_partition(dataset, num_clients=num_classes,
                                        classes_per_client=classes_per_client,
                                        seed=seed)
    labels = dataset.y
    for part in partitions:
        assert len(part) > 0
        distinct = np.unique(labels[np.asarray(part, dtype=np.int64)])
        assert len(distinct) == classes_per_client


@given(num_clients=st.integers(min_value=2, max_value=8),
       num_classes=st.integers(min_value=2, max_value=5),
       alpha=st.floats(min_value=0.1, max_value=10.0),
       min_examples=st.integers(min_value=1, max_value=3),
       seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=40, deadline=None)
def test_dirichlet_partition_properties(num_clients, num_classes, alpha,
                                        min_examples, seed):
    # enough data that the retry loop can satisfy the floor
    dataset = label_dataset(num_classes, examples_per_class=20, seed=seed)
    try:
        partitions = dirichlet_partition(dataset, num_clients, alpha,
                                         seed=seed, min_examples=min_examples)
    except RuntimeError:
        # the partitioner is allowed to give up, but never to hand back a
        # partition violating the floor — covered below
        return
    assert len(partitions) == num_clients
    assert_exact_cover(partitions, dataset)
    assert all(len(part) >= min_examples for part in partitions)


def test_dirichlet_raises_rather_than_violating_min_size():
    # 2 examples cannot give 4 clients 2 examples each
    dataset = label_dataset(num_classes=2, examples_per_class=1, seed=0)
    try:
        partitions = dirichlet_partition(dataset, num_clients=4, alpha=0.1,
                                         seed=0, min_examples=2)
    except RuntimeError:
        return
    raise AssertionError(
        f"expected RuntimeError, got partition sizes "
        f"{[len(p) for p in partitions]}")


@given(num_clients=st.integers(min_value=2, max_value=8),
       seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=25, deadline=None)
def test_partitions_are_deterministic_in_the_seed(num_clients, seed):
    dataset = label_dataset(3, 8, seed)
    for partition in (lambda: iid_partition(dataset, num_clients, seed=seed),
                      lambda: pathological_partition(dataset, num_clients, 2,
                                                     seed=seed)):
        first = partition()
        second = partition()
        assert all(np.array_equal(a, b) for a, b in zip(first, second))
