"""The importance-associated regularization loss of FedLPS (Eq. 6-9).

``L_k = L_tr + mu * L_pr + lambda * L_ir`` where

* ``L_tr`` is the task loss of the *masked* model (Eq. 6),
* ``L_pr = ||omega - omega_global||^2`` keeps local parameters close to the
  global model (Eq. 7),
* ``L_ir = ||Q - sigmoid(|omega|_J)||^2`` keeps the importance indicator from
  drifting or over-sharpening (Eq. 8).

The helpers below compute the extra loss values and their parameter
gradients so the client update can add them to the task gradients produced
by back-propagation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

import numpy as np

from ..nn.params import ParamDict


@dataclass(frozen=True)
class LossBreakdown:
    """The three components of the FedLPS local loss for reporting."""

    task: float
    proximal: float
    importance: float

    @property
    def total(self) -> float:
        return self.task + self.proximal + self.importance


def proximal_loss(params: Mapping[str, np.ndarray],
                  reference: Mapping[str, np.ndarray], mu: float) -> float:
    """``mu * ||omega - omega_ref||^2`` (Eq. 7 weighted by ``mu``)."""
    if mu < 0:
        raise ValueError("mu must be non-negative")
    total = 0.0
    for key in params:
        diff = params[key] - reference[key]
        total += float(np.sum(diff ** 2))
    return mu * total


def proximal_gradient(params: Mapping[str, np.ndarray],
                      reference: Mapping[str, np.ndarray], mu: float) -> ParamDict:
    """Gradient of the proximal term with respect to the parameters."""
    if mu < 0:
        raise ValueError("mu must be non-negative")
    return {key: 2.0 * mu * (params[key] - reference[key]) for key in params}


def add_gradients(base: Mapping[str, np.ndarray],
                  extra: Mapping[str, np.ndarray]) -> ParamDict:
    """Sum two gradient dictionaries that share the same keys."""
    return {key: base[key] + extra[key] for key in base}


def combine_unit_gradients(task_gate_grads: Mapping[str, np.ndarray],
                           regularizer_grads: Mapping[str, np.ndarray]
                           ) -> Dict[str, np.ndarray]:
    """Total gradient of the loss with respect to the importance indicator.

    The task contribution arrives through the unit gates (straight-through
    estimate of Eq. 4's step function); the regularizer contribution comes
    from Eq. (8).
    """
    combined: Dict[str, np.ndarray] = {}
    for name in task_gate_grads:
        combined[name] = np.asarray(task_gate_grads[name], dtype=np.float64) + \
            np.asarray(regularizer_grads[name], dtype=np.float64)
    return combined
