"""Performance benchmarking harness (``repro bench``)."""

from .batch import (batch_preset, format_batch_report, measure_batching,
                    run_batch_bench)
from .checkpoint import (format_checkpoint_report, measure_checkpoint,
                         run_checkpoint_bench)
from .codec import format_codec_report, measure_codec, run_codec_bench
from .dist import (dist_preset, format_dist_report, measure_dist_cell,
                   measure_shard_balance, run_dist_bench)
from .fanout import (BENCH_METHOD, fanout_preset, format_bench_report,
                     measure_aggregation_modes, measure_fanout_bytes,
                     run_fanout_bench)
from .faults import (fault_preset, format_fault_report, measure_faults,
                     run_fault_bench)
from .fleet import (fleet_preset, format_fleet_report, measure_construction,
                    measure_smoke, run_fleet_bench)

__all__ = [
    "BENCH_METHOD",
    "batch_preset",
    "format_batch_report",
    "measure_batching",
    "run_batch_bench",
    "format_checkpoint_report",
    "measure_checkpoint",
    "run_checkpoint_bench",
    "format_codec_report",
    "measure_codec",
    "run_codec_bench",
    "dist_preset",
    "format_dist_report",
    "measure_dist_cell",
    "measure_shard_balance",
    "run_dist_bench",
    "fanout_preset",
    "format_bench_report",
    "measure_aggregation_modes",
    "measure_fanout_bytes",
    "run_fanout_bench",
    "fault_preset",
    "format_fault_report",
    "measure_faults",
    "run_fault_bench",
    "fleet_preset",
    "format_fleet_report",
    "measure_construction",
    "measure_smoke",
    "run_fleet_bench",
]
