"""Unit + property tests for the deterministic fault-injection plans."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import (FAULT_PLANS, FaultDecision, FaultPlan,
                            InjectedTaskError, SimulatedCrash, SimulatedHang,
                            apply_fault, available_fault_plans,
                            build_fault_plan)


class TestFaultPlanValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            FaultPlan(exception_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(crash_rate=1.5)

    def test_fault_rates_must_sum_to_at_most_one(self):
        with pytest.raises(ValueError):
            FaultPlan(exception_rate=0.5, crash_rate=0.4, hang_rate=0.2)

    def test_seconds_must_be_non_negative(self):
        with pytest.raises(ValueError):
            FaultPlan(hang_seconds=-1.0)

    def test_default_plan_is_fault_free(self):
        plan = FaultPlan()
        decisions = [plan.decide(r, c, a)
                     for r in range(3) for c in range(8) for a in range(2)]
        assert all(d.kind == "none" for d in decisions)
        assert not any(d.faulty for d in decisions)


class TestNamedPlans:
    def test_registry_names_are_sorted_and_stable(self):
        assert available_fault_plans() == sorted(FAULT_PLANS)
        assert {"chaos", "crashy", "hang-prone",
                "poison-task"} <= set(FAULT_PLANS)

    def test_build_fault_plan_seeds_the_plan(self):
        plan = build_fault_plan("crashy", seed=7)
        assert plan.seed == 7
        assert plan.crash_rate > 0

    def test_unknown_plan_rejected(self):
        with pytest.raises(ValueError, match="unknown fault plan"):
            build_fault_plan("meteor-strike")

    def test_poison_plan_fails_every_attempt(self):
        """Poisoned tasks draw without the attempt: retries never save them."""
        plan = build_fault_plan("poison-task", seed=0)
        poisoned = [(r, c) for r in range(20) for c in range(8)
                    if plan.decide(r, c, 0).kind == "exception"
                    and plan.decide(r, c, 50).kind == "exception"]
        # the poison_rate makes at least some (round, client) pairs sticky
        sticky = [key for key in poisoned
                  if all(plan.decide(key[0], key[1], a).kind == "exception"
                         for a in range(6))]
        assert sticky, "poison-task must produce retry-proof exceptions"


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), round_index=st.integers(0, 10_000),
       client_id=st.integers(0, 10**6), attempt=st.integers(0, 16))
def test_decide_is_pure(seed, round_index, client_id, attempt):
    """Decisions are a pure function of (seed, round, client, attempt)."""
    plan = FaultPlan(seed=seed, exception_rate=0.2, crash_rate=0.2,
                     hang_rate=0.2, slow_rate=0.2)
    first = plan.decide(round_index, client_id, attempt)
    again = FaultPlan(seed=seed, exception_rate=0.2, crash_rate=0.2,
                      hang_rate=0.2, slow_rate=0.2).decide(
        round_index, client_id, attempt)
    assert first == again
    assert first.kind in ("none", "exception", "crash", "hang", "slow")


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_neighbouring_coordinates_draw_independently(seed):
    """Different (round, client, attempt) coordinates get their own draws."""
    plan = FaultPlan(seed=seed, exception_rate=0.25, crash_rate=0.25,
                     hang_rate=0.25, slow_rate=0.25)
    kinds = {(r, c, a): plan.decide(r, c, a).kind
             for r in range(4) for c in range(4) for a in range(2)}
    # a constant mapping would mean the coordinates are ignored
    assert len(set(kinds.values())) > 1


class TestApplyFault:
    def test_none_is_a_no_op(self):
        assert apply_fault(FaultDecision()) is None

    def test_exception_raises_injected_task_error(self):
        with pytest.raises(InjectedTaskError):
            apply_fault(FaultDecision(kind="exception"))

    def test_simulated_crash_raises_instead_of_exiting(self):
        with pytest.raises(SimulatedCrash):
            apply_fault(FaultDecision(kind="crash"), real=False)

    def test_simulated_hang_raises_immediately(self):
        with pytest.raises(SimulatedHang):
            apply_fault(FaultDecision(kind="hang", seconds=30.0), real=False)

    def test_real_hang_sleep_is_budget_capped(self):
        import time

        start = time.perf_counter()
        with pytest.raises(SimulatedHang):
            apply_fault(FaultDecision(kind="hang", seconds=30.0),
                        real=True, budget=0.2)
        assert time.perf_counter() - start < 5.0

    def test_slow_decision_just_delays(self):
        assert apply_fault(FaultDecision(kind="slow", seconds=0.0),
                           real=True) is None
