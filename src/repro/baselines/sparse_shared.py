"""Heterogeneous sparse-training baselines with a *shared* (non-personalized)
inference model.

These methods extract differently-sized sub-models for differently-capable
clients, train the sub-models locally and merge them back into one global
model.  They differ in how the sparse ratio is chosen (rigid capability rule,
fixed, or bandit-driven) and in the sparse pattern (random, ordered, rolling,
magnitude, depth-wise, unstructured).
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Tuple

import numpy as np

from ..federated.aggregation import fedavg, masked_average
from ..federated.client import Client
from ..federated.local import train_locally
from ..federated.strategy import ClientUpdate, Strategy, StrategyContext
from ..nn.params import ParamDict, copy_params, multiply
from ..sparsity.masks import UnitPattern, build_parameter_mask
from ..sparsity.patterns import (depth_pattern, magnitude_pattern, ordered_pattern,
                                 random_pattern, rolling_pattern)
from ..systems.cost import CostBreakdown
from ..systems.devices import affordable_ratio


class SharedSparseStrategy(Strategy):
    """Common machinery for HeteroFL-style shared sparse training.

    Subclasses provide the per-client sparse ratio and pattern; this base
    handles masked local training, coverage-aware aggregation and the choice
    of evaluation model (the dense global model or the client's sub-model).
    """

    name = "shared_sparse"
    #: whether clients evaluate with their own sub-model or the dense global one
    evaluate_with_submodel = True

    def client_ratio(self, client: Client, round_index: int) -> float:
        """Sparse ratio assigned to ``client`` this round (default: capability)."""
        return affordable_ratio(client.capability)

    def client_pattern(self, client: Client, ratio: float,
                       round_index: int) -> UnitPattern:
        """Sparse pattern used by ``client`` this round."""
        raise NotImplementedError

    # --------------------------------------------------------- local update
    def local_update(self, round_index: int, client: Client) -> ClientUpdate:
        context = self._require_context()
        config = context.config
        ratio = float(np.clip(self.client_ratio(client, round_index), 0.05, 1.0))
        context.model.set_parameters(self.global_params)
        pattern = self.client_pattern(client, ratio, round_index)
        param_mask = build_parameter_mask(context.model, pattern)
        result = train_locally(
            context.model, self.global_params, client.train_data,
            iterations=config.local_iterations, batch_size=config.batch_size,
            learning_rate=config.learning_rate, momentum=config.momentum,
            clip_norm=config.clip_norm, pattern=pattern, param_mask=param_mask,
            rng=self._client_rng(round_index, client.client_id))
        client.state["pattern"] = pattern
        flops, upload, download = self._round_footprint(client, pattern=pattern)
        return ClientUpdate(
            client_id=client.client_id, params=multiply(result.params, param_mask),
            num_examples=client.num_train_examples,
            train_accuracy=result.train_accuracy, train_loss=result.train_loss,
            pattern=pattern, sparse_ratio=ratio, flops=flops,
            upload_bytes=upload, download_bytes=download)

    # ----------------------------------------------------------- aggregation
    def aggregate(self, round_index: int, updates: List[ClientUpdate]) -> None:
        if not updates:
            return
        context = self._require_context()
        masks = []
        for update in updates:
            context.model.set_parameters(self.global_params)
            masks.append(build_parameter_mask(context.model, update.pattern))
        self.global_params = masked_average(
            self.global_params, [u.params for u in updates], masks,
            [u.num_examples for u in updates])

    # ------------------------------------------------------------ evaluation
    def client_evaluation(self, client: Client) -> Tuple[ParamDict, Optional[UnitPattern]]:
        if self.evaluate_with_submodel and "pattern" in client.state:
            return self.global_params, client.state["pattern"]
        return self.global_params, None


class FedDropout(SharedSparseStrategy):
    """eFD / Federated Dropout: random structured sub-models sized by capability."""

    name = "efd"

    def client_pattern(self, client: Client, ratio: float,
                       round_index: int) -> UnitPattern:
        context = self._require_context()
        rng = self._client_rng(round_index, client.client_id)
        return random_pattern(context.model, ratio, rng=rng)


class FjORD(SharedSparseStrategy):
    """FjORD: ordered dropout with a width sampled at or below the capability."""

    name = "fjord"

    def client_ratio(self, client: Client, round_index: int) -> float:
        rng = self._client_rng(round_index, client.client_id)
        cap = affordable_ratio(client.capability)
        levels = [level for level in (1.0, 0.75, 0.5, 0.25) if level <= cap] or [cap]
        return float(rng.choice(levels))

    def client_pattern(self, client: Client, ratio: float,
                       round_index: int) -> UnitPattern:
        return ordered_pattern(self._require_context().model, ratio)


class HeteroFL(SharedSparseStrategy):
    """HeteroFL: static capability-sized ordered (nested) sub-models."""

    name = "heterofl"

    def client_pattern(self, client: Client, ratio: float,
                       round_index: int) -> UnitPattern:
        return ordered_pattern(self._require_context().model, ratio)


class FedRolex(SharedSparseStrategy):
    """FedRolex: rolling sub-model window so all units get trained over time."""

    name = "fedrolex"
    evaluate_with_submodel = False  # the server model is the inference model

    def client_pattern(self, client: Client, ratio: float,
                       round_index: int) -> UnitPattern:
        return rolling_pattern(self._require_context().model, ratio, round_index)


class DepthFL(SharedSparseStrategy):
    """DepthFL: weak clients drop the deepest layers instead of widths."""

    name = "depthfl"

    def client_pattern(self, client: Client, ratio: float,
                       round_index: int) -> UnitPattern:
        return depth_pattern(self._require_context().model, ratio)


class PruneFL(SharedSparseStrategy):
    """PruneFL: one shared magnitude-pruned model, periodically reconfigured.

    A powerful client performs the initial pruning (modelled by pruning the
    initial global model), every client then trains the same sub-model, and
    the mask is re-derived from global weight magnitudes every
    ``reconfigure_every`` rounds.
    """

    name = "prunefl"
    evaluate_with_submodel = True

    def __init__(self, keep_ratio: float = 0.8, reconfigure_every: int = 5) -> None:
        super().__init__()
        if not 0.0 < keep_ratio <= 1.0:
            raise ValueError("keep_ratio must be in (0, 1]")
        if reconfigure_every <= 0:
            raise ValueError("reconfigure_every must be positive")
        self.keep_ratio = keep_ratio
        self.reconfigure_every = reconfigure_every
        self._shared_pattern: Optional[UnitPattern] = None

    def setup(self, context: StrategyContext) -> None:
        super().setup(context)
        context.model.set_parameters(self.global_params)
        self._shared_pattern = magnitude_pattern(context.model, self.keep_ratio)

    def client_ratio(self, client: Client, round_index: int) -> float:
        return self.keep_ratio

    def client_pattern(self, client: Client, ratio: float,
                       round_index: int) -> UnitPattern:
        return self._shared_pattern

    def post_round(self, round_index: int, updates: List[ClientUpdate],
                   costs: Mapping[int, CostBreakdown]) -> None:
        if (round_index + 1) % self.reconfigure_every == 0:
            context = self._require_context()
            context.model.set_parameters(self.global_params)
            self._shared_pattern = magnitude_pattern(context.model, self.keep_ratio)

    def client_evaluation(self, client: Client):
        return self.global_params, self._shared_pattern


class ComplementSparsification(Strategy):
    """CS: unstructured complement sparsification of uploads (Jiang & Borcea).

    The server keeps a dense model; each client trains with an unstructured
    magnitude mask over the parameters (modelling the sparse local model) and
    uploads only the largest-magnitude fraction of its update.  Because the
    sparsity is unstructured it would need specialized hardware to realise
    speed-ups; the FLOP accounting still scales with the keep ratio, as the
    paper does when quoting CS's computation costs.
    """

    name = "cs"

    def __init__(self, keep_ratio: float = 0.5) -> None:
        super().__init__()
        if not 0.0 < keep_ratio <= 1.0:
            raise ValueError("keep_ratio must be in (0, 1]")
        self.keep_ratio = keep_ratio

    def _unstructured_mask(self, params: Mapping[str, np.ndarray]) -> ParamDict:
        """Global top-k magnitude mask over all parameter entries."""
        flat = np.concatenate([np.abs(value).ravel() for value in params.values()])
        keep = max(1, int(round(self.keep_ratio * flat.size)))
        threshold = np.partition(flat, flat.size - keep)[flat.size - keep]
        return {key: (np.abs(value) >= threshold).astype(np.float64)
                for key, value in params.items()}

    def local_update(self, round_index: int, client: Client) -> ClientUpdate:
        context = self._require_context()
        config = context.config
        mask = self._unstructured_mask(self.global_params)
        result = train_locally(
            context.model, self.global_params, client.train_data,
            iterations=config.local_iterations, batch_size=config.batch_size,
            learning_rate=config.learning_rate, momentum=config.momentum,
            clip_norm=config.clip_norm, param_mask=mask,
            rng=self._client_rng(round_index, client.client_id))
        flops, upload, download = self._round_footprint(
            client, uniform_ratio=self.keep_ratio)
        return ClientUpdate(
            client_id=client.client_id, params=result.params,
            num_examples=client.num_train_examples,
            train_accuracy=result.train_accuracy, train_loss=result.train_loss,
            sparse_ratio=self.keep_ratio, flops=flops,
            upload_bytes=upload * self.keep_ratio, download_bytes=download,
            extras={"mask_nonzero": float(sum(np.count_nonzero(m)
                                              for m in mask.values()))})

    def aggregate(self, round_index: int, updates: List[ClientUpdate]) -> None:
        if not updates:
            return
        merged = fedavg([u.params for u in updates],
                        [u.num_examples for u in updates])
        # complement: entries zeroed by every client's mask keep the old value
        for key in merged:
            untouched = merged[key] == 0.0
            merged[key][untouched] = self.global_params[key][untouched]
        self.global_params = merged


class FedMP(SharedSparseStrategy):
    """FedMP: adaptive model pruning with a UCB bandit over discrete ratios.

    Every client runs a UCB1 bandit over a small discrete set of sparse
    ratios; the reward trades accuracy improvement against local time, and the
    pattern is magnitude-based as in the original paper.
    """

    name = "fedmp"
    evaluate_with_submodel = False

    def __init__(self, arms: Tuple[float, ...] = (1.0, 0.75, 0.5, 0.25),
                 exploration: float = 1.0) -> None:
        super().__init__()
        if not arms:
            raise ValueError("arms must not be empty")
        self.arms = tuple(sorted(arms, reverse=True))
        self.exploration = exploration

    def init_client_state(self, client: Client) -> None:
        # The bandit bookkeeping lives in ``client.state`` (not on the
        # strategy) so that parallel local updates ship it back to the server
        # like every other per-client quantity.  Initialization is pure per
        # client, so a lazy fleet can defer it to first participation.
        context = self._require_context()
        n = len(self.arms)
        baseline = 100.0 / max(context.dataset.num_classes, 2)
        client.state["fedmp_counts"] = np.zeros(n)
        client.state["fedmp_rewards"] = np.zeros(n)
        client.state["fedmp_last_arm"] = None
        client.state["fedmp_last_accuracy"] = baseline

    def client_ratio(self, client: Client, round_index: int) -> float:
        counts = client.state["fedmp_counts"]
        rewards = client.state["fedmp_rewards"]
        feasible = [i for i, arm in enumerate(self.arms)
                    if arm <= max(affordable_ratio(client.capability), self.arms[-1])]
        if not feasible:
            feasible = [len(self.arms) - 1]
        unexplored = [i for i in feasible if counts[i] == 0]
        if unexplored:
            arm_index = unexplored[0]
        else:
            total = counts[feasible].sum()
            scores = [rewards[i] / counts[i]
                      + self.exploration * np.sqrt(2 * np.log(total) / counts[i])
                      for i in feasible]
            arm_index = feasible[int(np.argmax(scores))]
        client.state["fedmp_last_arm"] = arm_index
        return self.arms[arm_index]

    def client_pattern(self, client: Client, ratio: float,
                       round_index: int) -> UnitPattern:
        return magnitude_pattern(self._require_context().model, ratio)

    def post_round(self, round_index: int, updates: List[ClientUpdate],
                   costs: Mapping[int, CostBreakdown]) -> None:
        self._require_context()
        for update in updates:
            state = self._client_state(update.client_id)
            arm = state["fedmp_last_arm"]
            if arm is None:
                continue
            accuracy = 100.0 * update.train_accuracy
            gain = accuracy - state["fedmp_last_accuracy"]
            seconds = max(costs[update.client_id].total_seconds, 1e-9)
            state["fedmp_counts"][arm] += 1
            state["fedmp_rewards"][arm] += gain / seconds
            state["fedmp_last_accuracy"] = accuracy
