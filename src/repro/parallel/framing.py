"""Length-prefixed binary framing for the distributed socket backend.

Every message on a :class:`~repro.parallel.distributed.SocketExecutor`
connection is one *frame*: a fixed 13-byte header followed by an opaque
payload.  The header is ``magic (4s) | kind (B) | length (Q)`` in network
byte order; the magic pins the protocol (a peer speaking anything else
fails immediately instead of mis-framing), the kind tags what the payload
means (see :class:`FrameKind`), and the length is the exact payload byte
count.  Framing is deliberately dumb — no compression, no checksums, no
negotiation — because everything riding it (pickles, broadcast segment
bytes, codec wire blocks) is already a self-describing byte string.

The module is pure bytes-in/bytes-out so it can be tested exhaustively
without a socket: :func:`encode_frame` produces a frame, and
:class:`FrameDecoder` consumes an arbitrarily-chunked byte stream and
yields complete ``(kind, payload)`` pairs — TCP gives no message
boundaries, so the decoder must be (and is, property-tested) correct under
every possible split of the stream.  :func:`read_frame`/:func:`send_frame`
are the thin blocking-socket wrappers the executor and worker use.

Oversized frames are a protocol error, not an allocation: the decoder
checks the declared length against ``max_frame_bytes`` *before* buffering
the payload, so a corrupt (or hostile) header cannot ask the receiver to
allocate gigabytes.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

#: protocol magic: any connection not starting every frame with these four
#: bytes is not a repro peer (or the stream lost sync) — fail fast
MAGIC = b"RPF1"

_HEADER = struct.Struct(">4sBQ")
HEADER_BYTES = _HEADER.size

#: frames larger than this are refused on both send and receive; generous
#: enough for a full session broadcast (dataset blocks + pickled skeleton)
#: while still catching corrupt headers before they become allocations
MAX_FRAME_BYTES = 1 << 31


class FrameKind:
    """Frame type tags of the worker protocol (one byte on the wire).

    ``HELLO``/``WELCOME`` authenticate a connection (worker sends the
    shared token, server assigns a worker id).  ``TASK`` carries one
    pickled ``(task_id, fn, payload)``; the worker answers with exactly one
    ``RESULT`` or ``FAILED`` for it, interleaving any number of
    ``FETCH``/``BLOB`` exchanges before that to pull broadcast segments it
    has not cached (content-addressed by digest, so a segment is fetched
    once per worker per publication).  ``BYE`` is a clean shutdown in
    either direction.
    """

    HELLO = 1
    WELCOME = 2
    TASK = 3
    RESULT = 4
    FAILED = 5
    FETCH = 6
    BLOB = 7
    BYE = 8

    #: every tag a conforming peer may put on the wire
    ALL = (HELLO, WELCOME, TASK, RESULT, FAILED, FETCH, BLOB, BYE)


class FrameError(Exception):
    """A malformed frame: bad magic, unknown kind, or oversized length."""


class ConnectionClosed(Exception):
    """The peer went away (clean EOF or mid-frame truncation).

    ``partial`` distinguishes a socket that closed between frames (an
    orderly, if unannounced, departure) from one that died mid-frame
    (a killed worker, a cut cable): supervision treats both as a lost
    worker, but logs want the difference.
    """

    def __init__(self, message: str, *, partial: bool = False) -> None:
        super().__init__(message)
        self.partial = partial


def encode_frame(kind: int, payload: bytes,
                 max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """One wire-ready frame: header + payload."""
    if kind not in FrameKind.ALL:
        raise FrameError(f"unknown frame kind {kind!r}")
    if len(payload) > max_frame_bytes:
        raise FrameError(f"frame payload of {len(payload)} bytes exceeds "
                         f"the {max_frame_bytes}-byte limit")
    return _HEADER.pack(MAGIC, kind, len(payload)) + payload


class FrameDecoder:
    """Incremental frame parser over an arbitrarily-chunked byte stream.

    ``feed(data)`` buffers ``data`` and returns every frame completed by
    it, in order — zero, one or many; a frame split across any number of
    feeds is reassembled exactly.  The decoder validates the header as
    soon as the 13 header bytes are available, so bad magic and oversized
    lengths surface before their payloads are ever buffered.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        self._need: Optional[Tuple[int, int]] = None  # (kind, payload length)

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Tuple[int, bytes]]:
        self._buffer.extend(data)
        frames: List[Tuple[int, bytes]] = []
        while True:
            if self._need is None:
                if len(self._buffer) < HEADER_BYTES:
                    return frames
                magic, kind, length = _HEADER.unpack_from(self._buffer)
                if magic != MAGIC:
                    raise FrameError(
                        f"bad frame magic {bytes(magic)!r} (expected "
                        f"{MAGIC!r}) — peer is not speaking this protocol")
                if kind not in FrameKind.ALL:
                    raise FrameError(f"unknown frame kind {kind}")
                if length > self.max_frame_bytes:
                    raise FrameError(
                        f"declared frame length {length} exceeds the "
                        f"{self.max_frame_bytes}-byte limit")
                del self._buffer[:HEADER_BYTES]
                self._need = (kind, length)
            kind, length = self._need
            if len(self._buffer) < length:
                return frames
            payload = bytes(self._buffer[:length])
            del self._buffer[:length]
            self._need = None
            frames.append((kind, payload))


def send_frame(sock, kind: int, payload: bytes) -> None:
    """Write one frame to a blocking socket."""
    sock.sendall(encode_frame(kind, payload))


def _recv_exactly(sock, count: int, *, anything_read: bool) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            partial = anything_read or bool(chunks)
            raise ConnectionClosed(
                "peer closed the connection mid-frame" if partial
                else "peer closed the connection", partial=partial)
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock, max_frame_bytes: int = MAX_FRAME_BYTES
               ) -> Tuple[int, bytes]:
    """Read exactly one frame from a blocking socket.

    Raises :class:`ConnectionClosed` on EOF — ``partial=False`` when the
    stream ended cleanly between frames, ``partial=True`` when it died
    inside one — and :class:`FrameError` on a malformed header.
    """
    header = _recv_exactly(sock, HEADER_BYTES, anything_read=False)
    magic, kind, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise FrameError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if kind not in FrameKind.ALL:
        raise FrameError(f"unknown frame kind {kind}")
    if length > max_frame_bytes:
        raise FrameError(f"declared frame length {length} exceeds the "
                         f"{max_frame_bytes}-byte limit")
    payload = _recv_exactly(sock, length, anything_read=True) if length \
        else b""
    return kind, payload
