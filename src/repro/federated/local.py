"""Generic local SGD training used by every federated strategy.

The helper supports the ingredients the different baselines combine:

* plain dense SGD (FedAvg),
* proximal regularization towards a reference point (FedProx, Ditto),
* parameter-level masking so zeroed entries stay zero (sparse training),
* unit-gate patterns for structured sub-models (HeteroFL, FjORD, FedRolex),
* restricting updates to a subset of parameters (FedPer, FedRep heads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..data.dataset import Dataset
from ..nn import SGD, accuracy, softmax_cross_entropy
from ..nn.model import Sequential
from ..nn.params import ParamDict, add_, copy_params, multiply, scale_, subtract
from ..sparsity.masks import gates_from_pattern


@dataclass
class LocalUpdateResult:
    """Outcome of one client's local training pass."""

    params: ParamDict
    train_accuracy: float
    train_loss: float
    examples_seen: int


def iterate_batches(dataset: Dataset, batch_size: int, iterations: int, *,
                    rng: np.random.Generator) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield exactly ``iterations`` mini-batches, reshuffling when exhausted."""
    if iterations <= 0:
        return
    indices = rng.permutation(len(dataset))
    cursor = 0
    for _ in range(iterations):
        if cursor + batch_size > len(indices):
            indices = rng.permutation(len(dataset))
            cursor = 0
        batch = indices[cursor:cursor + batch_size]
        cursor += batch_size
        yield dataset.x[batch], dataset.y[batch]


def train_locally(model: Sequential, start_params: Mapping[str, np.ndarray],
                  dataset: Dataset, *, iterations: int, batch_size: int,
                  learning_rate: float, momentum: float = 0.0,
                  clip_norm: Optional[float] = None, prox_mu: float = 0.0,
                  prox_center: Optional[Mapping[str, np.ndarray]] = None,
                  param_mask: Optional[Mapping[str, np.ndarray]] = None,
                  pattern: Optional[Mapping[str, np.ndarray]] = None,
                  trainable_keys: Optional[Sequence[str]] = None,
                  rng: Optional[np.random.Generator] = None) -> LocalUpdateResult:
    """Run local SGD and return the resulting parameters and training stats.

    Args:
        model: the shared model object (its parameters are overwritten).
        start_params: parameters the client starts from.
        dataset: the client's local training shard.
        iterations: number of SGD steps (``E`` in the paper).
        batch_size: mini-batch size.
        learning_rate, momentum, clip_norm: optimizer settings.
        prox_mu: weight of the proximal term ``mu * ||w - w_center||^2``.
        prox_center: reference parameters of the proximal term (defaults to
            ``start_params`` when ``prox_mu > 0``).
        param_mask: binary parameter mask; masked entries are zeroed at the
            start and their gradients suppressed, so they stay zero.
        pattern: structured unit pattern installed as forward gates during
            training (sub-model training).
        trainable_keys: if given, only these parameter keys are updated.
        rng: randomness source for batch sampling.
    """
    rng = rng or np.random.default_rng(0)
    params = copy_params(start_params)
    if param_mask is not None:
        params = multiply(params, param_mask)
    model.set_parameters(params)
    if pattern is not None:
        model.set_unit_gates(gates_from_pattern(pattern))
    center = None
    if prox_mu > 0.0:
        center = copy_params(prox_center if prox_center is not None else start_params)

    optimizer = SGD(learning_rate, momentum=momentum, clip_norm=clip_norm)
    # the frozen-key substitution is step-invariant: resolve the allowed
    # set and the zero replacements once instead of per SGD step
    allowed = set(trainable_keys) if trainable_keys is not None else None
    frozen_zeros: Dict[str, np.ndarray] = {}
    if allowed is not None:
        frozen_zeros = {key: np.zeros_like(value)
                        for key, value in model.get_parameters().items()
                        if key not in allowed}
    losses = []
    accuracies = []
    examples = 0
    for batch_x, batch_y in iterate_batches(dataset, batch_size, iterations, rng=rng):
        model.zero_grad()
        logits = model.forward(batch_x, train=True)
        loss, grad = softmax_cross_entropy(logits, batch_y)
        accuracies.append(accuracy(logits, batch_y))
        model.backward(grad)
        grads = model.get_gradients()
        current = model.get_parameters()
        if prox_mu > 0.0 and center is not None:
            # in-place: grads += (2 * mu) * (w - w_center); ``grads`` is a
            # fresh snapshot from get_gradients(), so mutating it is safe,
            # and the operation order matches the former per-key
            # ``grads + 2.0 * prox_mu * (current - center)`` bit-for-bit
            add_(grads, scale_(subtract(current, center), 2.0 * prox_mu))
            loss += prox_mu * float(
                sum(np.sum((current[key] - center[key]) ** 2) for key in current))
        if param_mask is not None:
            grads = {key: grads[key] * param_mask[key] for key in grads}
        if allowed is not None:
            grads = {key: (value if key in allowed else frozen_zeros[key])
                     for key, value in grads.items()}
        losses.append(loss)
        examples += len(batch_y)
        _apply_step(model, optimizer, grads)
    model.set_unit_gates(None)
    final_params = model.get_parameters()
    if param_mask is not None:
        final_params = multiply(final_params, param_mask)
    return LocalUpdateResult(
        params=final_params,
        train_accuracy=float(np.mean(accuracies)) if accuracies else 0.0,
        train_loss=float(np.mean(losses)) if losses else 0.0,
        examples_seen=examples,
    )


def _apply_step(model: Sequential, optimizer: SGD, grads: ParamDict) -> None:
    """Apply one optimizer step to the model's live parameter arrays."""
    live: Dict[str, np.ndarray] = {}
    for layer in model.layers:
        for key in layer.params:
            live[f"{layer.name}.{key}"] = layer.params[key]
    optimizer.step(live, grads)


def average_metric(values: Iterable[float]) -> float:
    """Mean of an iterable of floats, 0.0 when empty."""
    values = list(values)
    return float(np.mean(values)) if values else 0.0
