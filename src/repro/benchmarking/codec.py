"""Wire-codec benchmark: bytes crossing the client/server boundary per codec.

``repro bench --codec-scale`` runs the fan-out workload (FedLPS on the MNIST
preset — the method whose uploads are mask-sparse residuals) once per wire
codec and totals the per-round wire reports the server records in
``RoundRecord.extras``: encoded upload/download bytes against the dense
float64 baseline, plus the mask density the sparse codec saw.  The dense
baseline needs no extra run — every cell reports the dense byte count of the
same arrays it encoded, so ``upload_ratio`` compares like with like.

Two correctness clauses ride along with the byte accounting: lossless codecs
must reproduce the dense reference history bit-for-bit once the wire-report
extras are stripped, and lossy codecs report their accuracy delta against
the same reference (the accuracy-vs-uplink-bytes axis).  The report lands in
``BENCH_codec.json``, schema-compatible with the ``BENCH_fanout`` family
(``bench_scale``, ``cpu_count``, ``gate``), so future PRs have a byte
trajectory to move.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path
from typing import Dict, Iterable, Optional

from ..experiments import run_method, scaled
from ..parallel.codec import LOSSLESS_CODECS
from ..systems.metrics import TrainingHistory
from .fanout import BENCH_METHOD, fanout_preset

#: codecs benchmarked by default — every registered codec but the baseline
BENCH_CODECS = ("sparse", "int8", "pq")

#: the gate's sparse contract: at mask density at or under the ceiling, the
#: sparse codec's wire bytes must come in at or under this dense fraction
GATE_DENSITY_CEILING = 0.5
GATE_SPARSE_RATIO = 0.5

#: the wire-report keys summed over rounds (see ``ServerCore.take_wire_report``)
_WIRE_TOTALS = ("wire_upload_bytes", "wire_upload_dense_bytes",
                "wire_download_bytes", "wire_download_dense_bytes")


def _strip_wire(history_dict: Dict[str, object]) -> Dict[str, object]:
    """A deep copy of a history dict with the wire-report extras removed.

    The wire report is the one place a non-dense run's history legitimately
    differs from the dense reference, so lossless bit-identity is asserted
    on everything else.
    """
    clone = json.loads(json.dumps(history_dict))
    for record in clone.get("records", []):
        extras = record.get("extras", {})
        for key in [key for key in extras if key.startswith("wire_")]:
            del extras[key]
    return clone


def measure_codec(preset, codec: str,
                  reference: TrainingHistory
                  ) -> Dict[str, object]:
    """One codec cell: wire-byte totals, density, and the accuracy contract.

    ``reference`` is the dense run of the same preset; lossless cells are
    checked bit-identical against it (wire extras stripped), lossy cells
    report their accuracy delta.
    """
    history = run_method(BENCH_METHOD, scaled(preset, codec=codec))
    totals = {key: 0.0 for key in _WIRE_TOTALS}
    densities = []
    for record in history.records:
        for key in _WIRE_TOTALS:
            totals[key] += record.extras.get(key, 0.0)
        if "wire_upload_density" in record.extras:
            densities.append(record.extras["wire_upload_density"])
    dense_bytes = totals["wire_upload_dense_bytes"]
    cell: Dict[str, object] = {
        "codec": codec,
        "lossless": codec in LOSSLESS_CODECS,
        "upload_bytes": totals["wire_upload_bytes"],
        "upload_dense_bytes": dense_bytes,
        "upload_ratio": (totals["wire_upload_bytes"] / dense_bytes
                         if dense_bytes else None),
        "download_bytes": totals["wire_download_bytes"],
        "download_dense_bytes": totals["wire_download_dense_bytes"],
        "mask_density": (sum(densities) / len(densities)
                         if densities else None),
        "final_accuracy": history.final_accuracy(),
        "best_accuracy": history.best_accuracy(),
    }
    if codec in LOSSLESS_CODECS:
        cell["matches_dense_reference"] = \
            _strip_wire(history.to_dict()) == reference.to_dict()
    else:
        cell["accuracy_delta"] = \
            history.final_accuracy() - reference.final_accuracy()
    return cell


def _gate(cells: Dict[str, Dict[str, object]]) -> Dict[str, object]:
    """Pass/fail: every codec beats dense, sparse meets its ratio budget.

    Three clauses: (a) each benchmarked codec's wire bytes land strictly
    below the dense baseline, (b) lossless codecs reproduced the dense
    reference bit-for-bit, and (c) when the sparse codec saw mask density at
    or under the ceiling, its wire bytes came in at or under the budgeted
    fraction of dense (vacuous at higher densities, where a bitmap+values
    layout legitimately approaches parity).
    """
    ratios = {name: cell["upload_ratio"] for name, cell in cells.items()}
    below_dense = all(ratio is not None and ratio < 1.0
                      for ratio in ratios.values())
    lossless_ok = all(cell.get("matches_dense_reference", True)
                      for cell in cells.values())
    sparse = cells.get("sparse")
    density = sparse["mask_density"] if sparse else None
    sparse_applicable = density is not None and density <= GATE_DENSITY_CEILING
    sparse_ok = (not sparse_applicable
                 or sparse["upload_ratio"] <= GATE_SPARSE_RATIO)
    return {
        "pass": bool(below_dense and lossless_ok and sparse_ok),
        "all_below_dense": below_dense,
        "lossless_bit_identical": lossless_ok,
        "upload_ratios": ratios,
        "sparse_mask_density": density,
        "density_ceiling": GATE_DENSITY_CEILING,
        "sparse_ratio_budget": GATE_SPARSE_RATIO,
        "sparse_budget_applies": sparse_applicable,
    }


def run_codec_bench(scale: float = 1.0,
                    codecs: Iterable[str] = BENCH_CODECS,
                    output: Optional[str] = None) -> Dict[str, object]:
    """Run the codec benchmark and return (optionally write) the report.

    ``scale`` multiplies the fan-out workload, the same convention as
    ``repro bench --scale``; one dense reference run anchors the lossless
    and accuracy checks for every codec cell.
    """
    preset = fanout_preset(scale)
    reference = run_method(BENCH_METHOD, preset)
    cells: Dict[str, Dict[str, object]] = {}
    for codec in codecs:
        cells[codec] = measure_codec(preset, codec, reference)
    report: Dict[str, object] = {
        "bench_scale": scale,
        "method": BENCH_METHOD,
        "workload": {
            "dataset": preset.dataset,
            "num_clients": preset.num_clients,
            "clients_per_round": preset.clients_per_round,
            "num_rounds": preset.num_rounds,
            "local_iterations": preset.local_iterations,
        },
        "python": platform.python_version(),
        "platform": sys.platform,
        "cpu_count": os.cpu_count(),
        "dense_reference": {
            "final_accuracy": reference.final_accuracy(),
            "best_accuracy": reference.best_accuracy(),
        },
        "codecs": cells,
        "gate": _gate(cells),
    }
    if output:
        Path(output).write_text(json.dumps(report, indent=2, sort_keys=True))
    return report


def format_codec_report(report: Dict[str, object]) -> str:
    """Render a codec report as the aligned text table the CLI prints."""
    lines = [f"# repro bench --codec-scale {report['bench_scale']} — "
             f"method {report['method']}, cpu_count {report['cpu_count']}"]
    header = (f"{'codec':>8s} | {'upload_B':>10s} | {'dense_B':>10s} | "
              f"{'ratio':>6s} | {'density':>7s} | {'accuracy':>8s} | "
              f"{'contract':>9s}")
    lines += [header, "-" * len(header)]
    for name, cell in report["codecs"].items():
        density = cell["mask_density"]
        if cell["lossless"]:
            contract = ("identical" if cell["matches_dense_reference"]
                        else "DIVERGED")
        else:
            contract = f"{cell['accuracy_delta']:+.4f}"
        lines.append(
            f"{name:>8s} | {cell['upload_bytes']:>10.0f} | "
            f"{cell['upload_dense_bytes']:>10.0f} | "
            f"{cell['upload_ratio']:>6.3f} | "
            f"{'-' if density is None else format(density, '.3f'):>7s} | "
            f"{cell['final_accuracy']:>8.4f} | {contract:>9s}")
    gate = report["gate"]
    budget = (f"sparse density {gate['sparse_mask_density']:.3f} <= "
              f"{gate['density_ceiling']} -> ratio budget "
              f"{gate['sparse_ratio_budget']}"
              if gate["sparse_budget_applies"]
              else "sparse ratio budget not applicable")
    lines.append(f"gate: all-below-dense {gate['all_below_dense']}, "
                 f"lossless-identical {gate['lossless_bit_identical']}, "
                 f"{budget} -> {'PASS' if gate['pass'] else 'FAIL'}")
    return "\n".join(lines)
