"""``repro.nn``: a from-scratch numpy neural-network substrate.

The package provides layers with hand-written forward/backward passes,
losses, an SGD optimizer, a :class:`Sequential` model container and the
structured-unit machinery (unit gates, unit masks, per-unit magnitudes) that
FedLPS's learnable sparsification builds on.
"""

from .activations import Dropout, Flatten, ReLU, Sigmoid, Tanh, sigmoid, softmax
from .base import Layer
from .batched import (BatchedModel, batchable_model, stack_param_dicts,
                      unstack_param_dict)
from .conv import AvgPool2d, Conv2d, MaxPool2d
from .dense import Dense
from .embedding import Embedding
from .losses import (accuracy, accuracy_cohort, mean_squared_error,
                     softmax_cross_entropy, softmax_cross_entropy_cohort)
from .model import Sequential, UnitGroup
from .optim import (SGD, BatchedSGD, clip_gradients, clip_gradients_cohort,
                    cohort_grad_norms, global_grad_norm)
from .recurrent import LSTM, RNN, LastTimestep
from .serialization import (load_parameters, nonzero_parameter_bytes,
                            parameter_bytes, save_parameters)
from . import params

__all__ = [
    "Layer",
    "Dense",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "Flatten",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Dropout",
    "Embedding",
    "RNN",
    "LSTM",
    "LastTimestep",
    "Sequential",
    "UnitGroup",
    "SGD",
    "BatchedSGD",
    "BatchedModel",
    "batchable_model",
    "stack_param_dicts",
    "unstack_param_dict",
    "clip_gradients",
    "clip_gradients_cohort",
    "cohort_grad_norms",
    "global_grad_norm",
    "softmax",
    "sigmoid",
    "softmax_cross_entropy",
    "softmax_cross_entropy_cohort",
    "mean_squared_error",
    "accuracy",
    "accuracy_cohort",
    "save_parameters",
    "load_parameters",
    "parameter_bytes",
    "nonzero_parameter_bytes",
    "params",
]
