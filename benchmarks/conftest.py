"""Shared configuration for the benchmark harness.

Every benchmark module reproduces one table or figure of the paper.  The
default scale is deliberately small so the whole harness finishes in a few
minutes on a laptop CPU; set the environment variable ``REPRO_BENCH_SCALE``
to a value > 1 to enlarge the runs towards paper scale (more clients, more
rounds, more local work).
"""

from __future__ import annotations

import os
from typing import Dict, List


def bench_scale() -> float:
    """User-controlled scale factor for benchmark runs."""
    try:
        return max(float(os.environ.get("REPRO_BENCH_SCALE", "1")), 0.25)
    except ValueError:
        return 1.0


def bench_overrides(**extra) -> Dict[str, object]:
    """Preset overrides shared by all benchmark modules."""
    scale = bench_scale()
    overrides: Dict[str, object] = {
        "num_clients": max(6, int(round(8 * scale))),
        "examples_per_client": max(30, int(round(40 * scale))),
        "num_rounds": max(5, int(round(8 * scale))),
        "clients_per_round": 3,
        "local_iterations": max(3, int(round(4 * scale))),
        "batch_size": 16,
        "seed": 7,
    }
    overrides.update(extra)
    return overrides


def print_rows(title: str, rows: List[Dict[str, object]]) -> None:
    """Print benchmark result rows in a compact aligned table."""
    if not rows:
        print(f"\n=== {title}: no rows ===")
        return
    columns = list(rows[0].keys())
    print(f"\n=== {title} ===")
    print(" | ".join(f"{name:>20s}" for name in columns))
    for row in rows:
        cells = []
        for name in columns:
            value = row.get(name)
            if isinstance(value, float):
                cells.append(f"{value:>20.4g}")
            else:
                cells.append(f"{str(value):>20s}")
        print(" | ".join(cells))
