"""Unit tests for the shared-memory broadcast layer."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.parallel import (Broadcast, broadcast_stats, materialize,
                            reset_broadcast_stats, resolve_codec)
from repro.parallel import broadcast as broadcast_module


@pytest.fixture(autouse=True)
def fresh_stats():
    reset_broadcast_stats()
    yield
    reset_broadcast_stats()


@pytest.fixture(autouse=True)
def fresh_worker_cache():
    # materialize caches per thread; tests must not see each other's entries
    broadcast_module._worker_cache.entries = None
    yield
    broadcast_module._worker_cache.entries = None


def sample_params(seed=0):
    rng = np.random.default_rng(seed)
    return {
        "dense.W": rng.standard_normal((64, 32)),
        "dense.b": rng.standard_normal(32),
        "conv.W": rng.standard_normal((4, 2, 3, 3)),
    }


class TestRoundTrip:
    @pytest.mark.parametrize("use_shared_memory", [True, False])
    def test_params_and_payload_survive_bitwise(self, use_shared_memory):
        params = sample_params()
        payload = {"round": 3, "note": "template"}
        with Broadcast(payload, params, round_index=3,
                       use_shared_memory=use_shared_memory) as broadcast:
            got_params, got_payload = materialize(broadcast.handle)
        assert got_payload == payload
        assert set(got_params) == set(params)
        for key, value in params.items():
            assert got_params[key].dtype == value.dtype
            assert got_params[key].shape == value.shape
            assert np.array_equal(got_params[key], value)

    def test_materialized_params_are_read_only_zero_copy_views(self):
        """The writeability guard: fan-out params cannot be mutated in place.

        Every materialized array is a view into the worker's single private
        snapshot of the segment (no per-array copy), and any in-place write
        raises instead of silently corrupting the cached broadcast that
        later tasks on the same worker will reuse.
        """
        params = sample_params()
        with Broadcast(None, params) as broadcast:
            got, _ = materialize(broadcast.handle)
        for array in got.values():
            assert not array.flags.writeable
            assert array.base is not None  # a view, not a private copy
        with pytest.raises(ValueError):
            got["dense.b"][0] = 123.0
        assert params["dense.b"][0] != 123.0  # the published arrays untouched

    @pytest.mark.parametrize("codec_name", ["sparse", "int8", "pq"])
    @pytest.mark.parametrize("use_shared_memory", [True, False])
    def test_encoded_params_decode_to_server_side_arrays(
            self, codec_name, use_shared_memory):
        """Codec-tagged blocks: workers rebuild exactly the decoded params."""
        codec = resolve_codec(codec_name)
        params = sample_params()
        encoded = codec.encode(params)
        expected = codec.decode(encoded)
        with Broadcast({"round": 1}, encoded_params=encoded, round_index=1,
                       use_shared_memory=use_shared_memory) as broadcast:
            assert broadcast.handle.has_params
            got_params, _ = materialize(broadcast.handle)
        assert set(got_params) == set(params)
        for key in params:
            assert got_params[key].dtype == np.asarray(expected[key]).dtype
            assert got_params[key].tobytes() == \
                np.asarray(expected[key]).tobytes()
            assert not got_params[key].flags.writeable

    def test_encoded_broadcast_param_bytes_count_wire_bytes(self):
        """The param_bytes stat measures the encoded (wire) size."""
        rng = np.random.default_rng(1)
        residual = np.where(rng.random((64, 64)) < 0.2,
                            rng.standard_normal((64, 64)), -0.0)
        encoded = resolve_codec("sparse").encode({"w": residual})
        assert encoded.wire_nbytes < encoded.dense_nbytes
        with Broadcast(None, encoded_params=encoded, round_index=0):
            pass
        stats = broadcast_stats()
        assert stats["param_bytes"] == encoded.wire_nbytes

    def test_params_and_encoded_params_are_exclusive(self):
        encoded = resolve_codec("dense").encode(sample_params())
        with pytest.raises(ValueError, match="not both"):
            Broadcast(None, sample_params(), encoded_params=encoded)

    def test_payload_only_broadcast_has_no_params(self):
        with Broadcast(["just", "a", "payload"]) as broadcast:
            params, payload = materialize(broadcast.handle)
        assert params is None
        assert payload == ["just", "a", "payload"]


class TestHandle:
    def test_handle_stays_small_and_picklable(self):
        params = sample_params()
        param_bytes = sum(v.nbytes for v in params.values())
        with Broadcast({"big": "nope"}, params) as broadcast:
            wire = pickle.dumps(broadcast.handle, pickle.HIGHEST_PROTOCOL)
        # the whole point: task payloads carry a reference, not the blocks
        assert len(wire) < 2048 < param_bytes
        clone = pickle.loads(wire)
        assert clone.digest == broadcast.handle.digest

    def test_digest_tracks_content(self):
        with Broadcast("a", sample_params(seed=1)) as first, \
                Broadcast("a", sample_params(seed=2)) as second, \
                Broadcast("b", sample_params(seed=1)) as third:
            digests = {first.handle.digest, second.handle.digest,
                       third.handle.digest}
        assert len(digests) == 3

    def test_materialize_after_close_raises_clearly(self):
        broadcast = Broadcast("payload", sample_params())
        broadcast.close()
        with pytest.raises(RuntimeError, match="closed the Broadcast"):
            materialize(broadcast.handle)

    def test_close_is_idempotent(self):
        broadcast = Broadcast("payload")
        broadcast.close()
        broadcast.close()


class TestWorkerCache:
    def test_second_materialize_is_a_cache_hit(self):
        with Broadcast("payload", sample_params(), round_index=5) as broadcast:
            first = materialize(broadcast.handle)
        # segment is unlinked now: only the cache can serve this handle
        second = materialize(broadcast.handle)
        assert second[1] is first[1]
        stats = broadcast_stats()
        assert stats["materializations"] == 1
        assert stats["materialize_hits"] == 1

    def test_cache_is_bounded(self):
        handles = []
        for index in range(broadcast_module.CACHE_LIMIT + 2):
            with Broadcast(f"payload-{index}", round_index=index) as bc:
                materialize(bc.handle)
                handles.append(bc.handle)
        entries = broadcast_module._worker_cache.entries
        assert len(entries) == broadcast_module.CACHE_LIMIT
        # the oldest entries were evicted, the newest survive
        assert handles[-1].cache_key in entries
        assert handles[0].cache_key not in entries


class TestStats:
    def test_publish_counters(self):
        params = sample_params()
        raw = sum(np.ascontiguousarray(v).nbytes for v in params.values())
        with Broadcast("payload", params):
            pass
        with Broadcast("payload-only"):
            pass
        stats = broadcast_stats()
        assert stats["publishes"] == 2
        assert stats["param_packs"] == 1
        assert stats["param_bytes"] == raw
        assert stats["blob_bytes"] > 0
