"""FLOP and communication accounting for dense and sparse training.

The paper reports total training FLOPs (Table I, Figures 3) and models local
time cost from FLOPs and transmitted bytes (Eq. 14).  This module computes
both quantities analytically from the model architecture and the per-layer
keep ratios induced by a sparse pattern, so the simulator never has to time
actual numpy execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from ..nn.model import Sequential
from .masks import per_layer_keep_ratio

#: backward pass costs roughly twice the forward pass; training a batch is
#: therefore ~3x the forward FLOPs.  This is the convention used by the FL
#: papers the evaluation compares against.
TRAIN_FLOP_MULTIPLIER = 3

#: bytes used to transmit one parameter value (float32 on the wire).
BYTES_PER_PARAMETER = 4


@dataclass(frozen=True)
class SparseCost:
    """Computation and communication footprint of one local round."""

    flops: float
    upload_bytes: float
    download_bytes: float

    def scaled(self, factor: float) -> "SparseCost":
        return SparseCost(self.flops * factor, self.upload_bytes * factor,
                          self.download_bytes * factor)


def dense_forward_flops(model: Sequential) -> int:
    """Forward FLOPs of the dense model for a single example."""
    return model.flops_per_example()


def sparse_forward_flops(model: Sequential,
                         pattern: Optional[Mapping[str, np.ndarray]] = None,
                         uniform_ratio: Optional[float] = None) -> float:
    """Forward FLOPs per example under structured sparsity.

    A layer's cost shrinks with both its own retained-unit fraction (fewer
    output units) and the retained fraction of the unit-bearing layer feeding
    it (fewer input units).  Either a concrete ``pattern`` or a single
    ``uniform_ratio`` applied to every sparsifiable layer may be given; with
    neither the dense cost is returned.
    """
    if pattern is not None and uniform_ratio is not None:
        raise ValueError("give either a pattern or a uniform ratio, not both")
    keep_by_layer: Dict[str, float]
    if pattern is not None:
        keep_by_layer = per_layer_keep_ratio(pattern)
    elif uniform_ratio is not None:
        if not 0.0 < uniform_ratio <= 1.0:
            raise ValueError("uniform_ratio must be in (0, 1]")
        keep_by_layer = {group.layer_name: float(uniform_ratio)
                         for group in model.unit_groups}
    else:
        keep_by_layer = {group.layer_name: 1.0 for group in model.unit_groups}

    layer_costs = model.layer_flops()
    total = 0.0
    upstream_keep = 1.0
    for layer in model.layers:
        own_keep = keep_by_layer.get(layer.name)
        cost = layer_costs[layer.name]
        if cost > 0:
            effective = cost * upstream_keep * (own_keep if own_keep is not None else 1.0)
            total += effective
        if own_keep is not None:
            upstream_keep = own_keep
    return total


def local_training_flops(model: Sequential, num_examples: int, iterations: int,
                         batch_size: int,
                         pattern: Optional[Mapping[str, np.ndarray]] = None,
                         uniform_ratio: Optional[float] = None) -> float:
    """Total FLOPs of ``iterations`` local SGD steps over batches of data."""
    if iterations < 0 or batch_size <= 0:
        raise ValueError("iterations must be >= 0 and batch_size positive")
    per_example = sparse_forward_flops(model, pattern, uniform_ratio)
    examples_processed = iterations * min(batch_size, max(num_examples, 1))
    return TRAIN_FLOP_MULTIPLIER * per_example * examples_processed


def masked_parameter_count(model: Sequential,
                           pattern: Optional[Mapping[str, np.ndarray]] = None
                           ) -> int:
    """Number of parameters retained by a pattern (all of them when None)."""
    if pattern is None:
        return model.num_parameters
    mask = model.expand_unit_masks(
        {name: np.asarray(values, dtype=np.float64)
         for name, values in pattern.items()})
    return int(sum(np.count_nonzero(values) for values in mask.values()))


def upload_bytes(model: Sequential,
                 pattern: Optional[Mapping[str, np.ndarray]] = None,
                 include_pattern_bits: bool = True) -> float:
    """Uplink volume: retained parameter values plus the tiny binary pattern."""
    count = masked_parameter_count(model, pattern)
    volume = count * BYTES_PER_PARAMETER
    if include_pattern_bits and pattern is not None:
        pattern_bits = sum(np.asarray(mask).size for mask in pattern.values())
        volume += pattern_bits / 8.0
    return float(volume)


def download_bytes(model: Sequential) -> float:
    """Downlink volume: the dense global parameters (as in FedAvg/FedLPS)."""
    return float(model.num_parameters * BYTES_PER_PARAMETER)


def local_round_cost(model: Sequential, num_examples: int, iterations: int,
                     batch_size: int,
                     pattern: Optional[Mapping[str, np.ndarray]] = None,
                     uniform_ratio: Optional[float] = None) -> SparseCost:
    """Convenience bundle of the three cost components of one local round."""
    flops = local_training_flops(model, num_examples, iterations, batch_size,
                                 pattern, uniform_ratio)
    if pattern is None and uniform_ratio is not None:
        # approximate upload volume for a uniform ratio without a concrete pattern
        up = model.num_parameters * uniform_ratio * BYTES_PER_PARAMETER
    else:
        up = upload_bytes(model, pattern)
    return SparseCost(flops=flops, upload_bytes=float(up),
                      download_bytes=download_bytes(model))
