"""Running one method on one preset, and small sweep helpers."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..baselines import build_strategy
from ..federated import FederatedTrainer
from ..federated.strategy import Strategy
from ..systems import TrainingHistory
from .presets import ExperimentPreset, build_experiment, preset_for, scaled


def run_method(method: str, preset: ExperimentPreset, *,
               strategy: Optional[Strategy] = None,
               strategy_kwargs: Optional[dict] = None) -> TrainingHistory:
    """Run one method on one experiment preset and return its history.

    ``method`` is a registry name (see ``repro.baselines.available_strategies``);
    a pre-built ``strategy`` instance can be passed instead for ablation
    variants that need custom constructor arguments.
    """
    dataset, model_builder, config, fleet = build_experiment(preset)
    strat = strategy if strategy is not None \
        else build_strategy(method, **(strategy_kwargs or {}))
    trainer = FederatedTrainer(strat, dataset, model_builder, config=config,
                               fleet=fleet)
    history = trainer.run()
    history.dataset = preset.dataset
    return history


def run_methods(methods: Iterable[str], preset: ExperimentPreset
                ) -> Dict[str, TrainingHistory]:
    """Run several registry methods on the same preset."""
    return {method: run_method(method, preset) for method in methods}


def run_across_datasets(method: str, datasets: Iterable[str], *,
                        overrides: Optional[dict] = None
                        ) -> Dict[str, TrainingHistory]:
    """Run one method on several datasets with shared preset overrides."""
    overrides = overrides or {}
    results: Dict[str, TrainingHistory] = {}
    for dataset in datasets:
        preset = scaled(preset_for(dataset), **overrides)
        results[dataset] = run_method(method, preset)
    return results


def summarize(history: TrainingHistory, *, last_rounds: int = 3) -> Dict[str, float]:
    """Headline numbers extracted from one run (the Table I columns)."""
    return {
        "accuracy": history.final_accuracy(last_rounds),
        "best_accuracy": history.best_accuracy(),
        "total_flops": history.total_flops,
        "total_time_seconds": history.total_time_seconds,
        "total_upload_bytes": history.total_upload_bytes,
    }


def format_rows(rows: List[Dict[str, object]], columns: List[str]) -> str:
    """Render a list of row dictionaries as an aligned text table."""
    header = " | ".join(f"{name:>18s}" for name in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = []
        for name in columns:
            value = row.get(name, "")
            if isinstance(value, float):
                cells.append(f"{value:>18.4g}")
            else:
                cells.append(f"{str(value):>18s}")
        lines.append(" | ".join(cells))
    return "\n".join(lines)
