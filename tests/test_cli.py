"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

TINY = ["--rounds", "2", "--clients", "5", "--clients-per-round", "2",
        "--local-iterations", "2", "--seed", "1"]


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.method == "fedlps"
        assert args.dataset == "mnist"

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--method", "nonsense"])


class TestCommands:
    def test_list_prints_methods(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fedlps" in out and "fedavg" in out

    def test_run_prints_summary(self, capsys):
        assert main(["run", "--method", "fedavg", "--dataset", "mnist"] + TINY) == 0
        out = capsys.readouterr().out
        assert "fedavg" in out and "accuracy" in out

    def test_compare_prints_one_row_per_method(self, capsys):
        assert main(["compare", "--methods", "fedavg", "fedlps",
                     "--dataset", "mnist"] + TINY) == 0
        out = capsys.readouterr().out
        assert "fedavg" in out and "fedlps" in out

    def test_table1_subset(self, capsys):
        assert main(["table1", "--datasets", "mnist",
                     "--methods", "fedavg", "fedlps"] + TINY) == 0
        out = capsys.readouterr().out
        assert "fedlps" in out
