"""Model zoo with CPU-sized counterparts of the paper's backbones."""

from .zoo import (build_cnn, build_lstm_lm, build_mlp, build_model_for_dataset,
                  build_vgg_style)

__all__ = [
    "build_mlp",
    "build_cnn",
    "build_vgg_style",
    "build_lstm_lm",
    "build_model_for_dataset",
]
