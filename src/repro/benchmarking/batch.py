"""Cohort-batching benchmark: vectorized local training vs the client loop.

``repro bench --batch-scale`` pins the contract of the vectorized cohort
engine (:mod:`repro.federated.batched`, ``FederatedConfig.batch_cohort``):

* at a cross-device-style workload (many small local steps) a cohort of
  16 clients must train **at least 2x faster** fused into one batched
  tensor program than through the per-client loop, for both the dense
  FedAvg path and FedLPS's learnable sparsification;
* the speedup must be *free*: the batched run's history digest must equal
  the loop run's digest bit-for-bit on every measured cell.

Timing uses the best of ``BENCH_REPEATS`` full runs per cell (min, not
mean — the minimum is the least noisy location statistic for wall-clock
benchmarks).  The report lands in ``BENCH_batch.json``, schema-compatible
with the ``BENCH_fanout``/``BENCH_faults`` family (``bench_scale``,
``cpu_count``, per-cell ``seconds``).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence, Tuple

#: the batched program must beat the loop by this factor at the gated cohort
GATE_MIN_SPEEDUP = 2.0
#: cells with at least this many clients per round are speed-gated
GATE_COHORT = 16

#: methods every cell measures: the dense baseline engine and the paper's
#: learnable-sparsification engine
BENCH_METHODS = ("fedavg", "fedlps")

#: cohort sizes measured per method (the >= GATE_COHORT ones are gated)
BENCH_COHORTS = (4, 16)

#: full runs per (method, cohort, mode) cell; the minimum wall-clock wins
BENCH_REPEATS = 5


def batch_preset(cohort: int, scale: float = 1.0, *, seed: int = 0,
                 batched: bool = False):
    """The bench workload: many small local steps on a homogeneous cohort.

    Cohort batching pays off where the per-step tensor work is small and
    the Python/dispatch overhead per client step dominates — the
    cross-device regime (per-example SGD, many local iterations).
    ``examples_per_client`` is a multiple of ``batch_size`` so every
    client's schedule is homogeneous (no ragged padding) and the fully
    batched matmul path is exercised.
    """
    from ..experiments.presets import preset_for, scaled

    return scaled(
        preset_for("mnist"),
        num_clients=cohort,
        clients_per_round=cohort,
        num_rounds=max(1, int(round(2 * scale))),
        local_iterations=max(2, int(round(16 * scale))),
        batch_size=1,
        examples_per_client=16,
        eval_clients=0,
        seed=seed,
        batch_cohort=batched)


def _history_digest(history) -> str:
    canonical = json.dumps(history.to_dict(), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _one_run(method: str, preset) -> Tuple[float, str]:
    """Wall clock and history digest of one serial run."""
    from ..experiments.runner import run_method

    start = time.perf_counter()
    history = run_method(method, preset)
    return time.perf_counter() - start, _history_digest(history)


def measure_batching(method: str, cohort: int, *, scale: float = 1.0,
                     seed: int = 0,
                     repeats: int = BENCH_REPEATS) -> Dict[str, object]:
    """Time one (method, cohort) cell in loop mode and batched mode.

    Loop and batched runs are INTERLEAVED so a transient slowdown (shared
    CI runner, frequency scaling) hits both sides of the ratio rather
    than biasing one; the minimum over repeats is taken per side.
    """
    loop_preset = batch_preset(cohort, scale, seed=seed)
    batched_preset = batch_preset(cohort, scale, seed=seed, batched=True)
    # one unmeasured warm-up run per mode primes lazy imports/caches
    _one_run(method, loop_preset)
    _one_run(method, batched_preset)
    loop_seconds = batched_seconds = float("inf")
    loop_digest = batched_digest = None
    for _ in range(repeats):
        seconds, loop_digest = _one_run(method, loop_preset)
        loop_seconds = min(loop_seconds, seconds)
        seconds, batched_digest = _one_run(method, batched_preset)
        batched_seconds = min(batched_seconds, seconds)
    return {
        "method": method,
        "cohort": cohort,
        "loop_seconds": loop_seconds,
        "batched_seconds": batched_seconds,
        "speedup": loop_seconds / batched_seconds,
        "loop_digest": loop_digest,
        "batched_digest": batched_digest,
        "bit_identical": loop_digest == batched_digest,
        # family-wide headline column: the batched run's cost
        "seconds": batched_seconds,
    }


def _gate(cells: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Pass/fail: >= 2x at cohort >= 16, identical histories everywhere."""
    if not cells:
        return {"pass": False, "reason": "no cells measured"}
    identical = all(cell["bit_identical"] for cell in cells)
    gated = [cell for cell in cells if cell["cohort"] >= GATE_COHORT]
    fast_enough = bool(gated) and all(
        float(cell["speedup"]) >= GATE_MIN_SPEEDUP for cell in gated)
    worst = min((float(cell["speedup"]) for cell in gated), default=0.0)
    return {
        "pass": identical and fast_enough,
        "bit_identical": identical,
        "fast_enough": fast_enough,
        "min_gated_speedup": worst,
        "min_speedup_required": GATE_MIN_SPEEDUP,
        "gated_cohort": GATE_COHORT,
    }


def run_batch_bench(scale: float = 1.0, *,
                    methods: Optional[Iterable[str]] = None,
                    cohorts: Optional[Iterable[int]] = None,
                    seed: int = 0,
                    output: Optional[str] = None) -> Dict[str, object]:
    """Run the cohort-batching benchmark, optionally writing the report.

    ``scale`` multiplies the workload (rounds, local iterations), the same
    convention as the other ``repro bench`` axes.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    cells = [measure_batching(method, cohort, scale=scale, seed=seed)
             for method in (methods if methods is not None else BENCH_METHODS)
             for cohort in (cohorts if cohorts is not None else BENCH_COHORTS)]
    report: Dict[str, object] = {
        "bench_scale": scale,
        "repeats": BENCH_REPEATS,
        "python": platform.python_version(),
        "platform": sys.platform,
        "cpu_count": os.cpu_count(),
        "cells": cells,
        "gate": _gate(cells),
    }
    if output:
        Path(output).write_text(json.dumps(report, indent=2, sort_keys=True))
    return report


def format_batch_report(report: Dict[str, object]) -> str:
    """Render a batching report as the aligned text table the CLI prints."""
    lines = [f"# repro bench --batch-scale {report['bench_scale']} — "
             f"cpu_count {report['cpu_count']}, "
             f"best of {report['repeats']} runs"]
    header = (f"{'method':>8s} | {'cohort':>6s} | {'loop_s':>8s} | "
              f"{'batch_s':>8s} | {'speedup':>7s} | {'identical':>9s}")
    lines += [header, "-" * len(header)]
    for cell in report["cells"]:
        lines.append(
            f"{cell['method']:>8s} | "
            f"{cell['cohort']:>6d} | "
            f"{cell['loop_seconds']:>8.3f} | "
            f"{cell['batched_seconds']:>8.3f} | "
            f"{cell['speedup']:>6.2f}x | "
            f"{str(bool(cell['bit_identical'])):>9s}")
    gate = report["gate"]
    if "bit_identical" in gate:
        lines.append(
            f"gate: histories identical {gate['bit_identical']}, "
            f"min speedup at cohort >= {gate['gated_cohort']} "
            f"{gate['min_gated_speedup']:.2f}x "
            f"(need {gate['min_speedup_required']:.1f}x) "
            f"-> {'PASS' if gate['pass'] else 'FAIL'}")
    else:
        lines.append(f"gate: FAIL ({gate.get('reason', 'unknown')})")
    return "\n".join(lines)
