"""Small neutral utilities shared across otherwise-unrelated layers.

This module deliberately has no intra-package imports: the lazy data layer,
the broadcast transport, the checkpoint subsystem and the experiment cache
all sit at different depths of the dependency graph, yet share two
primitives — one bounded-LRU eviction policy (so O(cohort) memory
accounting is identical everywhere a cache appears) and one canonical-JSON
reduction (so every content hash in the repo agrees on what "the same
spec" means).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Mapping


class BoundedLRU:
    """A small bounded LRU over an ``OrderedDict``.

    The one cache-eviction policy shared by the lazy layers (shard map,
    client-facade cache, broadcast worker cache, checkpoint load memo):
    touch on hit, insert then evict oldest while over the bound.  Keeping
    it in one place keeps the O(cohort) memory accounting identical
    everywhere it is used.
    """

    def __init__(self, bound: int) -> None:
        if bound <= 0:
            raise ValueError("cache bound must be positive")
        self.bound = bound
        self._entries: "OrderedDict" = OrderedDict()

    def get(self, key):
        """The cached value (refreshed to most-recent), or None."""
        hit = self._entries.get(key)
        if hit is not None:
            self._entries.move_to_end(key)
        return hit

    def put(self, key, value) -> None:
        self._entries[key] = value
        self._evict()

    def resize(self, bound: int) -> None:
        if bound <= 0:
            raise ValueError("cache bound must be positive")
        self.bound = bound
        self._evict()

    def _evict(self) -> None:
        while len(self._entries) > self.bound:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries


def canonicalize(value: object) -> object:
    """Reduce a value to a pure-JSON form independent of construction order.

    ``json.dumps(..., sort_keys=True)`` alone is not enough for stable keys:
    non-string dict keys survive as insertion-ordered after a load/compare
    round trip (``{1: x}`` dumps to ``{"1": x}`` and no longer equals the
    original spec), sets have no defined order, and anything hitting a
    ``default=repr`` fallback keeps whatever ordering its repr uses.  This
    walk makes every mapping string-keyed and sorted, every set sorted, and
    every exotic object an explicit repr — so two specs built with different
    key insertion orders hash to the same cache entry and compare equal
    after a JSON round trip.
    """
    if isinstance(value, Mapping):
        keys = sorted(value, key=str)
        if len({str(key) for key in keys}) != len(keys):
            # e.g. {1: ..., "1": ...} — stringifying would silently drop an
            # entry and make the result depend on insertion order; a loud
            # error beats a wrong cache hit
            raise ValueError(
                f"mapping keys collide after str() conversion: {keys!r}")
        return {str(key): canonicalize(value[key]) for key in keys}
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted((canonicalize(item) for item in value), key=repr)
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    return repr(value)
