"""Figure 5: time-to-accuracy (TTA) of personalized methods."""

from __future__ import annotations

import pytest

from repro.experiments import time_to_accuracy

from conftest import bench_overrides, print_rows

DATASETS = ("cifar10", "cifar100", "tinyimagenet")
METHODS = ("fedper", "hermes", "fedspa", "perfedavg", "fedlps")


@pytest.mark.benchmark(group="figure5")
def test_fig5_time_to_accuracy(benchmark):
    overrides = bench_overrides()

    def run():
        return time_to_accuracy(datasets=DATASETS, methods=METHODS,
                                target_fraction=0.7, overrides=overrides)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_rows("Figure 5: time-to-accuracy", rows)
    assert len(rows) == len(DATASETS) * len(METHODS)
    for row in rows:
        assert row["target_accuracy"] > 0
