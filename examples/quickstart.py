"""Quickstart: train FedLPS on a small heterogeneous federation.

Run with::

    python examples/quickstart.py

The script builds a synthetic non-IID MNIST-style federation of 12 edge
devices with five capability tiers, trains FedLPS for 15 communication rounds
and compares it against FedAvg on accuracy, computation and simulated time.
"""

from __future__ import annotations

from repro.baselines import FedAvg
from repro.core import FedLPS
from repro.data import build_federated_dataset
from repro.federated import FederatedConfig, run_federated
from repro.models import build_model_for_dataset


def main() -> None:
    dataset = build_federated_dataset("mnist", num_clients=12,
                                      examples_per_client=60, seed=0)
    config = FederatedConfig(num_rounds=15, clients_per_round=4,
                             local_iterations=8, batch_size=16, seed=0)

    def model_builder():
        return build_model_for_dataset("mnist", seed=0)

    print("Training FedLPS (learnable sparse personalization) ...")
    fedlps_history = run_federated(FedLPS(), dataset, model_builder, config=config)
    print("Training FedAvg (dense baseline) ...")
    fedavg_history = run_federated(FedAvg(), dataset, model_builder, config=config)

    print("\n=== results (average personalized test accuracy) ===")
    for history in (fedlps_history, fedavg_history):
        print(f"{history.method:8s} accuracy={history.final_accuracy():.3f} "
              f"total_flops={history.total_flops:.3e} "
              f"simulated_time={history.total_time_seconds:.2f}s")
    speedup = (fedavg_history.total_flops
               / max(fedlps_history.total_flops, 1.0))
    print(f"\nFedLPS used {speedup:.1f}x fewer training FLOPs than FedAvg.")


if __name__ == "__main__":
    main()
