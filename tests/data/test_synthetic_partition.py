"""Tests for the synthetic dataset generators and non-IID partitioners."""

import numpy as np
import pytest

from repro.data import (IMAGE_SPECS, Dataset, build_federated_dataset,
                        dirichlet_partition, iid_partition,
                        make_image_classification,
                        make_personalized_image_shards,
                        pathological_partition,
                        pathological_partition_missing_classes,
                        partition_to_clients, synthetic_mnist,
                        synthetic_reddit, synthetic_reddit_users)
from repro.data.synthetic import TextSpec


class TestImageGenerators:
    @pytest.mark.parametrize("name", ["mnist", "cifar10", "cifar100",
                                      "tinyimagenet"])
    def test_spec_shapes(self, name):
        spec = IMAGE_SPECS[name]
        ds = make_image_classification(spec, 32, seed=0)
        assert ds.x.shape == (32, spec.channels, spec.image_size, spec.image_size)
        assert ds.y.max() < spec.num_classes

    def test_generation_deterministic(self):
        a = synthetic_mnist(20, seed=5)
        b = synthetic_mnist(20, seed=5)
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.y, b.y)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            make_image_classification(IMAGE_SPECS["mnist"], 0)

    def test_classes_are_separable_by_prototype_distance(self):
        spec = IMAGE_SPECS["mnist"]
        ds = make_image_classification(spec, 400, seed=0)
        means = np.stack([ds.x[ds.y == c].mean(axis=0)
                          for c in range(spec.num_classes) if np.any(ds.y == c)])
        distances = np.linalg.norm(
            means[:, None] - means[None, :], axis=(2, 3, 4) if means.ndim == 5 else None)
        # class means are distinct (prototypes differ)
        assert np.sum(distances > 1.0) > 0

    def test_personalized_shards_label_skew_and_style(self):
        spec = IMAGE_SPECS["mnist"]
        shards = make_personalized_image_shards(spec, 5, 2, 30, seed=0)
        assert len(shards) == 5
        for shard in shards:
            assert len(np.unique(shard.y)) <= 2
            assert len(shard) == 30

    def test_personalized_shards_invalid_args(self):
        spec = IMAGE_SPECS["mnist"]
        with pytest.raises(ValueError):
            make_personalized_image_shards(spec, 0, 2, 10)
        with pytest.raises(ValueError):
            make_personalized_image_shards(spec, 2, 0, 10)


class TestTextGenerators:
    def test_reddit_users_are_non_iid(self):
        users, spec = synthetic_reddit_users(4, 50, seed=0)
        assert len(users) == 4
        for shard in users:
            assert shard.x.shape[1] == spec.seq_len
            assert shard.y.max() < spec.vocab_size
        # token distributions differ across users
        hist0 = np.bincount(users[0].y, minlength=spec.vocab_size)
        hist1 = np.bincount(users[1].y, minlength=spec.vocab_size)
        assert not np.array_equal(hist0, hist1)

    def test_pooled_reddit_size(self):
        ds = synthetic_reddit(200, num_users=5, seed=1)
        assert len(ds) == 200

    def test_invalid_user_count(self):
        with pytest.raises(ValueError):
            synthetic_reddit_users(0)

    def test_text_spec_defaults(self):
        spec = TextSpec()
        assert spec.vocab_size == 60 and spec.seq_len == 8


def _pooled(n=200, classes=10, seed=0):
    rng = np.random.default_rng(seed)
    return Dataset(rng.standard_normal((n, 2)), rng.integers(0, classes, n))


class TestPartitioners:
    def test_iid_partition_covers_everything(self):
        ds = _pooled(100)
        parts = iid_partition(ds, 7, seed=0)
        joined = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(joined, np.arange(100))

    def test_pathological_limits_classes_per_client(self):
        ds = _pooled(400, classes=10)
        parts = pathological_partition(ds, 10, 2, seed=0)
        for indices in parts:
            assert len(np.unique(ds.y[indices])) <= 2

    def test_pathological_partitions_are_disjoint(self):
        ds = _pooled(400, classes=10)
        parts = pathological_partition(ds, 10, 2, seed=0)
        joined = np.concatenate(parts)
        assert len(joined) == len(np.unique(joined))

    def test_pathological_invalid_classes(self):
        ds = _pooled(100, classes=4)
        with pytest.raises(ValueError):
            pathological_partition(ds, 5, 9)

    def test_missing_classes_wrapper(self):
        ds = _pooled(400, classes=10)
        parts = pathological_partition_missing_classes(ds, 8, 8, seed=0)
        for indices in parts:
            assert len(np.unique(ds.y[indices])) <= 2
        with pytest.raises(ValueError):
            pathological_partition_missing_classes(ds, 8, 10)

    def test_dirichlet_partition_respects_min_examples(self):
        ds = _pooled(500, classes=5)
        parts = dirichlet_partition(ds, 5, alpha=0.5, seed=0, min_examples=2)
        assert all(len(p) >= 2 for p in parts)

    def test_dirichlet_invalid_alpha(self):
        with pytest.raises(ValueError):
            dirichlet_partition(_pooled(), 4, alpha=0.0)

    def test_partition_to_clients_requires_enough_examples(self):
        ds = _pooled(10)
        with pytest.raises(ValueError):
            partition_to_clients(ds, [np.array([0])])


class TestFederatedBuilder:
    @pytest.mark.parametrize("name", ["mnist", "cifar10", "cifar100",
                                      "tinyimagenet", "reddit"])
    def test_builds_every_dataset(self, name):
        fed = build_federated_dataset(name, 4, examples_per_client=30, seed=0)
        assert fed.num_clients == 4
        assert fed.num_classes > 1
        assert all(len(c.train) > 0 and len(c.test) > 0
                   for c in fed.clients.values())

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            build_federated_dataset("svhn", 4)

    def test_unknown_partition(self):
        with pytest.raises(ValueError):
            build_federated_dataset("mnist", 4, partition="quantity")

    def test_iid_partition_option(self):
        fed = build_federated_dataset("mnist", 4, partition="iid",
                                      examples_per_client=40, seed=0)
        assert fed.metadata["partition"] == "iid"

    def test_pathological_clients_have_few_classes(self, small_fed_dataset):
        for shard in small_fed_dataset.clients.values():
            labels = np.concatenate([shard.train.y, shard.test.y])
            assert len(np.unique(labels)) <= 2

    def test_deterministic_given_seed(self):
        a = build_federated_dataset("mnist", 3, examples_per_client=20, seed=9)
        b = build_federated_dataset("mnist", 3, examples_per_client=20, seed=9)
        np.testing.assert_array_equal(a.client(0).train.x, b.client(0).train.x)
