"""Checkpointed, bit-identical resumable runs.

A multi-hour fleet-scale sweep that dies at round 400 of 500 should not
restart from round 0.  This module serializes the **full server state** at
round boundaries — everything the next round's math can observe — such that
resume-from-checkpoint is provably byte-equal to an uninterrupted run:

* the strategy's attributes (global parameters, per-method bookkeeping such
  as loss tables, shared patterns, residual stores) minus the live context;
* the mutable RNG streams (the selection/strategy generator on the shared
  :class:`~repro.federated.strategy.StrategyContext`; per-client bandit
  generators ride inside the client states) as raw PCG64 bit-generator
  states — every *other* stream in the simulator (scenario, device,
  per-client training) is a pure function of ``(seed, round, client)`` and
  needs no capture;
* the sparse :class:`~repro.federated.fleet.FleetStateStore` — participants
  only, so a lazy-fleet checkpoint is O(cohort) on disk, never O(fleet);
* the scheduler's event-driven state: aggregation version, sim clock,
  in-flight pool, the FedBuff buffer and every queued
  :class:`~repro.server.clock.ClientEvent`;
* the history records accumulated so far (cumulative FLOPs/time/sim-time
  are recovered from the last record, so they are never double-tracked).

A checkpoint additionally carries a **run digest** — a content hash of the
strategy class, dataset identity, model parameter manifest and the complete
:class:`~repro.federated.config.FederatedConfig` — and restoring refuses a
checkpoint whose digest does not match the run being resumed: resuming a
seed-0 checkpoint into a seed-1 run would silently produce a history that
belongs to neither.

Determinism is the acceptance bar, not a best effort: the golden-fixture
suite interrupts every pinned run at a round boundary and proves the
resumed history matches the committed fixture bit-for-bit, on both fleet
materialization paths and for the fedasync/fedbuff schedulers.

The on-disk format is one pickle per checkpoint
(``checkpoint-<next_round>.pkl``) written atomically (tmp + rename) into a
directory; :class:`CheckpointManager` prunes old files, resolves the latest
checkpoint and memoizes loads.  Pickles are trusted input: load checkpoints
only from directories you wrote.
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
import pickle
import re
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

from .systems.metrics import RoundRecord, TrainingHistory
from .util import BoundedLRU, canonicalize

#: bump whenever the checkpoint layout changes incompatibly
CHECKPOINT_VERSION = 1

#: checkpoint files are ``checkpoint-<next_round>.pkl`` inside the directory
_FILE_PATTERN = re.compile(r"^checkpoint-(\d+)\.pkl$")

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


class CheckpointError(RuntimeError):
    """Base class of every checkpoint failure."""


class CheckpointMismatch(CheckpointError):
    """The checkpoint belongs to a different run than the one resuming."""


class TrainingInterrupted(RuntimeError):
    """Raised by ``stop_after_round`` once the round's checkpoint is safe.

    This is the deterministic stand-in for preemption (spot instance
    reclaimed, job killed): the run stops at a round boundary *after* the
    checkpoint hit disk, so ``--resume`` continues bit-identically.
    """


# ------------------------------------------------------------- rng streams
def rng_state(generator: np.random.Generator) -> Dict[str, Any]:
    """The raw bit-generator state of ``generator`` (PCG64 and friends).

    The returned dict is what numpy exposes as ``bit_generator.state`` —
    plain ints and strings, deep-copied so later draws cannot mutate the
    snapshot.  Capturing the state mid-stream and restoring it must
    reproduce the exact continuation of the draw sequence; the property
    suite in ``tests/test_checkpoint_rng.py`` pins that for every stream
    the simulator owns.
    """
    return copy.deepcopy(generator.bit_generator.state)


def restore_rng(state: Dict[str, Any]) -> np.random.Generator:
    """A fresh :class:`numpy.random.Generator` continuing from ``state``."""
    name = state.get("bit_generator", "PCG64")
    try:
        bit_generator = getattr(np.random, name)()
    except AttributeError as error:
        raise CheckpointError(
            f"unknown bit generator {name!r} in checkpoint") from error
    bit_generator.state = copy.deepcopy(state)
    return np.random.Generator(bit_generator)


# -------------------------------------------------------------- run digest
def run_digest(core) -> str:
    """Content hash identifying which run a checkpoint belongs to.

    Two runs share a digest exactly when they would produce bit-identical
    histories from round 0: same strategy class, same dataset identity,
    same model parameter manifest and the same full config (seed, scenario,
    aggregation mode, fleet settings — everything).  The executor backend
    and broadcast transport are deliberately excluded: histories are
    bit-identical across them, so a serial checkpoint legitimately resumes
    on a process pool and vice versa.
    """
    strategy = core.strategy
    manifest = sorted(
        (key, str(value.dtype), tuple(int(n) for n in value.shape))
        for key, value in core.model.get_parameters().items())
    spec = {
        "checkpoint_version": CHECKPOINT_VERSION,
        "strategy_class": (type(strategy).__module__ + "."
                           + type(strategy).__qualname__),
        "strategy_name": strategy.name,
        "dataset": {
            "name": core.dataset.name,
            "num_clients": int(core.dataset.num_clients),
            "num_classes": int(core.dataset.num_classes),
            "input_shape": tuple(int(n) for n in core.dataset.input_shape),
        },
        "model": manifest,
        "config": canonicalize(asdict(core.config)),
    }
    canonical = json.dumps(canonicalize(spec), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ------------------------------------------------------------- the capsule
@dataclass
class RunCheckpoint:
    """Everything needed to continue a run from a round boundary."""

    version: int
    digest: str
    #: the first round the resumed run will execute
    next_round: int
    method: str
    dataset: str
    records: List[RoundRecord]
    #: ``strategy.__dict__`` minus the live ``context``
    strategy_attrs: Dict[str, Any]
    #: bit-generator state of the shared selection/strategy stream
    rng: Dict[str, Any]
    #: sparse ``{client_id: state}`` — participants only on a lazy fleet
    client_states: Dict[int, Dict[str, Any]]
    #: scheduler-specific state (name, aggregation version, clock, events)
    scheduler: Dict[str, Any] = field(default_factory=dict)


def _collect_client_states(clients) -> Dict[int, Dict[str, Any]]:
    """The per-client states to persist, sparse where the fleet is."""
    store = getattr(clients, "state_store", None)
    if store is not None:
        return store.snapshot()
    # plain Dict[int, Client] (hand-rolled cores in unit tests)
    return {cid: client.state for cid, client in sorted(clients.items())}


def capture_run(core, scheduler, history: TrainingHistory,
                next_round: int) -> RunCheckpoint:
    """Snapshot ``core``/``scheduler`` at a round boundary.

    Everything is deep-copied out of the live objects: training continues
    mutating the global parameters and client states in place, and a
    checkpoint that aliased them would silently describe a *later* round
    than it claims.
    """
    strategy_attrs = {key: value
                      for key, value in core.strategy.__dict__.items()
                      if key != "context"}
    return RunCheckpoint(
        version=CHECKPOINT_VERSION,
        digest=run_digest(core),
        next_round=int(next_round),
        method=history.method,
        dataset=history.dataset,
        records=copy.deepcopy(history.records),
        strategy_attrs=copy.deepcopy(strategy_attrs),
        rng=rng_state(core.context.rng),
        client_states=copy.deepcopy(_collect_client_states(core.clients)),
        scheduler={"name": scheduler.name,
                   **copy.deepcopy(scheduler.state_dict())},
    )


def restore_run(core, scheduler, checkpoint: RunCheckpoint,
                history: TrainingHistory) -> int:
    """Apply ``checkpoint`` to a freshly set-up core/scheduler pair.

    Must be called *after* ``strategy.setup(context)`` and
    ``scheduler.reset()`` — restoration overwrites the fresh-run state that
    setup installed.  Returns the round index the caller should continue
    from.  Raises :class:`CheckpointMismatch` when the checkpoint does not
    belong to this run (different config/seed/strategy/dataset/model) or to
    this scheduler.
    """
    if checkpoint.version != CHECKPOINT_VERSION:
        raise CheckpointMismatch(
            f"checkpoint version {checkpoint.version} != supported "
            f"{CHECKPOINT_VERSION}")
    digest = run_digest(core)
    if checkpoint.digest != digest:
        raise CheckpointMismatch(
            "checkpoint belongs to a different run (digest "
            f"{checkpoint.digest[:12]}… != {digest[:12]}…); refusing to "
            "resume — delete the checkpoint directory or fix the "
            "config/seed/method to match the original run")
    saved_scheduler = checkpoint.scheduler.get("name")
    if saved_scheduler != scheduler.name:
        raise CheckpointMismatch(
            f"checkpoint was written by the {saved_scheduler!r} scheduler "
            f"but this run uses {scheduler.name!r}")

    strategy = core.strategy
    for key, value in copy.deepcopy(checkpoint.strategy_attrs).items():
        setattr(strategy, key, value)
    # the context is shared between core and strategy; swapping its rng
    # resumes the selection/strategy stream mid-sequence
    core.context.rng = restore_rng(checkpoint.rng)
    clients = core.clients
    for client_id, state in copy.deepcopy(checkpoint.client_states).items():
        update = getattr(clients, "update_state", None)
        if update is not None:
            update(client_id, state)
        else:
            clients[client_id].state = state
    history.records = copy.deepcopy(checkpoint.records)
    scheduler.load_state_dict(checkpoint.scheduler)
    return checkpoint.next_round


# ----------------------------------------------------------------- on disk
def save_checkpoint(path: Union[str, Path],
                    checkpoint: RunCheckpoint) -> Path:
    """Atomically persist one checkpoint (write tmp, fsync, rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as handle:
        pickle.dump(checkpoint, handle, protocol=_PICKLE_PROTOCOL)
        handle.flush()
        os.fsync(handle.fileno())
    tmp.replace(path)
    return path


def load_checkpoint(path: Union[str, Path]) -> RunCheckpoint:
    """Load one checkpoint file (see module docstring: trusted input)."""
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            checkpoint = pickle.load(handle)
    except FileNotFoundError:
        raise CheckpointError(f"no checkpoint file at {path}") from None
    except (pickle.UnpicklingError, EOFError) as error:
        raise CheckpointError(
            f"corrupt checkpoint file {path}: {error}") from error
    if not isinstance(checkpoint, RunCheckpoint):
        raise CheckpointError(
            f"{path} does not contain a RunCheckpoint "
            f"(got {type(checkpoint).__name__})")
    return checkpoint


class CheckpointManager:
    """Round-boundary checkpointing into one directory.

    ``every`` selects which round boundaries persist (1 = every round);
    ``keep`` bounds the files on disk (oldest pruned after a successful
    write, so at least one complete checkpoint always survives a crash
    mid-save thanks to the atomic rename).  ``stop_after_round`` turns the
    manager into a deterministic preemption: once that round's checkpoint
    is on disk, :class:`TrainingInterrupted` aborts the run — the CI
    resume-smoke job and the golden resume suite interrupt runs this way.

    The manager records its last/total save wall-clock and bytes
    (``last_save_seconds``, ``last_bytes``, ...) so the benchmark harness
    can gate checkpoint cost without instrumenting the trainer.
    """

    def __init__(self, directory: Union[str, Path], *, every: int = 1,
                 keep: int = 2, stop_after_round: Optional[int] = None
                 ) -> None:
        if every <= 0:
            raise ValueError("every must be positive")
        if keep <= 0:
            raise ValueError("keep must be positive")
        self.directory = Path(directory)
        self.every = every
        self.keep = keep
        self.stop_after_round = stop_after_round
        self.last_save_seconds = 0.0
        self.last_bytes = 0
        self.total_save_seconds = 0.0
        self.saves = 0
        # loaded-checkpoint memo keyed by (path, mtime_ns, size): sweep
        # retries call latest() once per attempt and would otherwise re-read
        # an unchanged multi-MB pickle every time
        self._load_memo = BoundedLRU(2)
        # last round-boundary capsule, kept in memory even when the boundary
        # is not due() for disk — the emergency() path persists it when the
        # run dies between scheduled saves
        self._last_capsule: Optional[RunCheckpoint] = None
        self._last_saved_round: Optional[int] = None

    # ----------------------------------------------------------------- paths
    def path_for(self, next_round: int) -> Path:
        return self.directory / f"checkpoint-{next_round:06d}.pkl"

    def checkpoint_paths(self) -> List[Path]:
        """Existing checkpoint files, oldest (lowest next_round) first."""
        if not self.directory.is_dir():
            return []
        found = []
        for entry in self.directory.iterdir():
            match = _FILE_PATTERN.match(entry.name)
            if match is not None:
                found.append((int(match.group(1)), entry))
        return [path for _, path in sorted(found)]

    # ------------------------------------------------------------------- api
    def due(self, round_index: int) -> bool:
        """Whether the boundary after ``round_index`` should persist."""
        if (round_index + 1) % self.every == 0:
            return True
        return (self.stop_after_round is not None
                and round_index >= self.stop_after_round)

    def save(self, checkpoint: RunCheckpoint) -> Path:
        started = time.perf_counter()
        path = save_checkpoint(self.path_for(checkpoint.next_round),
                               checkpoint)
        self.last_save_seconds = time.perf_counter() - started
        self.total_save_seconds += self.last_save_seconds
        self.last_bytes = path.stat().st_size
        self.saves += 1
        self._prune()
        return path

    def after_round(self, core, scheduler, history: TrainingHistory,
                    round_index: int) -> None:
        """The scheduler hook: capture/save when due, then maybe interrupt.

        The capsule is captured at *every* boundary (capture is in-memory
        deep copies, no disk) so :meth:`emergency` always has the most
        recent boundary to persist even when ``every > 1`` skips the save.
        """
        capsule = capture_run(core, scheduler, history, round_index + 1)
        self._last_capsule = capsule
        if self.due(round_index):
            self.save(capsule)
            self._last_saved_round = capsule.next_round
        if (self.stop_after_round is not None
                and round_index >= self.stop_after_round):
            raise TrainingInterrupted(
                f"training stopped after round {round_index} "
                f"(checkpoint for round {round_index + 1} saved in "
                f"{self.directory}); rerun with resume to continue")

    def emergency(self) -> Optional[Path]:
        """Persist the last captured round boundary if it is not on disk.

        Called by the schedulers' crash guard when an exception escapes the
        round loop: the run still resumes from the *latest completed* round
        instead of the latest scheduled save.  A no-op (returns None) when
        nothing has been captured yet or the boundary was already saved.
        """
        capsule = self._last_capsule
        if capsule is None or self._last_saved_round == capsule.next_round:
            return None
        path = self.save(capsule)
        self._last_saved_round = capsule.next_round
        return path

    def latest(self) -> Optional[RunCheckpoint]:
        """The newest complete checkpoint in the directory, or None."""
        paths = self.checkpoint_paths()
        if not paths:
            return None
        return self.load(paths[-1])

    def load(self, path: Union[str, Path]) -> RunCheckpoint:
        path = Path(path)
        stat = path.stat()
        key = (str(path), stat.st_mtime_ns, stat.st_size)
        hit = self._load_memo.get(key)
        if hit is not None:
            return hit
        checkpoint = load_checkpoint(path)
        self._load_memo.put(key, checkpoint)
        return checkpoint

    def _prune(self) -> None:
        paths = self.checkpoint_paths()
        for stale in paths[:-self.keep]:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - benign cleanup race
                pass


def resolve_resume(resume_from, manager: Optional[CheckpointManager]
                   ) -> Optional[RunCheckpoint]:
    """Turn a ``resume_from`` argument into a checkpoint (or None).

    Accepted forms:

    * ``None`` — no resume;
    * ``"auto"`` (or ``True``) — the latest checkpoint in the manager's
      directory, or a fresh start when there is none yet (so "always run
      with resume" is a safe spot/preemptible idiom);
    * a :class:`RunCheckpoint` — used as-is;
    * a path to a checkpoint file, or to a directory of them (latest wins;
      an empty or missing explicit path is an error, unlike ``"auto"``).
    """
    if resume_from is None or resume_from is False:
        return None
    if isinstance(resume_from, RunCheckpoint):
        return resume_from
    if resume_from is True or resume_from == "auto":
        if manager is None:
            raise CheckpointError(
                "resume_from='auto' needs a checkpoint directory")
        return manager.latest()
    path = Path(resume_from)
    if path.is_dir():
        scan = CheckpointManager(path)
        checkpoint = scan.latest()
        if checkpoint is None:
            raise CheckpointError(f"no checkpoints in directory {path}")
        return checkpoint
    return load_checkpoint(path)
