"""FedLPS core: importance learning, learnable sparse training and P-UCBV."""

from .bandit import PUCBVAgent, RatioPartition
from .convergence import (empirical_parameter_gap, gradient_norm_trajectory,
                          lemma1_gap_bound, max_learning_rate, theorem1_bound)
from .importance import ImportanceIndicator, initialize_importance
from .losses import (LossBreakdown, add_gradients, combine_unit_gradients,
                     proximal_gradient, proximal_loss)
from .sparse_training import SparseTrainingResult, learnable_sparse_training
from .strategy import PATTERN_MODES, RATIO_POLICIES, FedLPS
from .utility import accuracy_utility, utility_gain

__all__ = [
    "FedLPS",
    "RATIO_POLICIES",
    "PATTERN_MODES",
    "ImportanceIndicator",
    "initialize_importance",
    "learnable_sparse_training",
    "SparseTrainingResult",
    "PUCBVAgent",
    "RatioPartition",
    "accuracy_utility",
    "utility_gain",
    "proximal_loss",
    "proximal_gradient",
    "add_gradients",
    "combine_unit_gradients",
    "LossBreakdown",
    "lemma1_gap_bound",
    "theorem1_bound",
    "max_learning_rate",
    "empirical_parameter_gap",
    "gradient_norm_trajectory",
]
