"""Distributed socket backend: remote workers over TCP.

:class:`SocketExecutor` is the fourth execution backend: workers are
separate *processes connected by sockets* rather than members of a
``concurrent.futures`` pool, so they can in principle live on other
machines.  Two deployment shapes share one protocol
(:mod:`repro.parallel.framing`):

* **localhost** (the default, what tests and CI exercise): the executor
  listens on an ephemeral ``127.0.0.1`` port and spawns
  ``python -m repro.parallel.worker --connect`` subprocesses that dial
  back in;
* **multi-host**: the executor is given ``host:port`` addresses of
  pre-started ``python -m repro.parallel.worker --listen`` daemons and
  connects out to them.  The shared ``--token`` authenticates both
  directions through a mutual HMAC challenge-response (see
  :mod:`repro.parallel.framing`): each peer proves it holds the token
  before the other trusts it with anything, the token itself never
  crosses the wire, and no unauthenticated byte is ever unpickled.

Broadcast semantics are content-addressed, like the shared-memory path:
a task payload carries :class:`~repro.parallel.broadcast.BroadcastHandle`
references, and a worker that does not hold a handle's segment bytes yet
pulls them once with a ``FETCH(digest)``/``BLOB`` exchange, then caches
them by digest.  The run-invariant session broadcast keeps one digest for
the whole run, so every worker fetches it exactly once (and a replacement
worker re-fetches it on its first task — re-materialization from the
manifest, no re-pickled params).  Workers must *not* attach the server's
shared-memory segments even on the same machine: an independent process
registers attachments with its **own** resource tracker (bpo-39959),
which would unlink the server's segments on worker exit — fetching bytes
over the socket sidesteps the hazard entirely and is exactly what a
remote worker needs anyway.

Failure semantics plug into the PR 8 supervision contract: a worker that
dies mid-task (EOF/reset on its socket — e.g. a SIGKILL) surfaces as
:class:`BrokenSocketPool`, a ``concurrent.futures.BrokenExecutor``
subclass, so :mod:`repro.parallel.supervision` reacts exactly as it does
to a broken process pool — ``replenish()`` (kill survivors, respawn or
reconnect the full complement cold) plus bounded retries, with exhausted
tasks degrading to dropped clients and every recovery charged to the
deterministic ``fault_*`` counters.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import os
import pickle
import queue
import socket
import subprocess
import sys
import threading
import time
from dataclasses import replace as dataclass_replace
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from ..util import BoundedLRU
from .broadcast import BroadcastHandle, _attach_and_copy
from .executors import EXECUTOR_BACKENDS, Executor
from .framing import (HANDSHAKE_TIMEOUT, HEADER_BYTES, ConnectionClosed,
                      FrameError, FrameKind, read_frame, send_frame,
                      server_handshake)

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

#: distinct broadcast segments kept servable for worker FETCHes — the live
#: set is the session broadcast plus the current round's fan-out(s), same
#: sizing logic as the worker-side materialize cache
HANDLE_REGISTRY_LIMIT = 16


class BrokenSocketPool(concurrent.futures.BrokenExecutor):
    """A socket worker died while a task was in flight.

    Subclassing ``BrokenExecutor`` is the integration contract with the
    supervision layer: its crash-isolation and unscheduled-breakage paths
    match on that base class, so a SIGKILLed remote worker recovers
    through the exact machinery a broken process pool does.
    """


class RemoteTaskError(RuntimeError):
    """A remote task failed in a way that could not cross the wire intact."""


def iter_broadcast_handles(obj: Any) -> Iterator[BroadcastHandle]:
    """Every :class:`BroadcastHandle` reachable through containers."""
    stack = [obj]
    while stack:
        node = stack.pop()
        if isinstance(node, BroadcastHandle):
            yield node
        elif isinstance(node, (list, tuple)):
            stack.extend(node)
        elif isinstance(node, dict):
            stack.extend(node.values())


def resolve_handles(obj: Any,
                    fetch: Callable[[BroadcastHandle], bytes]) -> Any:
    """Worker-side: swap shared-memory handles for inline ones.

    ``fetch(handle)`` returns the handle's whole segment bytes (from the
    worker's digest cache or a FETCH round trip); the replaced handle then
    rides the ordinary ``materialize`` inline path.  Containers are
    rebuilt only when something inside them actually changed.
    """
    if isinstance(obj, BroadcastHandle):
        if obj.inline is not None:
            return obj
        return dataclass_replace(obj, shm_name=None, inline=fetch(obj))
    if isinstance(obj, tuple):
        resolved = tuple(resolve_handles(item, fetch) for item in obj)
        return obj if all(a is b for a, b in zip(obj, resolved)) else resolved
    if isinstance(obj, list):
        resolved_list = [resolve_handles(item, fetch) for item in obj]
        return obj if all(a is b for a, b in zip(obj, resolved_list)) \
            else resolved_list
    if isinstance(obj, dict):
        resolved_dict = {key: resolve_handles(value, fetch)
                         for key, value in obj.items()}
        return obj if all(obj[key] is resolved_dict[key] for key in obj) \
            else resolved_dict
    return obj


class _TaskUnsent(Exception):
    """The TASK frame never reached the worker (socket already dead).

    The task provably did not start executing, so the connection hands it
    back to the shared queue instead of failing its future — this is what
    makes ``replenish()`` race-free for idle workers: a retiring
    connection that grabs one last task simply returns it, and the next
    generation runs it.
    """


def _set_result_safe(future: concurrent.futures.Future, result: Any) -> None:
    try:
        future.set_result(result)
    except concurrent.futures.InvalidStateError:  # abandoned (timed out)
        pass


def _set_exception_safe(future: concurrent.futures.Future,
                        exc: BaseException) -> None:
    try:
        future.set_exception(exc)
    except concurrent.futures.InvalidStateError:  # abandoned (timed out)
        pass


class _WorkerConnection:
    """One authenticated worker socket plus the thread that drives it.

    The protocol per task is strictly half-duplex: the thread sends one
    ``TASK``, then reads frames — serving any ``FETCH`` requests — until
    the matching ``RESULT``/``FAILED`` arrives.  Any transport error in
    between means the worker is gone: the in-flight future fails with
    :class:`BrokenSocketPool` and the connection retires itself.
    """

    def __init__(self, executor: "SocketExecutor", sock: socket.socket,
                 generation: int, worker_id: int,
                 process: Optional[subprocess.Popen] = None) -> None:
        self.executor = executor
        self.sock = sock
        self.generation = generation
        self.worker_id = worker_id
        self.process = process
        self.remote_pid: Optional[int] = None
        self.dead = False
        self.thread = threading.Thread(
            target=self._serve, daemon=True,
            name=f"socket-worker-{worker_id}")

    def start(self) -> None:
        self.thread.start()

    def close_socket(self) -> None:
        self.dead = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    # ------------------------------------------------------------ transport
    def _send(self, kind: int, payload: bytes) -> None:
        send_frame(self.sock, kind, payload)
        self.executor._count_io(sent=HEADER_BYTES + len(payload))

    def _read(self) -> Tuple[int, bytes]:
        kind, payload = read_frame(self.sock)
        self.executor._count_io(received=HEADER_BYTES + len(payload))
        return kind, payload

    # ----------------------------------------------------------------- loop
    def _serve(self) -> None:
        executor = self.executor
        try:
            while True:
                entry = executor._next_task(self)
                if entry is None:
                    return
                future = entry[2]
                try:
                    self._run_task(entry)
                except _TaskUnsent:
                    self.dead = True
                    executor._requeue(entry)
                    return
                except (ConnectionClosed, FrameError, OSError) as exc:
                    self.dead = True
                    _set_exception_safe(future, BrokenSocketPool(
                        f"socket worker {self.worker_id} (remote pid "
                        f"{self.remote_pid}) died mid-task: {exc}"))
                    return
        finally:
            self.close_socket()
            executor._connection_finished(self)

    def _run_task(self, entry: list) -> None:
        executor = self.executor
        fn, item, future, _ = entry
        task_id = executor._next_task_id()
        for handle in iter_broadcast_handles(item):
            if handle.inline is None:
                executor._register_handle(handle)
        try:
            frame = pickle.dumps((task_id, fn, item),
                                 protocol=_PICKLE_PROTOCOL)
        except Exception as exc:
            # an unpicklable task is the caller's error, same as the pool
            # backends — the connection (and its worker) stays healthy
            _set_exception_safe(future, exc)
            return
        try:
            self._send(FrameKind.TASK, frame)
        except FrameError as exc:
            # encode_frame refused the frame (an oversized task) before a
            # single byte hit the wire: the caller's error, exactly like
            # an unpicklable task — the worker stays healthy
            _set_exception_safe(future, exc)
            return
        except (ConnectionClosed, OSError) as exc:
            raise _TaskUnsent() from exc
        while True:
            kind, payload = self._read()
            if kind == FrameKind.FETCH:
                digest = payload.decode("ascii", "replace")
                self._send(FrameKind.BLOB, executor._segment_bytes(digest))
            elif kind == FrameKind.RESULT:
                try:
                    _, result = pickle.loads(payload)
                except Exception as exc:
                    _set_exception_safe(future, RemoteTaskError(
                        f"could not unpickle the result of task {task_id}: "
                        f"{exc}"))
                    return
                _set_result_safe(future, result)
                return
            elif kind == FrameKind.FAILED:
                try:
                    _, exc = pickle.loads(payload)
                except Exception as unpickle_exc:
                    exc = RemoteTaskError(
                        f"task {task_id} failed remotely and its exception "
                        f"could not be unpickled: {unpickle_exc}")
                _set_exception_safe(future, exc)
                return
            elif kind == FrameKind.BYE:
                raise ConnectionClosed("worker said BYE mid-task")
            else:
                raise FrameError(
                    f"unexpected frame kind {kind} while awaiting a result")


class SocketExecutor(Executor):
    """TCP-connected worker processes behind the :class:`Executor` API.

    Localhost by default: ``workers`` subprocesses are spawned and dial
    back into an ephemeral loopback listener.  Pass ``hosts`` (a list of
    ``"host:port"`` strings, with the ``token`` the daemons were started
    with) to connect out to pre-started remote workers instead.

    Tasks are pulled from one shared queue by whichever connected worker
    is free, so ``map_unordered`` overlaps work exactly like the pool
    backends; determinism is unaffected because callers never depend on
    assignment (the history sort key is ``(finish_time, client_id)``).
    """

    backend = "socket"
    supports_broadcast = True
    supports_real_faults = True
    can_replenish = True

    def __init__(self, workers: int = 1, *,
                 hosts: Optional[Sequence[str]] = None,
                 token: Optional[str] = None,
                 start_timeout: float = 30.0) -> None:
        if hosts:
            if token is None:
                raise ValueError(
                    "hosts mode needs the shared token the worker daemons "
                    "were started with (--worker-token)")
            super().__init__(len(hosts))
        else:
            super().__init__(workers)
        self._hosts = [self._parse_host(spec) for spec in hosts] \
            if hosts else None
        self._token = token if token is not None else os.urandom(16).hex()
        self._start_timeout = float(start_timeout)
        self._queue: "queue.Queue" = queue.Queue()
        self._lock = threading.RLock()
        self._connections: List[_WorkerConnection] = []
        self._processes: List[Tuple[subprocess.Popen, int]] = []
        self._generation = 0
        self._replenishing = False
        self._worker_seq = 0
        self._task_ids = itertools.count()
        self._handles = BoundedLRU(HANDLE_REGISTRY_LIMIT)
        self._handles_lock = threading.Lock()
        self._io_lock = threading.Lock()
        self.bytes_sent = 0
        self.bytes_received = 0
        self._listener: Optional[socket.socket] = None
        if self._hosts:
            self._connect_hosts(self._generation)
        else:
            self._listener = socket.create_server(("127.0.0.1", 0))
            self._port = self._listener.getsockname()[1]
            self._accept_thread = threading.Thread(
                target=self._accept_loop, daemon=True, name="socket-accept")
            self._accept_thread.start()
            self._spawn_workers(self._generation)

    @staticmethod
    def _parse_host(spec: str) -> Tuple[str, int]:
        host, sep, port = spec.rpartition(":")
        if not sep or not host or not port.isdigit():
            raise ValueError(f"worker host must be HOST:PORT, got {spec!r}")
        return host, int(port)

    # -------------------------------------------------------- worker supply
    def _worker_env(self) -> dict:
        # the subprocess must unpickle task functions however the server
        # would — the same contract as the spawn-based process backend,
        # which ships the parent's sys.path to its workers.  Mirror that:
        # the directory containing our package first (tests run off
        # PYTHONPATH=src, deployments off an installed package), then the
        # parent's import path, then any pre-existing PYTHONPATH.
        import repro
        src_dir = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__)))
        entries = [src_dir]
        entries.extend(entry for entry in sys.path if entry)
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        if existing:
            entries.append(existing)
        seen = set()
        unique = [entry for entry in entries
                  if not (entry in seen or seen.add(entry))]
        env["PYTHONPATH"] = os.pathsep.join(unique)
        return env

    def _spawn_workers(self, generation: int) -> None:
        command = [sys.executable, "-m", "repro.parallel.worker",
                   "--connect", f"127.0.0.1:{self._port}",
                   "--token", self._token]
        env = self._worker_env()
        for _ in range(self.workers):
            process = subprocess.Popen(command, env=env,
                                       stdin=subprocess.DEVNULL,
                                       stdout=subprocess.DEVNULL)
            with self._lock:
                self._processes.append((process, generation))
            threading.Thread(target=self._watch_process,
                             args=(process, generation), daemon=True).start()

    def _watch_process(self, process: subprocess.Popen,
                       generation: int) -> None:
        process.wait()
        self._maybe_fail_pending(generation)

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except OSError:  # listener closed
                return
            threading.Thread(target=self._admit, args=(sock,),
                             daemon=True).start()

    def _admit(self, sock: socket.socket) -> None:
        """Authenticate one inbound (localhost-spawned) worker.

        The handshake payloads are fixed-length raw bytes verified with
        a constant-time HMAC comparison — nothing from the peer is
        unpickled until it has proven the token, so a stray local
        process connecting to the loopback listener gets no pickle
        deserialization surface and no adoption.
        """
        try:
            sock.settimeout(HANDSHAKE_TIMEOUT)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            remote_pid = server_handshake(sock, self._token)
            sock.settimeout(None)
        except Exception:
            try:
                sock.close()
            except OSError:
                pass
            return
        self._adopt(sock, remote_pid=remote_pid)

    def _adopt(self, sock: socket.socket, *,
               remote_pid: Optional[int]) -> None:
        with self._lock:
            if self._closed:
                sock.close()
                return
            self._worker_seq += 1
            connection = _WorkerConnection(self, sock, self._generation,
                                           self._worker_seq)
            connection.remote_pid = remote_pid
            self._connections.append(connection)
        connection.start()

    def _connect_hosts(self, generation: int) -> None:
        assert self._hosts is not None
        for host, port in self._hosts:
            deadline = time.monotonic() + self._start_timeout
            while True:
                try:
                    sock = socket.create_connection(
                        (host, port), timeout=HANDSHAKE_TIMEOUT)
                    break
                except OSError as exc:
                    if time.monotonic() >= deadline:
                        raise BrokenSocketPool(
                            f"could not reach worker daemon {host}:{port} "
                            f"within {self._start_timeout:.0f}s: {exc}"
                        ) from exc
                    time.sleep(0.2)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(HANDSHAKE_TIMEOUT)
            # the accepting daemon speaks first, mirroring the localhost
            # direction: worker HELLO, executor challenge, worker proof —
            # nothing the daemon sends is unpickled before it verifies
            try:
                remote_pid = server_handshake(sock, self._token)
            except (ConnectionClosed, FrameError, OSError) as exc:
                sock.close()
                raise BrokenSocketPool(
                    f"worker daemon {host}:{port} failed authentication: "
                    f"{exc}") from exc
            sock.settimeout(None)
            self._adopt(sock, remote_pid=remote_pid)

    # ------------------------------------------------------------------ api
    def submit(self, fn: Callable[[Any], Any],
               item: Any) -> concurrent.futures.Future:
        self._ensure_open()
        self._observe([item])
        future: concurrent.futures.Future = concurrent.futures.Future()
        # [fn, item, future, started] — ``started`` flips once the future
        # is marked running, so a task requeued by a dying connection is
        # not double-transitioned when the next generation picks it up
        self._queue.put([fn, item, future, False])
        # a task queued after the pool's last worker already died would
        # otherwise wait forever: the process-exit/connection-retire
        # events that normally fail the queue fired before it was queued
        with self._lock:
            generation = self._generation
        self._maybe_fail_pending(generation)
        return future

    def map_ordered(self, fn, items):
        futures = [self.submit(fn, item) for item in list(items)]
        return [future.result() for future in futures]

    def map_unordered(self, fn, items):
        futures = {self.submit(fn, item): index
                   for index, item in enumerate(list(items))}
        results: List[Tuple[int, Any]] = []
        for future in concurrent.futures.as_completed(futures):
            results.append((futures[future], future.result()))
        return results

    def warm_up(self) -> None:
        """Block until the full worker complement is connected."""
        self._ensure_open()
        deadline = time.monotonic() + self._start_timeout
        while True:
            with self._lock:
                live = sum(1 for c in self._connections
                           if c.generation == self._generation and not c.dead)
                spawned_alive = any(
                    process.poll() is None for process, generation
                    in self._processes if generation == self._generation)
            if live >= self.workers:
                return
            if self._hosts is None and not spawned_alive:
                raise BrokenSocketPool(
                    "socket workers exited before connecting — check that "
                    "the worker subprocesses can import repro")
            if time.monotonic() >= deadline:
                raise BrokenSocketPool(
                    f"only {live}/{self.workers} socket workers connected "
                    f"within {self._start_timeout:.0f}s")
            time.sleep(0.02)

    def replenish(self) -> None:
        """Rebuild the full worker complement after worker loss.

        Everything goes: live sockets are closed (which retires their
        connection threads), localhost subprocesses are terminated, and a
        cold complement is spawned (or the remote daemons reconnected).
        Replacement workers need *no* re-shipped state — the run-invariant
        session broadcast keeps its digest, so their first task re-fetches
        the same content-addressed segment every original worker used.
        Queued tasks survive in the shared queue and are picked up by the
        new generation.
        """
        self._ensure_open()
        with self._lock:
            self._generation += 1
            generation = self._generation
            # the new generation has no workers until the respawn below
            # completes — park _maybe_fail_pending so a concurrent
            # submit() does not mistake the window for a dead pool
            self._replenishing = True
            connections = list(self._connections)
            processes = self._processes
            self._processes = []
        try:
            for connection in connections:
                connection.close_socket()
            for process, _ in processes:
                if process.poll() is None:
                    process.terminate()
            for process, _ in processes:
                try:
                    process.wait(timeout=5)
                except subprocess.TimeoutExpired:  # pragma: no cover - stuck
                    process.kill()
                    process.wait(timeout=5)
            if self._hosts:
                self._connect_hosts(generation)
            else:
                self._spawn_workers(generation)
        finally:
            with self._lock:
                self._replenishing = False

    def close(self) -> None:
        if self._closed:
            return
        super().close()
        with self._lock:
            connections = list(self._connections)
            self._connections = []
            processes = self._processes
            self._processes = []
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for connection in connections:
            connection.close_socket()
        for process, _ in processes:
            if process.poll() is None:
                process.terminate()
        for process, _ in processes:
            try:
                process.wait(timeout=5)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck
                process.kill()
        while True:
            try:
                entry = self._queue.get_nowait()
            except queue.Empty:
                break
            self._settle_closed(entry)
        for connection in connections:
            if connection.thread.is_alive() \
                    and connection.thread is not threading.current_thread():
                connection.thread.join(timeout=2)

    # ------------------------------------------------------------ internals
    def _next_task(self, connection: _WorkerConnection):
        """The next queued entry, or None when this connection should exit.

        Staleness is re-checked *after* the blocking ``get``: a retiring
        connection (``replenish()`` closed its socket while it waited) can
        win the race for a freshly queued task, and must hand it back for
        the new generation instead of failing it on a dead socket.
        """
        while True:
            with self._lock:
                if (self._closed or connection.dead
                        or connection.generation != self._generation):
                    return None
            try:
                entry = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            with self._lock:
                stale = (self._closed or connection.dead
                         or connection.generation != self._generation)
            if stale:
                if self._closed:
                    self._settle_closed(entry)
                else:
                    self._queue.put(entry)
                return None
            if not entry[3]:
                if not entry[2].set_running_or_notify_cancel():
                    continue  # cancelled while queued
                entry[3] = True
            return entry

    def _requeue(self, entry: list) -> None:
        """Hand back a task whose TASK frame never reached a worker."""
        if self._closed:
            self._settle_closed(entry)
        else:
            self._queue.put(entry)

    @staticmethod
    def _settle_closed(entry: list) -> None:
        _, _, future, started = entry
        if started:
            _set_exception_safe(future, BrokenSocketPool(
                "executor closed while the task was queued"))
        else:
            future.cancel()

    def _next_task_id(self) -> int:
        with self._lock:
            return next(self._task_ids)

    def _register_handle(self, handle: BroadcastHandle) -> None:
        with self._handles_lock:
            self._handles.put(handle.digest, handle)

    def _segment_bytes(self, digest: str) -> bytes:
        """Serve one FETCH: the segment bytes, or empty = cannot serve.

        Empty is unambiguous as an error marker — a real segment always
        contains at least the pickled payload blob.
        """
        with self._handles_lock:
            handle = self._handles.get(digest)
        if handle is None:
            return b""
        try:
            return _attach_and_copy(handle)
        except Exception:
            return b""

    def _count_io(self, *, sent: int = 0, received: int = 0) -> None:
        with self._io_lock:
            self.bytes_sent += sent
            self.bytes_received += received

    def _connection_finished(self, connection: _WorkerConnection) -> None:
        with self._lock:
            if connection in self._connections:
                self._connections.remove(connection)
        self._maybe_fail_pending(connection.generation)

    def _maybe_fail_pending(self, generation: int) -> None:
        """Fail queued tasks when a generation has no live workers left.

        Without this, an unsupervised ``map_ordered`` whose every worker
        died would wait forever; failing the queue turns the hang into a
        :class:`BrokenSocketPool` the caller (or supervision, which then
        replenishes) can act on.
        """
        with self._lock:
            if self._closed or generation != self._generation \
                    or self._replenishing:
                return
            if any(c.generation == generation and not c.dead
                   for c in self._connections):
                return
            if any(process.poll() is None for process, g in self._processes
                   if g == generation):
                return
            pending = []
            while True:
                try:
                    pending.append(self._queue.get_nowait())
                except queue.Empty:
                    break
        for _, _, future, started in pending:
            if started or future.set_running_or_notify_cancel():
                _set_exception_safe(future, BrokenSocketPool(
                    "every socket worker is gone; replenish() rebuilds "
                    "the pool"))


EXECUTOR_BACKENDS["socket"] = SocketExecutor
