"""Command-line interface for running FedLPS experiments.

Examples::

    python -m repro.cli run --dataset mnist --method fedlps --rounds 20
    python -m repro.cli compare --dataset cifar10 --methods fedavg fedper fedlps
    python -m repro.cli table1 --datasets mnist cifar10 --rounds 10
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from .baselines import TABLE1_METHODS, available_strategies
from .experiments import (format_rows, preset_for, run_method, scaled,
                          summarize, table1_accuracy_flops)


def _preset_overrides(args: argparse.Namespace) -> dict:
    overrides = {}
    if args.rounds is not None:
        overrides["num_rounds"] = args.rounds
    if args.clients is not None:
        overrides["num_clients"] = args.clients
    if args.clients_per_round is not None:
        overrides["clients_per_round"] = args.clients_per_round
    if args.local_iterations is not None:
        overrides["local_iterations"] = args.local_iterations
    if args.seed is not None:
        overrides["seed"] = args.seed
    return overrides


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="mnist",
                        help="mnist / cifar10 / cifar100 / tinyimagenet / reddit")
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--clients", type=int, default=None)
    parser.add_argument("--clients-per-round", type=int, default=None)
    parser.add_argument("--local-iterations", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro",
                                     description="FedLPS reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one method on one dataset")
    run_parser.add_argument("--method", default="fedlps",
                            choices=available_strategies())
    _add_common_arguments(run_parser)

    compare_parser = sub.add_parser("compare",
                                    help="run several methods on one dataset")
    compare_parser.add_argument("--methods", nargs="+", default=["fedavg", "fedlps"])
    _add_common_arguments(compare_parser)

    table1_parser = sub.add_parser("table1", help="reproduce Table I rows")
    table1_parser.add_argument("--datasets", nargs="+", default=["mnist"])
    table1_parser.add_argument("--methods", nargs="+", default=list(TABLE1_METHODS))
    _add_common_arguments(table1_parser)

    sub.add_parser("list", help="list available methods")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for name in available_strategies():
            print(name)
        return 0

    if args.command == "run":
        preset = scaled(preset_for(args.dataset), **_preset_overrides(args))
        history = run_method(args.method, preset)
        summary = summarize(history)
        print(format_rows([{"method": args.method, "dataset": args.dataset,
                            **summary}],
                          ["method", "dataset", "accuracy", "total_flops",
                           "total_time_seconds"]))
        return 0

    if args.command == "compare":
        preset = scaled(preset_for(args.dataset), **_preset_overrides(args))
        rows = []
        for method in args.methods:
            history = run_method(method, preset)
            rows.append({"method": method, "dataset": args.dataset,
                         **summarize(history)})
        print(format_rows(rows, ["method", "dataset", "accuracy",
                                 "total_flops", "total_time_seconds"]))
        return 0

    if args.command == "table1":
        rows = table1_accuracy_flops(datasets=args.datasets,
                                     methods=args.methods,
                                     overrides=_preset_overrides(args))
        print(format_rows(rows, ["method", "dataset", "accuracy",
                                 "total_flops", "total_time_seconds"]))
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
