"""Table I: accuracy and total FLOPs of every method on the five datasets.

The bench prints one row per (method, dataset) with the same columns the
paper reports (test accuracy, total training FLOPs) plus simulated time.
"""

from __future__ import annotations

import pytest

from repro.baselines import TABLE1_METHODS
from repro.experiments import table1_accuracy_flops

from conftest import bench_overrides, print_rows

DATASETS = ("mnist", "cifar10", "cifar100", "tinyimagenet", "reddit")


@pytest.mark.benchmark(group="table1")
def test_table1_accuracy_and_flops(benchmark):
    overrides = bench_overrides()

    def run():
        rows = []
        for dataset in DATASETS:
            rows.extend(table1_accuracy_flops(
                datasets=[dataset], methods=TABLE1_METHODS,
                overrides=overrides))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_rows("Table I: accuracy / FLOPs per method and dataset", rows)

    by_dataset = {}
    for row in rows:
        by_dataset.setdefault(row["dataset"], []).append(row)
    for dataset, dataset_rows in by_dataset.items():
        fedlps = next(r for r in dataset_rows if r["method"] == "fedlps")
        fedavg = next(r for r in dataset_rows if r["method"] == "fedavg")
        # headline shape: FedLPS trains with far fewer FLOPs than dense FL
        assert fedlps["total_flops"] < fedavg["total_flops"]
    assert len(rows) == len(DATASETS) * len(TABLE1_METHODS)
