"""Round fan-out benchmark: wall-clock and bytes across executor backends.

``repro bench`` times the same federated workload (FedLPS on the MNIST
preset — sparse patterns, per-client importance state, the P-UCBV bandit)
through every executor backend and worker count, with persistent pools warmed
up before timing so the numbers measure round fan-out rather than worker
start-up.  The spawn/start-up cost is recorded separately, both for honesty
and because the CI gate uses it as the tolerated margin between the process
and serial backends on starved runners.

Alongside wall-clock, the benchmark measures the serialization traffic of
one round two ways — with the legacy per-task payloads (every task carries
its own pickled strategy + parameters) and with the shared-memory broadcast
(parameters travel as raw blocks once per round, tasks carry handles) — and
reports the reduction factor.  Everything lands in ``BENCH_fanout.json``,
schema-compatible with the ``BENCH_parallel.json`` family (per-backend
``mean/min/samples_seconds``, ``cpu_count``, ``bench_scale``) so future perf
PRs have a trajectory to move.
"""

from __future__ import annotations

import json
import os
import pickle
import platform
import sys
import time
from pathlib import Path
from typing import Dict, Iterable, Optional

from ..experiments import preset_for, run_method, scaled
from ..parallel import broadcast_stats, reset_broadcast_stats, resolve_executor

#: the method every fan-out benchmark runs — FedLPS exercises the heaviest
#: state flows (importance indicators, bandit bookkeeping, sparse patterns)
BENCH_METHOD = "fedlps"

#: minimum process-vs-serial gate margin, guarding against a spuriously tiny
#: spawn-overhead measurement turning the gate into a coin flip
GATE_MARGIN_FLOOR_SECONDS = 0.1


def fanout_preset(scale: float = 1.0):
    """The benchmark workload at ``scale`` (1.0 == the CI smoke workload).

    Scale 1.0 reproduces the ``BENCH_parallel.json`` workload exactly
    (6 clients x 30 examples, 3 rounds, 2 local iterations), so fan-out
    numbers stay comparable across the two artifacts.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    num_clients = max(4, int(round(6 * scale)))
    overrides = {
        "num_clients": num_clients,
        "examples_per_client": max(16, int(round(30 * scale))),
        "num_rounds": max(2, int(round(3 * scale))),
        "clients_per_round": min(3, num_clients),
        "local_iterations": max(1, int(round(2 * scale))),
        "batch_size": 16,
        "seed": 7,
    }
    return scaled(preset_for("mnist"), **overrides)


def _timed_run(preset, executor=None, *, use_broadcast: bool = True) -> float:
    start = time.perf_counter()
    run_method(BENCH_METHOD, preset, executor=executor,
               use_broadcast=use_broadcast)
    return time.perf_counter() - start


def measure_aggregation_modes(preset,
                              aggregations: Iterable[str] = ("sync",
                                                             "fedasync",
                                                             "fedbuff"),
                              *, tta_fraction: float = 0.5
                              ) -> Dict[str, object]:
    """Wall-clock + sim-time-to-accuracy of each server aggregation mode.

    Every mode runs the same workload under the ``flaky`` scenario (Bernoulli
    availability on a heterogeneous fleet — the setting where asynchronous
    aggregation's sim-time advantage shows).  The time-to-accuracy target is
    shared across modes: ``tta_fraction`` of the *synchronous* run's best
    accuracy, so the async cells answer "how much sooner does the async
    server reach what sync eventually reaches".
    """
    flaky = scaled(preset, scenario="flaky")
    modes: Dict[str, Dict[str, object]] = {}
    histories = {}
    for aggregation in ["sync"] + [a for a in aggregations if a != "sync"]:
        agg_preset = scaled(flaky, aggregation=aggregation)
        start = time.perf_counter()
        histories[aggregation] = run_method(BENCH_METHOD, agg_preset)
        wall = time.perf_counter() - start
        modes[aggregation] = {"wall_seconds": wall}
    target = tta_fraction * histories["sync"].best_accuracy()
    for aggregation, history in histories.items():
        modes[aggregation].update({
            "sim_time_seconds": history.total_sim_time,
            "final_accuracy": history.final_accuracy(),
            "best_accuracy": history.best_accuracy(),
            "sim_time_to_accuracy_seconds":
                history.sim_time_to_accuracy(target),
            "mean_staleness": history.mean_staleness,
        })
    return {
        "scenario": "flaky",
        "target_accuracy": target,
        "tta_fraction": tta_fraction,
        "modes": {name: modes[name] for name in aggregations},
    }


def measure_fanout_bytes(preset) -> Dict[str, float]:
    """Serialized bytes per round: legacy per-task payloads vs broadcast.

    Both passes run on a 2-worker thread pool with a payload witness that
    pickles every submitted task payload — the payload objects are identical
    to what the process backend would ship, so the counts transfer.  The
    broadcast pass additionally reads the server-side broadcast counters:
    the pickled-once template blob and the raw (never pickled) parameter
    blocks in shared memory.

    The session broadcast's dataset blocks are a **once-per-run** payload;
    they are reported separately (``session_raw_bytes``) and excluded from
    ``shared_memory_raw_per_round`` so that cell keeps measuring per-round
    traffic and stays comparable across scales and PRs.  Since the virtual
    client fleet became the default, the session of a generated federation
    carries only its spec — ``session_raw_bytes`` is 0 because no dataset
    arrays cross the boundary at all (workers rebuild shards per cohort).
    """
    from ..experiments.presets import build_experiment
    from ..server.core import dataset_to_blocks

    rounds = preset.num_rounds
    dataset, _, _, _ = build_experiment(preset)
    session_raw = sum(block.nbytes
                      for block in dataset_to_blocks(dataset)[0].values())

    def _witnessed_run(use_broadcast: bool) -> int:
        task_bytes = 0

        def witness(item) -> None:
            nonlocal task_bytes
            task_bytes += len(pickle.dumps(item, pickle.HIGHEST_PROTOCOL))

        with resolve_executor("thread", 2) as executor:
            executor.payload_witness = witness
            run_method(BENCH_METHOD, preset, executor=executor,
                       use_broadcast=use_broadcast)
        return task_bytes

    legacy_bytes = _witnessed_run(use_broadcast=False)
    reset_broadcast_stats()
    broadcast_task_bytes = _witnessed_run(use_broadcast=True)
    stats = broadcast_stats()
    broadcast_pickled = broadcast_task_bytes + stats["blob_bytes"]
    return {
        "legacy_pickled_per_round": legacy_bytes / rounds,
        "broadcast_pickled_per_round": broadcast_pickled / rounds,
        "broadcast_task_payloads_per_round": broadcast_task_bytes / rounds,
        "shared_memory_raw_per_round":
            (stats["param_bytes"] - session_raw) / rounds,
        "session_raw_bytes": session_raw,
        "broadcast_publishes": stats["publishes"],
        "reduction_factor": (legacy_bytes / broadcast_pickled
                             if broadcast_pickled else float("inf")),
        "clients_per_round": preset.clients_per_round,
        "num_rounds": rounds,
    }


def run_fanout_bench(scale: float = 1.0,
                     backends: Iterable[str] = ("serial", "thread", "process"),
                     worker_counts: Iterable[int] = (1, 2, 4),
                     repeats: int = 2,
                     aggregations: Iterable[str] = ("sync", "fedasync",
                                                    "fedbuff"),
                     output: Optional[str] = None) -> Dict[str, object]:
    """Run the fan-out benchmark and return (and optionally write) the report.

    For each pool backend x worker count, one executor is created and kept
    for the whole cell: a warm-up run pays the pool start-up and fills the
    worker-side broadcast caches' import costs, then ``repeats`` timed runs
    measure steady-state round fan-out.  ``spawn_overhead`` = warm-up time
    minus the steady-state mean, clamped at zero.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    preset = fanout_preset(scale)
    reference = run_method(BENCH_METHOD, preset)

    timings: Dict[str, Dict[str, object]] = {}
    for backend in backends:
        counts = [1] if backend == "serial" else list(worker_counts)
        for workers in counts:
            label = backend if backend == "serial" else f"{backend}-{workers}"
            with resolve_executor(backend, workers) as executor:
                # the warm phase pays worker spawn + module imports + the
                # first run; steady-state samples then measure pure fan-out
                warm_start = time.perf_counter()
                executor.warm_up()
                history = run_method(BENCH_METHOD, preset, executor=executor)
                warmup_seconds = time.perf_counter() - warm_start
                samples = [_timed_run(preset, executor)
                           for _ in range(repeats)]
            mean = sum(samples) / len(samples)
            spawn_overhead = max(0.0, warmup_seconds - mean)
            timings[label] = {
                "workers": workers,
                "samples_seconds": samples,
                "mean_seconds": mean,
                "min_seconds": min(samples),
                "warmup_seconds": warmup_seconds,
                "spawn_overhead_seconds": spawn_overhead,
                "matches_serial_reference":
                    history.to_dict() == reference.to_dict(),
            }

    report: Dict[str, object] = {
        "bench_scale": scale,
        "method": BENCH_METHOD,
        "workload": {
            "dataset": preset.dataset,
            "num_clients": preset.num_clients,
            "clients_per_round": preset.clients_per_round,
            "num_rounds": preset.num_rounds,
            "local_iterations": preset.local_iterations,
        },
        "python": platform.python_version(),
        "platform": sys.platform,
        "cpu_count": os.cpu_count(),
        "timings": timings,
        "bytes": measure_fanout_bytes(preset),
        "aggregation": measure_aggregation_modes(preset, aggregations),
        "gate": _gate(timings),
    }
    if output:
        Path(output).write_text(json.dumps(report, indent=2, sort_keys=True))
    return report


def _gate(timings: Dict[str, Dict[str, object]]) -> Dict[str, object]:
    """The CI pass/fail verdict: correctness, then wall-clock.

    Every benchmarked backend must reproduce the serial reference history
    bit-for-bit.  On wall-clock, steady-state process fan-out may
    legitimately trail serial on a starved (1-2 core) runner because of
    per-task IPC, but never by more than *its own* recorded pool start-up
    overhead — if it does, per-task payloads have regressed.  Without both
    backends in the run the timing clause passes vacuously.
    """
    diverged = sorted(label for label, entry in timings.items()
                      if not entry["matches_serial_reference"])
    if diverged:
        return {"pass": False,
                "reason": f"histories diverged from the serial reference: "
                          f"{diverged}"}
    serial = timings.get("serial")
    process_entries = {label: entry for label, entry in timings.items()
                       if label.startswith("process-")}
    if serial is None or not process_entries:
        return {"pass": True, "reason": "serial + process not both benchmarked"}
    best_label = min(process_entries,
                     key=lambda label: process_entries[label]["mean_seconds"])
    best = process_entries[best_label]
    process_mean = float(best["mean_seconds"])
    serial_mean = float(serial["mean_seconds"])
    # the margin is the compared cell's own spawn overhead (not the worst
    # cell's), so slack from a wider pool cannot mask a fan-out regression
    margin = max(float(best["spawn_overhead_seconds"]),
                 GATE_MARGIN_FLOOR_SECONDS)
    return {
        "pass": process_mean <= serial_mean + margin,
        "serial_mean_seconds": serial_mean,
        "process_mean_seconds": process_mean,
        "process_entry": best_label,
        "margin_seconds": margin,
    }


def format_bench_report(report: Dict[str, object]) -> str:
    """Render a report as the aligned text table the CLI prints."""
    lines = [f"# repro bench — scale {report['bench_scale']}, "
             f"method {report['method']}, cpu_count {report['cpu_count']}"]
    header = (f"{'backend':>12s} | {'workers':>7s} | {'mean_s':>10s} | "
              f"{'min_s':>10s} | {'spawn_s':>10s} | {'identical':>9s}")
    lines += [header, "-" * len(header)]
    for label, entry in sorted(report["timings"].items()):
        lines.append(
            f"{label:>12s} | {entry['workers']:>7d} | "
            f"{entry['mean_seconds']:>10.4f} | {entry['min_seconds']:>10.4f} | "
            f"{entry['spawn_overhead_seconds']:>10.4f} | "
            f"{str(entry['matches_serial_reference']):>9s}")
    traffic = report["bytes"]
    lines.append(
        f"bytes/round: legacy {traffic['legacy_pickled_per_round']:.0f} -> "
        f"broadcast {traffic['broadcast_pickled_per_round']:.0f} pickled "
        f"(+{traffic['shared_memory_raw_per_round']:.0f} raw shared-memory, "
        f"+{traffic['session_raw_bytes']:.0f} once-per-run session blocks), "
        f"reduction {traffic['reduction_factor']:.1f}x "
        f"(clients_per_round={traffic['clients_per_round']})")
    aggregation = report["aggregation"]
    for name, mode in aggregation["modes"].items():
        tta = mode["sim_time_to_accuracy_seconds"]
        lines.append(
            f"aggregation {name:>9s}: wall {mode['wall_seconds']:.4f}s, "
            f"sim {mode['sim_time_seconds']:.4f}s, "
            f"sim-to-{aggregation['target_accuracy']:.2f}-acc "
            f"{'-' if tta is None else format(tta, '.4f')}s, "
            f"staleness {mode['mean_staleness']:.2f}")
    gate = report["gate"]
    if "serial_mean_seconds" in gate:
        lines.append(
            f"gate: process {gate['process_mean_seconds']:.4f}s vs serial "
            f"{gate['serial_mean_seconds']:.4f}s + margin "
            f"{gate['margin_seconds']:.4f}s -> "
            f"{'PASS' if gate['pass'] else 'FAIL'}")
    else:
        lines.append(f"gate: PASS ({gate.get('reason', 'not applicable')})")
    return "\n".join(lines)
