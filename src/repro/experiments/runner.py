"""Running one method on one preset, and parallel sweep helpers.

Two levels of parallelism compose here:

* :func:`run_method` accepts an ``executor`` that the trainer uses to fan
  per-round client updates and evaluation across workers;
* :func:`run_methods`, :func:`run_across_datasets` and :func:`run_sweep`
  dispatch *whole* (method, preset) runs as independent jobs on an executor,
  which is the better fit for figure/table grids (each job is a full serial
  simulation, so there is no cross-worker chatter at all).

Sweep helpers consult an optional :class:`~repro.experiments.cache.ResultCache`
so repeated figure builds only pay for the runs whose spec actually changed.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..baselines import build_strategy
from ..federated import FederatedTrainer
from ..federated.strategy import Strategy
from ..parallel import Executor
from ..parallel.supervision import RetryPolicy, retry_call
from ..systems import TrainingHistory
from .cache import ResultCache, run_spec, spec_key
from .presets import ExperimentPreset, build_experiment, preset_for, scaled

#: a fully-specified sweep job: (method, preset, strategy constructor kwargs)
JobSpec = Tuple[str, ExperimentPreset, Optional[dict]]


def run_method(method: str, preset: ExperimentPreset, *,
               strategy: Optional[Strategy] = None,
               strategy_kwargs: Optional[dict] = None,
               executor: Optional[Executor] = None,
               cache: Optional[ResultCache] = None,
               use_broadcast: bool = True,
               checkpoint_dir: Optional[Union[str, Path]] = None,
               checkpoint_every: int = 1,
               resume: bool = False,
               stop_after_round: Optional[int] = None) -> TrainingHistory:
    """Run one method on one experiment preset and return its history.

    ``method`` is a registry name (see ``repro.baselines.available_strategies``);
    a pre-built ``strategy`` instance can be passed instead for ablation
    variants that need custom constructor arguments — such runs bypass the
    cache, whose keys only cover registry specs.  ``executor`` parallelizes
    the per-round client work inside the trainer; ``use_broadcast=False``
    opts out of the shared-memory round broadcast (legacy per-task payloads,
    kept for the benchmark harness's bytes accounting — results are
    bit-identical either way).

    ``checkpoint_dir`` turns on round-boundary checkpointing (see
    :mod:`repro.checkpoint`); with ``resume=True`` the run continues from
    the directory's latest checkpoint when one exists (bit-identical to an
    uninterrupted run) and starts fresh otherwise, so retrying callers can
    always pass it.  ``stop_after_round`` deterministically interrupts the
    run after checkpointing that round (testing/CI preemption).
    """
    cacheable = cache is not None and strategy is None
    if cacheable:
        cached = cache.get(method, preset, strategy_kwargs)
        if cached is not None:
            return cached
    dataset, model_builder, config, fleet = build_experiment(preset)
    strat = strategy if strategy is not None \
        else build_strategy(method, **(strategy_kwargs or {}))
    trainer = FederatedTrainer(strat, dataset, model_builder, config=config,
                               fleet=fleet, executor=executor,
                               use_broadcast=use_broadcast)
    history = trainer.run(
        checkpoint_dir=None if checkpoint_dir is None else str(checkpoint_dir),
        checkpoint_every=checkpoint_every,
        resume_from="auto" if resume else None,
        stop_after_round=stop_after_round)
    history.dataset = preset.dataset
    if cacheable:
        cache.put(method, preset, strategy_kwargs, history)
    return history


def sweep_cell_dir(checkpoint_root: Union[str, Path], spec: JobSpec) -> Path:
    """The per-cell checkpoint directory of one sweep job.

    Keyed by the same content hash as the result cache, so a retried sweep
    finds exactly its own cells — and a cell whose spec changed (different
    seed, rounds, scenario) gets a fresh directory instead of tripping the
    checkpoint digest check.
    """
    method, preset, strategy_kwargs = spec
    digest = spec_key(run_spec(method, preset, strategy_kwargs))[:16]
    safe_method = "".join(c if c.isalnum() else "_" for c in method)
    return Path(checkpoint_root) / f"{safe_method}-{preset.dataset}-{digest}"


#: payload of one resilient sweep job: (spec, cell checkpoint dir, retries)
_ResilientJob = Tuple[JobSpec, Optional[str], int]


def _sweep_job(spec: JobSpec) -> TrainingHistory:
    """Run one sweep job; module-level so process workers can import it."""
    method, preset, strategy_kwargs = spec
    return run_method(method, preset, strategy_kwargs=strategy_kwargs)


def _sweep_job_resilient(payload: _ResilientJob) -> TrainingHistory:
    """Run one sweep job with in-worker retries from its last checkpoint.

    Retrying must live *inside* the job function: executor backends
    propagate a worker exception straight to the caller, which would take
    the whole sweep down with it.  The retry loop is the shared
    :func:`~repro.parallel.supervision.retry_call` machinery (bounded
    attempts, capped backoff); every attempt resumes from the cell's latest
    checkpoint, so attempt N+1 repeats only the rounds attempt N had not
    yet persisted — and the schedulers' emergency checkpoint means a crash
    mid-round costs at most the crashed round.  The final attempt re-raises.
    """
    (method, preset, strategy_kwargs), cell_dir, retries = payload
    return retry_call(
        lambda: run_method(method, preset, strategy_kwargs=strategy_kwargs,
                           checkpoint_dir=cell_dir,
                           resume=cell_dir is not None),
        policy=RetryPolicy(max_retries=retries))


def run_jobs(specs: List[JobSpec], *, executor: Optional[Executor] = None,
             cache: Optional[ResultCache] = None,
             checkpoint_root: Optional[Union[str, Path]] = None,
             retries: int = 0) -> List[TrainingHistory]:
    """Run every job spec, in parallel where possible, returning input order.

    Cache hits are filled in without dispatching a job; misses run on the
    executor and are written back to the cache as each job completes (in
    completion order, so a long sweep's cache grows incrementally even if it
    is interrupted).

    With ``checkpoint_root`` set, each cell checkpoints into its own
    spec-keyed subdirectory and failed cells are retried up to ``retries``
    times *inside the worker*, resuming from their last checkpoint — a
    transient failure in one cell costs at most that cell's unpersisted
    rounds, never the sweep.  (``retries`` without a root still retries,
    just from round 0.)
    """
    if retries < 0:
        raise ValueError("retries must be >= 0")
    results: Dict[int, TrainingHistory] = {}
    pending: List[JobSpec] = []
    pending_positions: List[int] = []
    for position, spec in enumerate(specs):
        hit = cache.get(*spec) if cache is not None else None
        if hit is not None:
            results[position] = hit
        else:
            pending.append(spec)
            pending_positions.append(position)
    if pending:
        resilient = checkpoint_root is not None or retries > 0
        if resilient:
            jobs: List[_ResilientJob] = [
                (spec,
                 str(sweep_cell_dir(checkpoint_root, spec))
                 if checkpoint_root is not None else None,
                 retries)
                for spec in pending]
            if executor is None:
                completed = [(index, _sweep_job_resilient(job))
                             for index, job in enumerate(jobs)]
            else:
                completed = executor.map_unordered(_sweep_job_resilient, jobs)
        elif executor is None:
            completed = [(index, _sweep_job(spec))
                         for index, spec in enumerate(pending)]
        else:
            completed = executor.map_unordered(_sweep_job, pending)
        for index, history in completed:
            method, preset, strategy_kwargs = pending[index]
            if cache is not None:
                cache.put(method, preset, strategy_kwargs, history)
            results[pending_positions[index]] = history
    return [results[position] for position in range(len(specs))]


def run_methods(methods: Iterable[str], preset: ExperimentPreset, *,
                executor: Optional[Executor] = None,
                cache: Optional[ResultCache] = None,
                checkpoint_root: Optional[Union[str, Path]] = None,
                retries: int = 0) -> Dict[str, TrainingHistory]:
    """Run several registry methods on the same preset."""
    methods = list(methods)
    histories = run_jobs([(method, preset, None) for method in methods],
                         executor=executor, cache=cache,
                         checkpoint_root=checkpoint_root, retries=retries)
    return dict(zip(methods, histories))


def run_across_datasets(method: str, datasets: Iterable[str], *,
                        overrides: Optional[dict] = None,
                        executor: Optional[Executor] = None,
                        cache: Optional[ResultCache] = None,
                        checkpoint_root: Optional[Union[str, Path]] = None,
                        retries: int = 0) -> Dict[str, TrainingHistory]:
    """Run one method on several datasets with shared preset overrides."""
    overrides = overrides or {}
    datasets = list(datasets)
    specs: List[JobSpec] = [
        (method, scaled(preset_for(dataset), **overrides), None)
        for dataset in datasets]
    histories = run_jobs(specs, executor=executor, cache=cache,
                         checkpoint_root=checkpoint_root, retries=retries)
    return dict(zip(datasets, histories))


def run_sweep(methods: Iterable[str], datasets: Iterable[str], *,
              overrides: Optional[dict] = None,
              executor: Optional[Executor] = None,
              cache: Optional[ResultCache] = None,
              checkpoint_root: Optional[Union[str, Path]] = None,
              retries: int = 0) -> Dict[Tuple[str, str], TrainingHistory]:
    """Run the full method × dataset grid behind the tables and figures.

    Returns a mapping from ``(method, dataset)`` to history.  With an
    executor the grid's jobs run concurrently; with a cache only the specs
    not seen before are executed.
    """
    overrides = overrides or {}
    methods = list(methods)
    datasets = list(datasets)
    grid: List[Tuple[str, str]] = [(method, dataset)
                                   for method in methods
                                   for dataset in datasets]
    specs: List[JobSpec] = [
        (method, scaled(preset_for(dataset), **overrides), None)
        for method, dataset in grid]
    histories = run_jobs(specs, executor=executor, cache=cache,
                         checkpoint_root=checkpoint_root, retries=retries)
    return dict(zip(grid, histories))


def run_scenario_sweep(methods: Iterable[str], datasets: Iterable[str],
                       scenarios: Iterable[str] = ("ideal",),
                       aggregations: Iterable[str] = ("sync",), *,
                       overrides: Optional[dict] = None,
                       executor: Optional[Executor] = None,
                       cache: Optional[ResultCache] = None,
                       checkpoint_root: Optional[Union[str, Path]] = None,
                       retries: int = 0
                       ) -> Dict[Tuple[str, str, str, str], TrainingHistory]:
    """Run the method × dataset × scenario × aggregation grid.

    The scenario and aggregation mode both ride inside the preset (their
    names are part of the cache spec), so sweeps get the same incremental
    caching and parallel job dispatch as plain sweeps.  ``scenario`` /
    ``aggregation`` keys in ``overrides`` are ignored: the grid axes are
    authoritative here.  Keys are ``(method, dataset, scenario,
    aggregation)``.

    Note that ``summarize``'s ``time_to_accuracy_seconds`` targets 90% of
    each run's *own* best accuracy — comparable across scenarios, but an
    uneven bar between aggregation modes.  For sync-vs-async comparisons
    against a *shared* target use :func:`~repro.experiments.tables
    .scenario_table` (its ``time_to_sync_target_seconds`` column) or
    ``repro bench --aggregations``.
    """
    overrides = dict(overrides or {})
    overrides.pop("scenario", None)
    overrides.pop("aggregation", None)
    methods = list(methods)
    datasets = list(datasets)
    scenarios = list(scenarios)
    aggregations = list(aggregations)
    grid: List[Tuple[str, str, str, str]] = [
        (method, dataset, scenario, aggregation)
        for method in methods
        for dataset in datasets
        for scenario in scenarios
        for aggregation in aggregations]
    specs: List[JobSpec] = [
        (method, scaled(preset_for(dataset), scenario=scenario,
                        aggregation=aggregation, **overrides), None)
        for method, dataset, scenario, aggregation in grid]
    histories = run_jobs(specs, executor=executor, cache=cache,
                         checkpoint_root=checkpoint_root, retries=retries)
    return dict(zip(grid, histories))


def summarize(history: TrainingHistory, *, last_rounds: int = 3,
              tta_fraction: float = 0.9) -> Dict[str, float]:
    """Headline numbers extracted from one run (the Table I columns).

    ``time_to_accuracy_seconds`` is the simulated scenario wall-clock until
    the run first reaches ``tta_fraction`` of its own best accuracy (None if
    it never does), which stays comparable across scenarios that drop
    clients or idle until deadlines.
    """
    # wire byte totals exist only for runs under a non-dense codec (the
    # per-round reports live in RoundRecord.extras); None otherwise
    wire_upload = sum(record.extras.get("wire_upload_bytes", 0.0)
                      for record in history.records)
    return {
        "accuracy": history.final_accuracy(last_rounds),
        "best_accuracy": history.best_accuracy(),
        "total_flops": history.total_flops,
        "total_time_seconds": history.total_time_seconds,
        "total_upload_bytes": history.total_upload_bytes,
        "wire_upload_bytes": wire_upload if wire_upload else None,
        "sim_time_seconds": history.total_sim_time,
        "time_to_accuracy_seconds": history.time_to_fraction(tta_fraction),
        "dropped_clients": history.total_dropped,
        "straggler_drops": history.total_stragglers,
        "mean_staleness": history.mean_staleness,
    }


def format_rows(rows: List[Dict[str, object]], columns: List[str]) -> str:
    """Render a list of row dictionaries as an aligned text table."""
    header = " | ".join(f"{name:>18s}" for name in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = []
        for name in columns:
            value = row.get(name, "")
            if value is None:
                cells.append(f"{'-':>18s}")
            elif isinstance(value, float):
                cells.append(f"{value:>18.4g}")
            else:
                cells.append(f"{str(value):>18s}")
        lines.append(" | ".join(cells))
    return "\n".join(lines)
