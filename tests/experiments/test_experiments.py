"""Tests for the experiment harness (presets, runner, tables, figures)."""

import pytest

from repro.experiments import (DATASETS, ExperimentPreset, accuracy_vs_flops,
                               build_experiment, format_rows,
                               heterogeneity_sweep, noniid_level_sweep,
                               pattern_ratio_sweep, preset_for, run_method,
                               run_methods, scaled, summarize,
                               table1_accuracy_flops, table2_ablation,
                               time_to_accuracy)

TINY = {"num_clients": 5, "examples_per_client": 24, "num_rounds": 2,
        "clients_per_round": 2, "local_iterations": 2, "batch_size": 8,
        "seed": 1}


class TestPresets:
    def test_preset_for_every_dataset(self):
        for dataset in DATASETS:
            preset = preset_for(dataset)
            assert preset.dataset == dataset

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            preset_for("imagenet")

    def test_scaled_overrides_fields(self):
        preset = scaled(preset_for("mnist"), num_rounds=3)
        assert preset.num_rounds == 3
        assert preset_for("mnist").num_rounds != 3 or True

    def test_build_experiment_components(self):
        preset = scaled(preset_for("mnist"), **TINY)
        dataset, model_builder, config, fleet = build_experiment(preset)
        assert dataset.num_clients == TINY["num_clients"]
        assert config.num_rounds == TINY["num_rounds"]
        assert len(fleet) == TINY["num_clients"]
        assert model_builder().num_parameters > 0

    def test_invalid_heterogeneity_level(self):
        preset = scaled(preset_for("mnist"), heterogeneity="extreme")
        with pytest.raises(ValueError):
            build_experiment(preset)


class TestRunner:
    def test_run_method_returns_history(self):
        preset = scaled(preset_for("mnist"), **TINY)
        history = run_method("fedavg", preset)
        assert len(history) == TINY["num_rounds"]
        summary = summarize(history)
        assert set(summary) == {"accuracy", "best_accuracy", "total_flops",
                                "total_time_seconds", "total_upload_bytes",
                                "wire_upload_bytes",
                                "sim_time_seconds", "time_to_accuracy_seconds",
                                "dropped_clients", "straggler_drops",
                                "mean_staleness"}
        # dense-codec runs produce no wire report
        assert summary["wire_upload_bytes"] is None
        # without a scenario the simulated clock equals the Eq. 18 round time
        assert summary["sim_time_seconds"] == pytest.approx(
            summary["total_time_seconds"])

    def test_run_methods_multiple(self):
        preset = scaled(preset_for("mnist"), **TINY)
        histories = run_methods(["fedavg", "fedlps"], preset)
        assert set(histories) == {"fedavg", "fedlps"}

    def test_format_rows_renders_all_columns(self):
        rows = [{"a": 1.0, "b": "x"}, {"a": 2.0, "b": "y"}]
        text = format_rows(rows, ["a", "b"])
        assert "x" in text and "y" in text and len(text.splitlines()) == 4


class TestTables:
    def test_table1_rows(self):
        rows = table1_accuracy_flops(datasets=["mnist"],
                                     methods=["fedavg", "fedlps"],
                                     overrides=TINY)
        assert len(rows) == 2
        assert {row["method"] for row in rows} == {"fedavg", "fedlps"}
        assert all(row["total_flops"] > 0 for row in rows)

    def test_table2_rows(self):
        rows = table2_ablation(dataset="mnist", overrides=TINY)
        assert len(rows) == 5
        assert {row["variant"] for row in rows} == {
            "FLST", "RCR-Fix", "P-UCBV-Fix", "RCR-Dyn", "P-UCBV-Dyn"}


class TestFigures:
    def test_accuracy_vs_flops_series(self):
        series = accuracy_vs_flops("mnist", methods=("fedavg", "fedlps"),
                                   overrides=TINY)
        assert set(series) == {"fedavg", "fedlps"}
        for points in series.values():
            assert len(points) == TINY["num_rounds"]
            flops = [p["flops"] for p in points]
            assert flops == sorted(flops)

    def test_time_to_accuracy_rows(self):
        rows = time_to_accuracy(datasets=("mnist",), methods=("fedavg", "fedlps"),
                                target_fraction=0.5, overrides=TINY)
        assert len(rows) == 2
        assert all("time_to_accuracy_seconds" in row for row in rows)

    def test_noniid_sweep_rows(self):
        rows = noniid_level_sweep(dataset="mnist", missing_classes=(6, 8),
                                  methods=("fedlps",), overrides=TINY)
        assert len(rows) == 2
        assert {row["missing_classes"] for row in rows} == {6, 8}

    def test_heterogeneity_sweep_rows(self):
        rows = heterogeneity_sweep(dataset="mnist", levels=("low", "high"),
                                   methods=("fedavg",), overrides=TINY)
        assert len(rows) == 2
        assert {row["heterogeneity"] for row in rows} == {"low", "high"}

    def test_pattern_ratio_sweep_rows(self):
        rows = pattern_ratio_sweep(dataset="mnist", ratios=(0.4, 0.8),
                                   patterns=("learnable", "ordered"),
                                   overrides=TINY)
        assert len(rows) == 4
        flops_04 = next(r["total_flops"] for r in rows
                        if r["sparse_ratio"] == 0.4 and r["pattern"] == "ordered")
        flops_08 = next(r["total_flops"] for r in rows
                        if r["sparse_ratio"] == 0.8 and r["pattern"] == "ordered")
        assert flops_08 > flops_04
