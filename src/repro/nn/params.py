"""Helpers for manipulating flat parameter dictionaries.

Federated learning moves parameter snapshots around constantly (global
parameters, local updates, residuals, masked uploads).  These helpers give
that traffic a single, explicit vocabulary: every snapshot is a
``{"layer.param": ndarray}`` dictionary and every operation returns a new
dictionary without mutating its inputs.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

import numpy as np

ParamDict = Dict[str, np.ndarray]


def copy_params(params: Mapping[str, np.ndarray]) -> ParamDict:
    """Deep-copy a parameter dictionary."""
    return {key: np.array(value, copy=True) for key, value in params.items()}


def zeros_like(params: Mapping[str, np.ndarray]) -> ParamDict:
    """A dictionary of zero arrays with the same keys/shapes."""
    return {key: np.zeros_like(value) for key, value in params.items()}


def add(left: Mapping[str, np.ndarray], right: Mapping[str, np.ndarray]) -> ParamDict:
    """Element-wise sum of two parameter dictionaries."""
    _check_same_keys(left, right)
    return {key: left[key] + right[key] for key in left}


def subtract(left: Mapping[str, np.ndarray], right: Mapping[str, np.ndarray]) -> ParamDict:
    """Element-wise difference ``left - right``."""
    _check_same_keys(left, right)
    return {key: left[key] - right[key] for key in left}


def scale(params: Mapping[str, np.ndarray], factor: float) -> ParamDict:
    """Multiply every entry by ``factor``."""
    return {key: value * factor for key, value in params.items()}


def add_(left: ParamDict, right: Mapping[str, np.ndarray]) -> ParamDict:
    """In-place element-wise sum: ``left += right``, returning ``left``.

    The in-place variants serve hot paths where the caller owns the left
    operand and the copying helpers above would allocate a fresh dictionary
    per call — e.g. the per-step proximal gradient in
    ``federated.local.train_locally``.
    """
    _check_same_keys(left, right)
    for key, value in left.items():
        value += right[key]
    return left


def scale_(params: ParamDict, factor: float) -> ParamDict:
    """In-place scaling: every entry ``*= factor``, returning ``params``."""
    for value in params.values():
        value *= factor
    return params


def multiply(left: Mapping[str, np.ndarray], right: Mapping[str, np.ndarray]) -> ParamDict:
    """Element-wise (Hadamard) product, e.g. ``omega * mask``."""
    _check_same_keys(left, right)
    return {key: left[key] * right[key] for key in left}


def weighted_average(param_dicts: Iterable[Mapping[str, np.ndarray]],
                     weights: Iterable[float]) -> ParamDict:
    """Weighted average of parameter dictionaries (weights are normalized).

    Single-pass and allocation-light: ``param_dicts`` may be a generator (it
    is consumed exactly once) and the accumulation reuses one preallocated
    scratch array per parameter instead of materializing a scaled temporary
    per client.  Results are bit-identical to the naive
    ``sum(params * w / total)`` formulation — each contribution is still
    computed as ``params[key] * (weight / total)`` and added in input order.

    Under an active reducer shard plan (``ServerCore.reduce_context``) the
    reduction is partitioned by key across shards; each key still
    accumulates independently in input order, so the result is bit-identical
    (proof in :mod:`repro.parallel.sharding`).
    """
    from ..parallel.sharding import active_plan
    plan = active_plan()
    if plan is not None:
        from ..parallel.sharding import sharded_weighted_average
        return sharded_weighted_average(plan, param_dicts, weights)
    weight_list = [float(w) for w in weights]
    total = sum(weight_list)
    result: ParamDict = {}
    scratch: ParamDict = {}
    count = 0
    for params in param_dicts:
        count += 1
        if count > len(weight_list):
            raise ValueError("parameter dictionaries and weights must have equal length")
        if count == 1:
            if total <= 0:
                raise ValueError("weights must sum to a positive value")
            result = zeros_like(params)
            scratch = {key: np.empty_like(value) for key, value in result.items()}
        _check_same_keys(result, params)
        factor = weight_list[count - 1] / total
        for key, accumulator in result.items():
            np.multiply(params[key], factor, out=scratch[key])
            accumulator += scratch[key]
    if count == 0:
        raise ValueError("cannot average an empty collection of parameters")
    if count != len(weight_list):
        raise ValueError("parameter dictionaries and weights must have equal length")
    return result


def flatten(params: Mapping[str, np.ndarray]) -> np.ndarray:
    """Concatenate all entries (sorted by key) into a single 1-D vector."""
    return np.concatenate([np.ravel(params[key]) for key in sorted(params)]) \
        if params else np.zeros(0)


def l2_norm(params: Mapping[str, np.ndarray]) -> float:
    """Global L2 norm of a parameter dictionary."""
    return float(np.sqrt(sum(float(np.sum(v ** 2)) for v in params.values())))


def l2_distance(left: Mapping[str, np.ndarray], right: Mapping[str, np.ndarray]) -> float:
    """Global L2 distance between two parameter dictionaries."""
    return l2_norm(subtract(left, right))


def num_parameters(params: Mapping[str, np.ndarray]) -> int:
    """Total number of scalar parameters."""
    return int(sum(value.size for value in params.values()))


def param_nbytes(params: Mapping[str, np.ndarray]) -> int:
    """Total dense bytes of a parameter dictionary (wire accounting)."""
    return int(sum(value.nbytes for value in params.values()))


def indexed_subtract_scaled(global_array: np.ndarray, factor: float,
                            value_indices: np.ndarray, values: np.ndarray,
                            negzero_indices: np.ndarray,
                            out: np.ndarray) -> np.ndarray:
    """``out = (global_array - sparse) * factor`` without densifying.

    The sparse operand is given in indexed-slice form: explicit ``values``
    at flat ``value_indices``, exact ``-0.0`` at ``negzero_indices`` and
    ``+0.0`` everywhere else.  Bit-identical to the dense expression at
    every position:

    * elsewhere, ``(g - (+0.0)) * f`` — IEEE-754 guarantees ``g - 0.0 == g``
      bit-for-bit (including for ``g = -0.0`` and NaN), so the bulk
      ``g * f`` below already matches;
    * at ``negzero_indices``, ``g - (-0.0) == g + 0.0`` which is *not*
      ``g`` when ``g`` is ``-0.0`` (it is ``+0.0``), so those positions are
      recomputed explicitly as ``(g + 0.0) * f``;
    * at ``value_indices``, ``(g - value) * f``, computed explicitly.

    ``out`` must be C-contiguous (``reshape(-1)`` must be a view).
    """
    np.multiply(global_array, factor, out=out)
    flat_out = out.reshape(-1)
    flat_global = global_array.reshape(-1)
    if negzero_indices.size:
        flat_out[negzero_indices] = \
            (flat_global[negzero_indices] + 0.0) * factor
    if value_indices.size:
        flat_out[value_indices] = \
            (flat_global[value_indices] - values) * factor
    return out


def indexed_weighted_accumulate(accumulator: np.ndarray,
                                weighted_mask: np.ndarray,
                                value_indices: np.ndarray,
                                values: np.ndarray) -> np.ndarray:
    """``accumulator += weighted_mask * sparse`` without densifying.

    Bit-identical to the dense accumulation when ``accumulator`` started at
    ``+0.0`` and ``weighted_mask`` is non-negative: the skipped positions
    of the sparse operand are ``+0.0`` or exactly ``-0.0``, whose dense
    contribution ``weighted_mask * (+-0.0) = +-0.0`` is a bitwise no-op —
    ``x + (+-0.0) == x`` for every ``x`` except ``x = -0.0``, and the
    accumulator can never hold ``-0.0`` (it starts at ``+0.0``, and IEEE
    round-to-nearest only yields ``-0.0`` from ``(-0.0) + (-0.0)``).
    """
    if value_indices.size:
        flat = accumulator.reshape(-1)
        flat[value_indices] += \
            weighted_mask.reshape(-1)[value_indices] * values
    return accumulator


def count_nonzero(params: Mapping[str, np.ndarray]) -> int:
    """Number of non-zero scalar entries (used for sparse upload accounting)."""
    return int(sum(np.count_nonzero(value) for value in params.values()))


def _check_same_keys(left: Mapping[str, np.ndarray], right: Mapping[str, np.ndarray]) -> None:
    if set(left.keys()) != set(right.keys()):
        missing = set(left.keys()) ^ set(right.keys())
        raise KeyError(f"parameter dictionaries differ in keys: {sorted(missing)}")
