"""Non-IID partitioning strategies for federated simulation.

The paper's main experiments use the *pathological* partition (every client
holds data from only a few classes).  The Dirichlet partition and the IID
partition are provided for the non-IID-level sweeps and as sanity baselines;
the Reddit-style corpus is partitioned naturally (one user = one client).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .dataset import (ClientData, Dataset, FederatedDataset, LazyShardMap,
                      split_indices)
from .synthetic import (IMAGE_SPECS, TextSpec, image_prototypes,
                        make_image_classification,
                        make_personalized_image_shards,
                        personalized_image_shard, reddit_base_chain,
                        reddit_user_shard, synthetic_reddit_users)


def iid_partition(dataset: Dataset, num_clients: int, *, seed: int = 0
                  ) -> List[np.ndarray]:
    """Shuffle and deal examples evenly across clients."""
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset))
    return [np.sort(part) for part in np.array_split(order, num_clients)]


def pathological_partition(dataset: Dataset, num_clients: int,
                           classes_per_client: int, *, seed: int = 0
                           ) -> List[np.ndarray]:
    """Pathological label-skew partition.

    Every client is assigned ``classes_per_client`` classes and receives an
    equal share of the examples of each assigned class, following the shard
    construction used by the paper (and originally by McMahan et al.).

    The assignment guarantees every class lands on at least one client, so
    the returned partitions are disjoint AND exactly cover the dataset.
    When that is impossible (fewer client-class slots than classes) the
    partition would silently discard whole classes, so it raises instead.
    """
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")
    labels = dataset.y.astype(np.int64)
    num_classes = int(labels.max()) + 1
    if not 1 <= classes_per_client <= num_classes:
        raise ValueError(
            f"classes_per_client must be in [1, {num_classes}], "
            f"got {classes_per_client}")
    slots = num_clients * classes_per_client
    if slots < num_classes:
        raise ValueError(
            f"{num_clients} clients x {classes_per_client} classes each "
            f"cannot cover all {num_classes} classes; examples would be "
            "discarded — use more clients or classes_per_client")
    rng = np.random.default_rng(seed)

    # Spread the client-class slots as evenly as possible over the classes:
    # every class at least once (coverage) and never more often than there
    # are clients (a client holds each class at most once).
    multiplicity = np.full(num_classes, slots // num_classes, dtype=np.int64)
    remainder = slots - int(multiplicity.sum())
    if remainder:
        multiplicity[rng.choice(num_classes, size=remainder,
                                replace=False)] += 1

    # Deal the slots to clients, always taking the classes with the most
    # slots left (random stable tie-break).  Because no class ever has more
    # remaining slots than there are remaining clients, the greedy deal
    # always finds ``classes_per_client`` distinct classes per client.
    assignments: List[np.ndarray] = []
    remaining = multiplicity.copy()
    for _ in range(num_clients):
        order = rng.permutation(num_classes)
        ranked = sorted(order.tolist(), key=lambda c: -remaining[c])
        chosen = ranked[:classes_per_client]
        remaining[chosen] -= 1
        assignments.append(np.array(chosen))

    # Split every class's examples into equal shards among the clients that
    # requested the class.
    per_class_indices = {c: rng.permutation(np.where(labels == c)[0])
                         for c in range(num_classes)}
    demand = {c: 0 for c in range(num_classes)}
    for chosen in assignments:
        for c in chosen:
            demand[int(c)] += 1
    shards: Dict[int, List[np.ndarray]] = {}
    for c, indices in per_class_indices.items():
        splits = np.array_split(indices, max(demand[c], 1))
        shards[c] = list(splits)
    cursors = {c: 0 for c in range(num_classes)}

    partitions: List[np.ndarray] = []
    for chosen in assignments:
        pieces = []
        for c in chosen:
            c = int(c)
            shard = shards[c][cursors[c] % len(shards[c])]
            cursors[c] += 1
            pieces.append(shard)
        indices = np.concatenate(pieces) if pieces else np.zeros(0, dtype=np.int64)
        partitions.append(np.sort(indices.astype(np.int64)))
    return partitions


def dirichlet_partition(dataset: Dataset, num_clients: int, alpha: float, *,
                        seed: int = 0, min_examples: int = 2) -> List[np.ndarray]:
    """Dirichlet label-skew partition (lower ``alpha`` = more skew)."""
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    labels = dataset.y.astype(np.int64)
    num_classes = int(labels.max()) + 1
    rng = np.random.default_rng(seed)
    for _ in range(20):
        partitions: List[List[int]] = [[] for _ in range(num_clients)]
        for c in range(num_classes):
            class_indices = rng.permutation(np.where(labels == c)[0])
            proportions = rng.dirichlet(np.full(num_clients, alpha))
            boundaries = (np.cumsum(proportions) * len(class_indices)).astype(int)[:-1]
            for client, piece in enumerate(np.split(class_indices, boundaries)):
                partitions[client].extend(piece.tolist())
        if min(len(part) for part in partitions) >= min_examples:
            return [np.sort(np.array(part, dtype=np.int64)) for part in partitions]
    raise RuntimeError(
        "could not build a Dirichlet partition giving every client at least "
        f"{min_examples} examples; increase data size or alpha")


def split_client_shard(base: Dataset, client_id: int, indices: np.ndarray, *,
                       test_fraction: float = 0.2, seed: int = 0
                       ) -> ClientData:
    """One client's train/test shard as an index-level split over ``base``.

    Bit-identical to ``base.subset(indices).split(test_fraction,
    seed=seed + client_id)`` — the same permutation is drawn and the same
    rows selected — but composed at the index level, so no intermediate
    whole-shard copy is made and the only arrays allocated are the final
    train/test selections (the "zero-copy view" contract of the virtual
    fleet: assignments are index arrays until a cohort materializes them).
    """
    indices = np.asarray(indices, dtype=np.int64)
    if len(indices) < 2:
        raise ValueError(
            f"client {client_id} received {len(indices)} examples; "
            "every client needs at least 2 to split into train/test")
    train_idx, test_idx = split_indices(len(indices), test_fraction,
                                        seed=seed + client_id)
    train_sel, test_sel = indices[train_idx], indices[test_idx]
    # advanced indexing materializes fresh arrays; no whole-shard copy made
    train = Dataset(base.x[train_sel], base.y[train_sel])
    test = Dataset(base.x[test_sel], base.y[test_sel])
    return ClientData(client_id, train, test)


def partition_to_clients(dataset: Dataset, partitions: List[np.ndarray], *,
                         test_fraction: float = 0.2, seed: int = 0
                         ) -> Dict[int, ClientData]:
    """Turn index partitions into per-client train/test shards."""
    return {client_id: split_client_shard(dataset, client_id, indices,
                                          test_fraction=test_fraction,
                                          seed=seed)
            for client_id, indices in enumerate(partitions)}


# --------------------------------------------------------------------------
# Virtual federations: O(cohort) lazy construction
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class FederationSpec:
    """A pure, picklable description of one federated dataset.

    Every client's shard is a deterministic function of this spec — the
    assignments and per-client generation derive only from ``(seed, spec)``
    — so a virtual federation can be rebuilt anywhere (another process, a
    broadcast worker) and materialize any single client bit-identically to
    the eager :func:`build_federated_dataset` path.
    """

    name: str
    num_clients: int
    partition: str = "pathological"
    classes_per_client: int = 2
    dirichlet_alpha: float = 0.5
    examples_per_client: int = 60
    test_fraction: float = 0.25
    style_scale: float = 2.5
    seed: int = 0

    @property
    def generated(self) -> bool:
        """Whether shards are generated per client (no pooled base arrays).

        Generated federations (the personalized pathological shards and the
        naturally-partitioned Reddit corpus) have O(1)-sized transport: the
        spec alone rebuilds any client.  Pooled federations (``dirichlet`` /
        ``iid``) carry a base dataset plus index assignments.
        """
        return self.name == "reddit" or self.partition == "pathological"

    def build(self, *, shard_cache: int = 256) -> "VirtualFederatedDataset":
        return _build_virtual_dataset(self, shard_cache=shard_cache)


#: CSR-style pooled assignment: (base_x, base_y, indices, offsets)
PooledArrays = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


class _PooledSource:
    """Lazily-built base dataset + index assignments of a pooled partition.

    The partition algorithms (``dirichlet``/``iid``) are global, so the base
    dataset and the full assignment are computed once on first touch — as
    index arrays only, never per-client row copies — and stored in CSR
    form (one concatenated index array + offsets), so ``install``-ing
    transported arrays is O(1) and a client's slice is carved on demand.
    """

    def __init__(self, spec: FederationSpec) -> None:
        self.spec = spec
        self._base: Optional[Dataset] = None
        self._indices: Optional[np.ndarray] = None
        self._offsets: Optional[np.ndarray] = None

    def _ensure(self) -> None:
        if self._base is not None:
            return
        spec = self.spec
        image_spec = IMAGE_SPECS[spec.name]
        total = spec.examples_per_client * spec.num_clients
        base = make_image_classification(image_spec, total, seed=spec.seed)
        if spec.partition == "dirichlet":
            parts = dirichlet_partition(base, spec.num_clients,
                                        spec.dirichlet_alpha, seed=spec.seed)
        elif spec.partition == "iid":
            parts = iid_partition(base, spec.num_clients, seed=spec.seed)
        else:
            raise ValueError(
                f"unknown partition strategy {spec.partition!r}")
        offsets = np.zeros(len(parts) + 1, dtype=np.int64)
        np.cumsum([len(part) for part in parts], out=offsets[1:])
        indices = (np.concatenate(parts).astype(np.int64)
                   if parts else np.zeros(0, dtype=np.int64))
        self._base, self._indices, self._offsets = base, indices, offsets

    def base(self) -> Dataset:
        self._ensure()
        return self._base

    def part(self, client_id: int) -> np.ndarray:
        """One client's index slice (a view into the CSR array)."""
        self._ensure()
        return self._indices[self._offsets[client_id]:
                             self._offsets[client_id + 1]]

    def install(self, arrays: PooledArrays) -> None:
        base_x, base_y, indices, offsets = arrays
        self._base = Dataset(base_x, base_y)
        self._indices = np.asarray(indices, dtype=np.int64)
        self._offsets = np.asarray(offsets, dtype=np.int64)

    def arrays(self) -> PooledArrays:
        self._ensure()
        return self._base.x, self._base.y, self._indices, self._offsets


def _shard_builder(spec: FederationSpec,
                   pooled: Optional[_PooledSource]
                   ) -> Callable[[int], ClientData]:
    """The pure per-client shard builder behind a virtual federation."""
    if spec.name == "reddit":
        text_spec = TextSpec()
        cell: Dict[str, np.ndarray] = {}

        def build_reddit(client_id: int) -> ClientData:
            base = cell.get("base")
            if base is None:
                base = cell["base"] = reddit_base_chain(text_spec,
                                                        seed=spec.seed)
            shard = reddit_user_shard(client_id, base, text_spec,
                                      spec.examples_per_client, seed=spec.seed)
            train, test = shard.split(spec.test_fraction,
                                      seed=spec.seed + client_id)
            return ClientData(client_id, train, test)

        return build_reddit

    image_spec = IMAGE_SPECS[spec.name]
    if spec.partition == "pathological":
        proto_cell: Dict[str, np.ndarray] = {}

        def build_generated(client_id: int) -> ClientData:
            prototypes = proto_cell.get("prototypes")
            if prototypes is None:
                prototypes = proto_cell["prototypes"] = image_prototypes(
                    image_spec, seed=spec.seed)
            shard = personalized_image_shard(
                image_spec, client_id, spec.classes_per_client,
                spec.examples_per_client, prototypes,
                style_scale=spec.style_scale, seed=spec.seed)
            train, test = shard.split(spec.test_fraction,
                                      seed=spec.seed + client_id)
            return ClientData(client_id, train, test)

        return build_generated

    assert pooled is not None

    def build_pooled(client_id: int) -> ClientData:
        return split_client_shard(pooled.base(), client_id,
                                  pooled.part(client_id),
                                  test_fraction=spec.test_fraction,
                                  seed=spec.seed)

    return build_pooled


def _spec_metadata(spec: FederationSpec) -> Tuple[int, Tuple[int, ...], Dict]:
    """(num_classes, input_shape, metadata) without materializing a shard."""
    if spec.name == "reddit":
        text_spec = TextSpec()
        return text_spec.vocab_size, (text_spec.seq_len,), {
            "task": "next_word", "vocab_size": text_spec.vocab_size,
            "partition": "natural"}
    image_spec = IMAGE_SPECS[spec.name]
    shape = (image_spec.channels, image_spec.image_size, image_spec.image_size)
    return image_spec.num_classes, shape, {
        "task": "image_classification", "partition": spec.partition,
        "classes_per_client": spec.classes_per_client,
        "dirichlet_alpha": spec.dirichlet_alpha,
        "style_scale": spec.style_scale}


@dataclass
class VirtualFederatedDataset(FederatedDataset):
    """A federated dataset whose shards materialize lazily, O(cohort).

    Construction touches no client data at all: ``clients`` is a
    :class:`~repro.data.dataset.LazyShardMap` over the pure per-client
    builder derived from ``spec``.  ``transport_blocks`` exposes the raw
    arrays a broadcast session must carry (empty for generated federations,
    the pooled base + CSR assignment for ``dirichlet``/``iid``) so workers
    rebuild the federation with the same O(cohort) cost.
    """

    spec: Optional[FederationSpec] = None
    _pooled: Optional[_PooledSource] = None

    @property
    def shard_map(self) -> LazyShardMap:
        if not isinstance(self.clients, LazyShardMap):
            raise TypeError("virtual dataset lost its lazy shard map")
        return self.clients

    def transport_blocks(self) -> Dict[str, np.ndarray]:
        """Raw arrays a broadcast session ships alongside the spec."""
        if self.spec is None or self.spec.generated or self._pooled is None:
            return {}
        base_x, base_y, indices, offsets = self._pooled.arrays()
        return {"dataset/base/x": base_x, "dataset/base/y": base_y,
                "dataset/assign/indices": indices,
                "dataset/assign/offsets": offsets}

    @classmethod
    def from_spec(cls, spec: FederationSpec, *, shard_cache: int = 256,
                  pooled_arrays: Optional[PooledArrays] = None
                  ) -> "VirtualFederatedDataset":
        """Build a virtual federation, optionally from transported arrays."""
        dataset = _build_virtual_dataset(spec, shard_cache=shard_cache)
        if pooled_arrays is not None and dataset._pooled is not None:
            dataset._pooled.install(pooled_arrays)
        return dataset

    def __reduce__(self):
        # a virtual federation pickles as its pure spec — caches, closures
        # and any pooled base arrays are rebuilt on demand at the other
        # end; the plain descriptive fields travel as state so any
        # post-construction change to them survives the round trip
        if self.spec is not None and isinstance(self.clients, LazyShardMap):
            state = {"name": self.name, "num_classes": self.num_classes,
                     "input_shape": self.input_shape,
                     "metadata": self.metadata}
            return (_rebuild_virtual_dataset,
                    (self.spec, self.clients.cache_size), state)
        return super().__reduce__()


def _rebuild_virtual_dataset(spec: FederationSpec,
                             shard_cache: int) -> "VirtualFederatedDataset":
    return _build_virtual_dataset(spec, shard_cache=shard_cache)


def _build_virtual_dataset(spec: FederationSpec, *,
                           shard_cache: int = 256) -> VirtualFederatedDataset:
    # fail fast at build time, like the eager path: a bad spec must not
    # surface as a traceback inside a broadcast worker at round 0
    if spec.num_clients <= 0:
        raise ValueError("num_clients must be positive")
    if spec.examples_per_client <= 0:
        raise ValueError("examples_per_client must be positive")
    if not 0.0 < spec.test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    if spec.name != "reddit" and spec.examples_per_client < 2:
        # an image client's shard is exactly examples_per_client rows, and
        # the train/test split needs at least 2 — the eager path fails at
        # build time, so the lazy path must too, not at round-0 dispatch.
        # (Reddit user sizes are drawn per user with a floor above 2, and
        # dirichlet's data-dependent min-examples check still runs on first
        # pooled materialization.)
        raise ValueError(
            "examples_per_client must be at least 2 to split into train/test")
    if spec.name != "reddit":
        if spec.name not in IMAGE_SPECS:
            raise ValueError(f"unknown dataset {spec.name!r}")
        if spec.partition not in ("pathological", "dirichlet", "iid"):
            raise ValueError(f"unknown partition strategy {spec.partition!r}")
        num_classes = IMAGE_SPECS[spec.name].num_classes
        if (spec.partition == "pathological"
                and not 1 <= spec.classes_per_client <= num_classes):
            raise ValueError(
                f"classes_per_client must be in [1, {num_classes}]")
    pooled = None if spec.generated else _PooledSource(spec)
    builder = _shard_builder(spec, pooled)
    num_classes, input_shape, metadata = _spec_metadata(spec)
    shards = LazyShardMap(spec.num_clients, builder, cache_size=shard_cache)
    return VirtualFederatedDataset(
        name=spec.name, clients=shards, num_classes=num_classes,
        input_shape=input_shape, metadata=metadata, spec=spec, _pooled=pooled)


def build_federated_dataset(name: str, num_clients: int, *,
                            partition: str = "pathological",
                            classes_per_client: int = 2,
                            dirichlet_alpha: float = 0.5,
                            examples_per_client: int = 60,
                            test_fraction: float = 0.25,
                            style_scale: float = 2.5,
                            seed: int = 0,
                            lazy: bool = False,
                            shard_cache: int = 256) -> FederatedDataset:
    """Build a federated dataset for one of the five paper benchmarks.

    The default ``pathological`` partition combines the paper's label-skew
    shards with a client-specific style shift (see
    :func:`make_personalized_image_shards`), which is what makes the data
    genuinely non-IID for a shared global model.  ``dirichlet`` and ``iid``
    partitions operate on a pooled dataset without styles and are provided
    for sweeps and sanity baselines.  The Reddit stand-in is always
    partitioned naturally (one synthetic user per client) because it is
    inherently non-IID, exactly as in the paper.

    With ``lazy=True`` the returned dataset is a
    :class:`VirtualFederatedDataset`: construction is O(1), shards are
    materialized per client on demand (LRU-bounded by ``shard_cache``) and
    are bit-identical to the eager path for every partition strategy.
    """
    name = name.lower()
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")

    if lazy:
        return FederationSpec(
            name=name, num_clients=num_clients, partition=partition,
            classes_per_client=classes_per_client,
            dirichlet_alpha=dirichlet_alpha,
            examples_per_client=examples_per_client,
            test_fraction=test_fraction, style_scale=style_scale,
            seed=seed).build(shard_cache=shard_cache)

    if name == "reddit":
        user_datasets, spec = synthetic_reddit_users(
            num_clients, examples_per_client, seed=seed)
        clients: Dict[int, ClientData] = {}
        for client_id, shard in enumerate(user_datasets):
            train, test = shard.split(test_fraction, seed=seed + client_id)
            clients[client_id] = ClientData(client_id, train, test)
        return FederatedDataset(
            name="reddit", clients=clients, num_classes=spec.vocab_size,
            input_shape=(spec.seq_len,),
            metadata={"task": "next_word", "vocab_size": spec.vocab_size,
                      "partition": "natural"})

    if name not in IMAGE_SPECS:
        raise ValueError(f"unknown dataset {name!r}")
    spec = IMAGE_SPECS[name]

    if partition == "pathological":
        shards = make_personalized_image_shards(
            spec, num_clients, classes_per_client, examples_per_client,
            style_scale=style_scale, seed=seed)
        clients = {}
        for client_id, shard in enumerate(shards):
            train, test = shard.split(test_fraction, seed=seed + client_id)
            clients[client_id] = ClientData(client_id, train, test)
    else:
        total_examples = examples_per_client * num_clients
        dataset = make_image_classification(spec, total_examples, seed=seed)
        if partition == "dirichlet":
            parts = dirichlet_partition(dataset, num_clients, dirichlet_alpha,
                                        seed=seed)
        elif partition == "iid":
            parts = iid_partition(dataset, num_clients, seed=seed)
        else:
            raise ValueError(f"unknown partition strategy {partition!r}")
        clients = partition_to_clients(dataset, parts,
                                       test_fraction=test_fraction, seed=seed)

    return FederatedDataset(
        name=name, clients=clients, num_classes=spec.num_classes,
        input_shape=(spec.channels, spec.image_size, spec.image_size),
        metadata={"task": "image_classification", "partition": partition,
                  "classes_per_client": classes_per_client,
                  "dirichlet_alpha": dirichlet_alpha,
                  "style_scale": style_scale})


def pathological_partition_missing_classes(dataset: Dataset, num_clients: int,
                                           missing_classes: int, *,
                                           seed: int = 0) -> List[np.ndarray]:
    """Partition used by the non-IID-level sweep (Figure 6).

    The paper's sweep is parameterized by how many classes each client *lacks*
    (``x`` on the horizontal axis); this wrapper converts that to the
    classes-per-client parameter of :func:`pathological_partition`.
    """
    labels = dataset.y.astype(np.int64)
    num_classes = int(labels.max()) + 1
    classes_per_client = num_classes - missing_classes
    if classes_per_client < 1:
        raise ValueError(
            f"missing_classes={missing_classes} leaves no class for clients")
    return pathological_partition(dataset, num_clients, classes_per_client, seed=seed)
