"""Registry mapping method names to strategy factories.

The keys match the method names of Table I (lower-cased), plus the FedLPS
ablation variants, so that experiments and benchmarks can be driven by plain
strings.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..core.strategy import FedLPS
from ..federated.strategy import Strategy
from . import ablations
from .conventional import REFL, FedAvg, FedProx, Oort
from .personalized import Ditto, FedPer, FedRep, PerFedAvg
from .personalized_sparse import FedP3, FedSpa, Hermes, LotteryFL
from .sparse_shared import (ComplementSparsification, DepthFL, FedDropout,
                            FedMP, FedRolex, FjORD, HeteroFL, PruneFL)

StrategyFactory = Callable[..., Strategy]

STRATEGY_REGISTRY: Dict[str, StrategyFactory] = {
    # conventional FL
    "fedavg": FedAvg,
    "fedprox": FedProx,
    "oort": Oort,
    "refl": REFL,
    # shared sparse training
    "prunefl": PruneFL,
    "cs": ComplementSparsification,
    "efd": FedDropout,
    "fjord": FjORD,
    "heterofl": HeteroFL,
    "fedrolex": FedRolex,
    "fedmp": FedMP,
    "depthfl": DepthFL,
    # personalized FL
    "ditto": Ditto,
    "fedper": FedPer,
    "fedrep": FedRep,
    "perfedavg": PerFedAvg,
    # personalized sparse FL
    "lotteryfl": LotteryFL,
    "hermes": Hermes,
    "fedspa": FedSpa,
    "fedp3": FedP3,
    # ours + ablations
    "fedlps": FedLPS,
    "flst": ablations.flst,
    "rcr": ablations.rcr,
    "p-ucbv": ablations.pucbv,
}

#: the method ordering used when printing Table I
TABLE1_METHODS: List[str] = [
    "fedavg", "fedprox", "oort", "refl", "prunefl", "cs", "efd", "fjord",
    "heterofl", "fedrolex", "fedmp", "depthfl", "ditto", "fedper", "fedrep",
    "perfedavg", "lotteryfl", "hermes", "fedspa", "fedp3", "fedlps",
]


def available_strategies() -> List[str]:
    """Names accepted by :func:`build_strategy`."""
    return sorted(STRATEGY_REGISTRY)


def build_strategy(name: str, **kwargs) -> Strategy:
    """Instantiate a strategy by its registry name."""
    key = name.lower()
    if key not in STRATEGY_REGISTRY:
        raise ValueError(
            f"unknown strategy {name!r}; available: {available_strategies()}")
    return STRATEGY_REGISTRY[key](**kwargs)
