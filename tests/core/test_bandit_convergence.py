"""Tests for the P-UCBV bandit and the convergence-bound helpers."""

import numpy as np
import pytest

from repro.core import (PUCBVAgent, RatioPartition, empirical_parameter_gap,
                        gradient_norm_trajectory, lemma1_gap_bound,
                        max_learning_rate, theorem1_bound)


def make_agent(**kwargs):
    defaults = dict(total_rounds=50, num_clients=10, selection_fraction=0.2,
                    num_initial_partitions=4, seed=0)
    defaults.update(kwargs)
    return PUCBVAgent(**defaults)


class TestRatioPartition:
    def test_contains_and_sample(self):
        part = RatioPartition(0.2, 0.6)
        assert part.contains(0.2) and not part.contains(0.6)
        value = part.sample(np.random.default_rng(0))
        assert 0.2 <= value < 0.6

    def test_statistics(self):
        part = RatioPartition(0.0, 1.0, rewards=[1.0, 3.0])
        assert part.pulls == 2
        assert part.mean_reward == pytest.approx(2.0)
        assert part.reward_variance == pytest.approx(1.0)
        assert RatioPartition(0.0, 1.0).mean_reward == 0.0

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            RatioPartition(0.5, 0.5)


class TestPUCBVAgent:
    def test_initial_partitions_cover_arm_space(self):
        agent = make_agent(ratio_min=0.1, ratio_max=1.0)
        bounds = agent.partition_bounds()
        assert bounds[0][0] == pytest.approx(0.1)
        assert bounds[-1][1] == pytest.approx(1.0)
        for (_, hi), (lo, _) in zip(bounds[:-1], bounds[1:]):
            assert hi == pytest.approx(lo)

    def test_initial_ratio_within_bounds(self):
        agent = make_agent(ratio_min=0.2)
        ratio = agent.initial_ratio()
        assert 0.2 <= ratio < 1.0

    def test_observe_returns_valid_next_ratio(self):
        agent = make_agent()
        ratio = agent.initial_ratio()
        for r in range(10):
            ratio = agent.observe_and_select(ratio, local_cost_seconds=1.0,
                                             accuracy_percent=50.0 + r,
                                             previous_accuracy_percent=50.0 + r - 1)
            assert agent.ratio_min <= ratio <= agent.ratio_max

    def test_partition_splitting_grows_tree(self):
        agent = make_agent()
        before = agent.num_partitions
        agent.observe_and_select(0.5, 1.0, 60.0, 50.0)
        assert agent.num_partitions >= before

    def test_accuracy_drop_triggers_elimination(self):
        agent = make_agent(accuracy_threshold=0.0)
        ratio = 0.5
        eliminated_before = agent.num_eliminated
        # repeated accuracy drops should eventually eliminate lower partitions
        for _ in range(6):
            ratio = agent.observe_and_select(ratio, 1.0, 40.0, 60.0)
        assert agent.num_eliminated > eliminated_before

    def test_elimination_never_removes_last_partition(self):
        agent = make_agent(num_initial_partitions=1)
        ratio = agent.initial_ratio()
        for _ in range(5):
            ratio = agent.observe_and_select(ratio, 1.0, 10.0, 90.0)
        assert agent.num_partitions >= 1

    def test_low_ratio_penalised_when_it_hurts_accuracy(self):
        rng = np.random.default_rng(0)
        agent = make_agent(accuracy_threshold=0.0, seed=1)
        ratio = agent.initial_ratio()
        chosen = []
        for _ in range(30):
            # simulate: low ratios hurt accuracy, high ratios help
            gain = 5.0 if ratio > 0.5 else -5.0
            previous = 50.0
            ratio = agent.observe_and_select(ratio, 1.0, previous + gain, previous)
            chosen.append(ratio)
        assert np.mean(chosen[-10:]) > 0.4

    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            make_agent(total_rounds=0)
        with pytest.raises(ValueError):
            make_agent(selection_fraction=0.0)
        with pytest.raises(ValueError):
            make_agent(ratio_min=0.0)
        with pytest.raises(ValueError):
            make_agent(num_initial_partitions=0)

    def test_invalid_cost_rejected(self):
        agent = make_agent()
        with pytest.raises(ValueError):
            agent.observe_and_select(0.5, 0.0, 50.0, 40.0)


class TestConvergenceBounds:
    def test_max_learning_rate_shrinks_with_rounds(self):
        assert max_learning_rate(5, 100, 1.0, 1.0) < max_learning_rate(5, 10, 1.0, 1.0)
        with pytest.raises(ValueError):
            max_learning_rate(0, 10, 1.0, 1.0)

    def test_lemma1_bound_monotone_in_learning_rate(self):
        small = lemma1_gap_bound(5, 0.01, 1.0, 1.0, 1.0)
        large = lemma1_gap_bound(5, 0.1, 1.0, 1.0, 1.0)
        assert large > small > 0
        with pytest.raises(ValueError):
            lemma1_gap_bound(5, 0.0, 1.0, 1.0, 1.0)

    def test_theorem1_bound_vanishes_with_more_rounds(self):
        kwargs = dict(gradient_bias=1.0, gradient_distance=1.0,
                      gradient_norm=1.0, smoothness=1.0, v_max=1.0)
        few = theorem1_bound(10, 5, 10, 1.0, **kwargs)
        many = theorem1_bound(10_000, 5, 10, 1.0, **kwargs)
        assert many < few
        with pytest.raises(ValueError):
            theorem1_bound(0, 5, 10, 1.0, **kwargs)

    def test_empirical_gap_and_trajectory(self):
        global_params = {"w": np.zeros(3)}
        locals_ = [{"w": np.ones(3)}, {"w": 2 * np.ones(3)}]
        gap = empirical_parameter_gap(locals_, global_params)
        assert gap == pytest.approx((3 + 12) / 2)
        assert gradient_norm_trajectory([1.0, 2.0]) == pytest.approx(2.5)
        with pytest.raises(ValueError):
            empirical_parameter_gap([], global_params)
        with pytest.raises(ValueError):
            gradient_norm_trajectory([])

    def test_lemma1_bound_holds_on_toy_quadratic_problem(self):
        """Simulated local SGD on quadratics stays within the Lemma 1 bound."""
        rng = np.random.default_rng(0)
        num_clients, iterations = 4, 5
        smoothness = 1.0
        eta = max_learning_rate(iterations, 20, 1.0, smoothness)
        global_w = np.zeros(3)
        gaps = []
        h_bound = 0.0
        for _ in range(num_clients):
            target = rng.standard_normal(3)
            w = global_w.copy()
            for _ in range(iterations):
                grad = w - target  # gradient of 0.5 * ||w - target||^2
                h_bound = max(h_bound, float(np.linalg.norm(grad)))
                w = w - eta * grad
            gaps.append(float(np.sum((w - global_w) ** 2)))
        bound = lemma1_gap_bound(iterations, eta, gradient_bias=0.0,
                                 gradient_distance=h_bound,
                                 gradient_norm=h_bound)
        assert np.mean(gaps) <= bound
