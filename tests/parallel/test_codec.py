"""Codec conformance suite: the contracts every wire codec must honour.

Lossless codecs (``dense``, ``sparse``) must satisfy bit-exact
``decode(encode(x)) == x`` on *arbitrary* arrays — negative zeros, NaNs,
infinities, every dtype, empty and scalar shapes.  Lossy codecs (``int8``,
``pq``) must be deterministic (same input, same wire bytes) and must honour
the reconstruction-error certificate they store in the block metadata.
Every codec must respect the byte budget: the wire form never exceeds the
dense representation.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.parallel.codec import (CODECS, DecodedParams, EncodedParams,
                                  IndexedSlices, LOSSLESS_CODECS,
                                  available_codecs, decode_block,
                                  resolve_codec)

LOSSY_CODECS = tuple(name for name in available_codecs()
                     if name not in LOSSLESS_CODECS)

#: element pools that exercise the bit-exactness corners: signed zeros,
#: NaN, infinities, subnormals, plus ordinary magnitudes
_FLOAT_ELEMENTS = st.floats(allow_nan=True, allow_infinity=True, width=64)

_FLOAT_ARRAYS = hnp.arrays(
    dtype=st.sampled_from([np.float64, np.float32]),
    shape=hnp.array_shapes(min_dims=0, max_dims=3, min_side=0, max_side=8),
    elements=st.floats(allow_nan=True, allow_infinity=True, width=32))

_INT_ARRAYS = hnp.arrays(
    dtype=st.sampled_from([np.int64, np.int32, np.uint8]),
    shape=hnp.array_shapes(min_dims=0, max_dims=2, min_side=0, max_side=8),
    elements=st.integers(min_value=0, max_value=120))


def _sparse_like(rng, shape, density):
    """A FedLPS-style residual: values at on-mask spots, -0.0 elsewhere."""
    mask = rng.random(shape) < density
    values = rng.normal(size=shape)
    return np.where(mask, values, -0.0)


# ---------------------------------------------------------------- registry
class TestRegistry:
    def test_available_codecs(self):
        assert available_codecs() == ("dense", "sparse", "int8", "pq")

    def test_lossless_partition(self):
        assert LOSSLESS_CODECS == ("dense", "sparse")
        assert LOSSY_CODECS == ("int8", "pq")
        for name in available_codecs():
            assert resolve_codec(name).lossless == (name in LOSSLESS_CODECS)

    def test_resolve_is_case_insensitive(self):
        assert resolve_codec("SPARSE") is CODECS["sparse"]

    def test_resolve_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown codec"):
            resolve_codec("gzip")


# ------------------------------------------------------- lossless contract
class TestLosslessBitIdentity:
    @pytest.mark.parametrize("codec_name", LOSSLESS_CODECS)
    @settings(max_examples=60, deadline=None)
    @given(array=_FLOAT_ARRAYS)
    def test_float_roundtrip_bit_exact(self, codec_name, array):
        codec = resolve_codec(codec_name)
        decoded = codec.decode(codec.encode({"w": array}))["w"]
        assert decoded.dtype == array.dtype
        assert decoded.shape == array.shape
        assert decoded.tobytes() == array.tobytes()

    @pytest.mark.parametrize("codec_name", LOSSLESS_CODECS)
    @settings(max_examples=40, deadline=None)
    @given(array=_INT_ARRAYS)
    def test_int_roundtrip_bit_exact(self, codec_name, array):
        codec = resolve_codec(codec_name)
        decoded = codec.decode(codec.encode({"w": array}))["w"]
        assert decoded.dtype == array.dtype
        assert decoded.tobytes() == array.tobytes()

    @pytest.mark.parametrize("codec_name", LOSSLESS_CODECS)
    @pytest.mark.parametrize("array", [
        np.zeros((3, 4)),                                 # all +0.0
        np.full((3, 4), -0.0),                            # all -0.0
        np.array([]),                                     # empty
        np.array(2.5),                                    # scalar, 0-d
        np.array([7.25]),                                 # single element
        np.array([0.0, -0.0, np.nan, np.inf, -np.inf]),   # specials
        np.zeros((2, 0, 3)),                              # empty axis
    ], ids=["zeros", "negzeros", "empty", "scalar", "single", "specials",
            "empty-axis"])
    def test_degenerate_arrays(self, codec_name, array):
        codec = resolve_codec(codec_name)
        decoded = codec.decode(codec.encode({"w": array}))["w"]
        assert decoded.shape == array.shape
        assert decoded.tobytes() == array.tobytes()

    def test_multi_key_roundtrip_preserves_keys(self):
        rng = np.random.default_rng(3)
        params = {"a.W": _sparse_like(rng, (6, 5), 0.3),
                  "a.b": np.zeros(5),
                  "z": rng.normal(size=(4,)).astype(np.float32)}
        for codec_name in LOSSLESS_CODECS:
            decoded = resolve_codec(codec_name).decode(
                resolve_codec(codec_name).encode(params))
            assert set(decoded) == set(params)
            for key in params:
                assert decoded[key].tobytes() == params[key].tobytes()


# ------------------------------------------------------------ byte budget
class TestByteBudget:
    @pytest.mark.parametrize("codec_name", available_codecs())
    @settings(max_examples=40, deadline=None)
    @given(array=_FLOAT_ARRAYS)
    def test_wire_never_exceeds_dense(self, codec_name, array):
        encoded = resolve_codec(codec_name).encode({"w": array})
        assert encoded.wire_nbytes <= encoded.dense_nbytes

    def test_sparse_compresses_low_density(self):
        rng = np.random.default_rng(0)
        residual = _sparse_like(rng, (64, 64), 0.25)
        encoded = resolve_codec("sparse").encode({"w": residual})
        block = encoded.blocks["w"]
        assert block.codec == "sparse"
        # two bitmaps (~2 bits/element) + 25% of the float64 payload
        assert encoded.wire_nbytes <= 0.5 * encoded.dense_nbytes
        assert block.stored_values == np.count_nonzero(residual)

    def test_sparse_falls_back_to_raw_on_dense_input(self):
        rng = np.random.default_rng(1)
        dense = rng.normal(size=(16, 16))
        block = resolve_codec("sparse").encode({"w": dense}).blocks["w"]
        assert block.codec == "raw"
        assert block.wire_nbytes == dense.nbytes

    def test_int8_compresses_roughly_8x(self):
        rng = np.random.default_rng(2)
        weights = rng.normal(size=(32, 32))
        encoded = resolve_codec("int8").encode({"w": weights})
        assert encoded.blocks["w"].codec == "int8"
        assert encoded.wire_nbytes * 7 < encoded.dense_nbytes

    def test_pq_beats_int8_on_embedding_shapes(self):
        rng = np.random.default_rng(4)
        embedding = rng.normal(size=(512, 16))
        pq_encoded = resolve_codec("pq").encode({"emb": embedding})
        int8_encoded = resolve_codec("int8").encode({"emb": embedding})
        assert pq_encoded.blocks["emb"].codec == "pq"
        assert pq_encoded.wire_nbytes < int8_encoded.wire_nbytes

    def test_pq_falls_back_on_small_or_1d_arrays(self):
        rng = np.random.default_rng(5)
        for array in (rng.normal(size=(8, 4)),   # too few rows
                      rng.normal(size=(300,))):  # not 2-D
            block = resolve_codec("pq").encode({"w": array}).blocks["w"]
            assert block.codec in ("int8", "raw")


# ------------------------------------------------------------ lossy bounds
class TestLossyContract:
    @pytest.mark.parametrize("codec_name", LOSSY_CODECS)
    @settings(max_examples=40, deadline=None)
    @given(array=hnp.arrays(
        dtype=np.float64,
        shape=hnp.array_shapes(min_dims=1, max_dims=2, min_side=0,
                               max_side=12),
        elements=st.floats(min_value=-1e6, max_value=1e6)))
    def test_certified_error_bound_holds(self, codec_name, array):
        codec = resolve_codec(codec_name)
        encoded = codec.encode({"w": array})
        block = encoded.blocks["w"]
        decoded = codec.decode(encoded)["w"]
        if block.codec == "raw":
            assert decoded.tobytes() == array.tobytes()
            return
        bound = block.meta[-1]
        assert np.max(np.abs(decoded - array)) <= bound
        # the certificate is *measured*, not estimated: it is attained
        assert np.isclose(np.max(np.abs(decoded - array)), bound)

    def test_int8_bound_within_half_scale(self):
        rng = np.random.default_rng(6)
        weights = rng.normal(size=(40, 10))
        block = resolve_codec("int8").encode({"w": weights}).blocks["w"]
        scale, bound = block.meta
        # the learned scale is floored at max|x|/127, so rounding never
        # clips and the error stays within half a quantization step
        assert bound <= scale / 2 + 1e-15

    @pytest.mark.parametrize("codec_name", LOSSY_CODECS)
    def test_deterministic_encoding(self, codec_name):
        rng = np.random.default_rng(7)
        params = {"emb": rng.normal(size=(64, 8)),
                  "w": rng.normal(size=(16, 16)), "b": rng.normal(size=(5,))}
        codec = resolve_codec(codec_name)
        first, second = codec.encode(params), codec.encode(params)
        for key in params:
            assert first.blocks[key].meta == second.blocks[key].meta
            for left, right in zip(first.blocks[key].arrays,
                                   second.blocks[key].arrays):
                assert left.tobytes() == right.tobytes()

    @pytest.mark.parametrize("codec_name", LOSSY_CODECS)
    @pytest.mark.parametrize("array", [
        np.zeros((4, 4)),           # all-zero: exact, scale 0
        np.array([]),               # empty
        np.array([3.5]),            # single element: exact up to rounding
        np.full((3, 3), 2.0),       # constant: exactly representable
    ], ids=["zeros", "empty", "single", "constant"])
    def test_degenerate_arrays_decode_exactly(self, codec_name, array):
        codec = resolve_codec(codec_name)
        decoded = codec.decode(codec.encode({"w": array}))["w"]
        assert decoded.shape == array.shape
        np.testing.assert_allclose(decoded, array, rtol=1e-12, atol=0.0)

    @pytest.mark.parametrize("codec_name", LOSSY_CODECS)
    def test_nonfinite_arrays_fall_back_to_raw(self, codec_name):
        array = np.array([1.0, np.nan, np.inf])
        codec = resolve_codec(codec_name)
        encoded = codec.encode({"w": array})
        assert encoded.blocks["w"].codec == "raw"
        assert codec.decode(encoded)["w"].tobytes() == array.tobytes()


# ----------------------------------------------------------- decoded views
class TestDecodedParams:
    def _decoded(self):
        rng = np.random.default_rng(8)
        params = {"w": _sparse_like(rng, (10, 10), 0.2),
                  "b": rng.normal(size=(10,))}
        codec = resolve_codec("sparse")
        return params, codec.decode(codec.encode(params))

    def test_sparse_decode_returns_lazy_mapping(self):
        params, decoded = self._decoded()
        assert isinstance(decoded, DecodedParams)
        assert set(decoded) == set(params)
        assert len(decoded) == len(params)

    def test_slices_for_sparse_keys_only(self):
        params, decoded = self._decoded()
        slices = decoded.slices("w")
        assert isinstance(slices, IndexedSlices)
        assert decoded.slices("b") is None  # dense upload -> raw block
        assert slices.densify().tobytes() == params["w"].tobytes()

    def test_getitem_densifies_bit_exact_and_caches(self):
        params, decoded = self._decoded()
        assert decoded["w"].tobytes() == params["w"].tobytes()
        assert decoded["w"] is decoded["w"]

    def test_pickle_roundtrip(self):
        params, decoded = self._decoded()
        clone = pickle.loads(pickle.dumps(decoded))
        assert isinstance(clone, DecodedParams)
        for key in params:
            assert clone[key].tobytes() == params[key].tobytes()

    def test_all_raw_blocks_decode_to_plain_dict(self):
        rng = np.random.default_rng(9)
        params = {"w": rng.normal(size=(6, 6))}
        codec = resolve_codec("sparse")
        decoded = codec.decode(codec.encode(params))
        assert isinstance(decoded, dict)

    def test_indexed_slices_separate_negzero_from_values(self):
        array = np.array([0.0, -0.0, 1.5, np.nan])
        codec = resolve_codec("sparse")
        decoded = codec.decode(codec.encode({"w": array}))
        slices = decoded.slices("w")
        assert list(slices.negzero_indices) == [1]
        assert list(slices.value_indices) == [2, 3]
        assert decoded["w"].tobytes() == array.tobytes()


# ----------------------------------------------------------- wire metadata
class TestEncodedParams:
    def test_byte_accounting_sums_blocks(self):
        rng = np.random.default_rng(10)
        params = {"w": _sparse_like(rng, (20, 20), 0.1),
                  "b": np.zeros(7)}
        encoded = resolve_codec("sparse").encode(params)
        assert isinstance(encoded, EncodedParams)
        assert encoded.dense_nbytes == sum(v.nbytes for v in params.values())
        assert encoded.wire_nbytes == sum(b.wire_nbytes
                                          for b in encoded.blocks.values())
        assert encoded.total_size == sum(v.size for v in params.values())
        assert encoded.stored_values < encoded.total_size

    def test_encoded_params_pickle_roundtrip(self):
        rng = np.random.default_rng(11)
        params = {"w": rng.normal(size=(12, 12))}
        for codec_name in available_codecs():
            codec = resolve_codec(codec_name)
            encoded = codec.encode(params)
            clone = pickle.loads(pickle.dumps(encoded))
            decoded, redecoded = codec.decode(encoded), codec.decode(clone)
            assert decoded["w"].tobytes() == redecoded["w"].tobytes()

    def test_decode_block_rejects_unknown_tag(self):
        block = resolve_codec("dense").encode({"w": np.zeros(3)}).blocks["w"]
        broken = type(block)(codec="huffman", dtype=block.dtype,
                             shape=block.shape, arrays=block.arrays)
        with pytest.raises(ValueError, match="unknown block codec"):
            decode_block(broken)


# ---------------------------------------------------------- config plumbing
class TestConfigPlumbing:
    def test_federated_config_validates_codec(self):
        from repro.federated.config import FederatedConfig
        assert FederatedConfig(codec="sparse").codec == "sparse"
        with pytest.raises(ValueError, match="unknown codec"):
            FederatedConfig(codec="gzip")

    def test_preset_validates_codec(self):
        from repro.experiments.presets import (build_experiment, preset_for,
                                               scaled)
        with pytest.raises(ValueError, match="unknown codec"):
            build_experiment(scaled(preset_for("mnist"), codec="gzip"))

    def test_preset_codec_reaches_config(self):
        from repro.experiments.presets import (build_experiment, preset_for,
                                               scaled)
        _, _, config, _ = build_experiment(scaled(preset_for("mnist"),
                                                  codec="int8"))
        assert config.codec == "int8"
