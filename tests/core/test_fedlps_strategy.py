"""Integration-level tests for the FedLPS strategy."""

import numpy as np
import pytest

from repro.core import FedLPS
from repro.federated import FederatedConfig, FederatedTrainer, run_federated
from repro.models import build_model_for_dataset
from repro.systems import affordable_ratio


def builder():
    return build_model_for_dataset("mnist", seed=0)


class TestFedLPSConstruction:
    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            FedLPS(ratio_policy="unknown")
        with pytest.raises(ValueError):
            FedLPS(pattern_mode="unknown")
        with pytest.raises(ValueError):
            FedLPS(fixed_ratio=0.0)

    def test_name_reflects_variant(self):
        assert FedLPS().name == "fedlps"
        assert "fixed" in FedLPS(ratio_policy="fixed").name
        assert "magnitude" in FedLPS(pattern_mode="magnitude").name


class TestFedLPSBehaviour:
    def test_setup_initializes_client_state(self, small_fed_dataset, tiny_config):
        trainer = FederatedTrainer(FedLPS(), small_fed_dataset, builder,
                                   config=tiny_config)
        trainer.strategy.setup(trainer.context)
        for client in trainer.clients.values():
            assert "ratio" in client.state
            assert client.state["agent"] is not None
            assert 0.0 < client.state["ratio"] <= 1.0

    def test_ratio_capped_by_capability(self, small_fed_dataset, tiny_config):
        trainer = FederatedTrainer(FedLPS(), small_fed_dataset, builder,
                                   config=tiny_config)
        strategy = trainer.strategy
        strategy.setup(trainer.context)
        for client in trainer.clients.values():
            client.state["ratio"] = 1.0
            update = strategy.local_update(0, client)
            assert update.sparse_ratio <= affordable_ratio(client.capability) + 1e-9

    def test_residual_upload_respects_mask(self, small_fed_dataset, tiny_config):
        trainer = FederatedTrainer(FedLPS(), small_fed_dataset, builder,
                                   config=tiny_config)
        strategy = trainer.strategy
        strategy.setup(trainer.context)
        client = trainer.clients[0]
        update = strategy.local_update(0, client)
        mask = trainer.model.expand_unit_masks(
            {k: np.asarray(v, dtype=float) for k, v in update.pattern.items()})
        for key, values in update.params.items():
            assert np.all(values[mask[key] == 0.0] == 0.0)

    def test_personalized_evaluation_uses_stored_model(self, small_fed_dataset,
                                                       tiny_config):
        trainer = FederatedTrainer(FedLPS(), small_fed_dataset, builder,
                                   config=tiny_config)
        strategy = trainer.strategy
        strategy.setup(trainer.context)
        client = trainer.clients[0]
        params, pattern = strategy.client_evaluation(client)
        assert pattern is None  # never trained yet -> dense global model
        strategy.local_update(0, client)
        params, pattern = strategy.client_evaluation(client)
        assert pattern is not None

    def test_post_round_updates_ratio_via_bandit(self, small_fed_dataset,
                                                 tiny_config):
        trainer = FederatedTrainer(FedLPS(), small_fed_dataset, builder,
                                   config=tiny_config)
        strategy = trainer.strategy
        strategy.setup(trainer.context)
        client = trainer.clients[0]
        update = strategy.local_update(0, client)
        strategy.aggregate(0, [update])
        from repro.systems import CostBreakdown
        strategy.post_round(0, [update], {0: CostBreakdown(1.0, 0.5)})
        assert "prev_accuracy" in client.state
        assert strategy.ratio_min <= client.state["ratio"] <= 1.0

    def test_full_run_beats_random_guessing(self, small_fed_dataset):
        config = FederatedConfig(num_rounds=6, clients_per_round=3,
                                 local_iterations=4, batch_size=10, seed=0)
        history = run_federated(FedLPS(), small_fed_dataset, builder,
                                config=config)
        assert history.final_accuracy() > 1.5 / small_fed_dataset.num_classes

    def test_fedlps_uses_fewer_flops_than_dense(self, small_fed_dataset,
                                                tiny_config):
        from repro.federated import Strategy
        dense = run_federated(Strategy(), small_fed_dataset, builder,
                              config=tiny_config)
        sparse = run_federated(FedLPS(), small_fed_dataset, builder,
                               config=tiny_config)
        assert sparse.total_flops < dense.total_flops

    @pytest.mark.parametrize("policy", ["fixed", "capability"])
    def test_ratio_policies_run(self, small_fed_dataset, tiny_config, policy):
        history = run_federated(FedLPS(ratio_policy=policy), small_fed_dataset,
                                builder, config=tiny_config)
        assert len(history) == tiny_config.num_rounds

    @pytest.mark.parametrize("pattern", ["random", "ordered", "magnitude"])
    def test_pattern_modes_run(self, small_fed_dataset, tiny_config, pattern):
        history = run_federated(FedLPS(pattern_mode=pattern, ratio_policy="fixed"),
                                small_fed_dataset, builder, config=tiny_config)
        assert len(history) == tiny_config.num_rounds
        ratios = history.records[-1].sparse_ratios
        assert all(0 < r <= 1 for r in ratios.values())
