"""Scheduler behaviour: FedBuff flushes, async records, sim-time wins."""

import numpy as np
import pytest

from repro.experiments import preset_for, run_method, scaled
from repro.federated.config import FederatedConfig
from repro.federated.strategy import ClientUpdate, Strategy
from repro.server.clock import ClientEvent
from repro.server.policy import AggregationPolicy
from repro.server.scheduler import (AsyncScheduler, BufferedScheduler,
                                    SyncScheduler, build_scheduler)
from repro.systems.cost import CostBreakdown

TINY = dict(num_clients=10, num_rounds=8, clients_per_round=3,
            examples_per_client=24, local_iterations=2, batch_size=8, seed=7)


def tiny_preset(scenario="ideal", aggregation="sync", **extra):
    overrides = dict(TINY)
    overrides.update(extra)
    return scaled(preset_for("mnist"), scenario=scenario,
                  aggregation=aggregation, **overrides)


class _FakeCore:
    """The minimal core surface ``consume`` touches: config + strategy."""

    def __init__(self, buffer_size=3):
        self.config = FederatedConfig(buffer_size=buffer_size)
        self.strategy = Strategy()
        self.strategy.global_params = {"w": np.array([0.0])}

    def reduce_context(self):
        from contextlib import nullcontext
        return nullcontext()


def _event(client_id, value, dispatch_version=0, finish=1.0):
    update = ClientUpdate(client_id=client_id,
                          params={"w": np.array([float(value)])},
                          num_examples=1, train_accuracy=0.0, train_loss=0.0)
    return ClientEvent(finish_time=finish, client_id=client_id,
                       round_index=0, dispatch_version=dispatch_version,
                       update=update, cost=CostBreakdown(0.0, 0.0))


class TestBuildScheduler:
    def test_modes_map_to_classes(self):
        assert isinstance(build_scheduler(FederatedConfig()), SyncScheduler)
        assert isinstance(
            build_scheduler(FederatedConfig(aggregation="fedasync")),
            AsyncScheduler)
        assert isinstance(
            build_scheduler(FederatedConfig(aggregation="fedbuff")),
            BufferedScheduler)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            build_scheduler(FederatedConfig(), "fedwhat")


class TestFedBuffFlush:
    """Oracle: aggregate every K arrivals, never the partial tail."""

    def test_flushes_exactly_every_k_arrivals(self):
        core = _FakeCore(buffer_size=3)
        scheduler = BufferedScheduler()
        policy = AggregationPolicy(alpha=1.0, exponent=0.5)
        flushed = []
        for index in range(7):
            flushed.append(
                scheduler.consume(core, policy, 0, _event(index, 6.0)))
        # arrivals 3 and 6 trigger flushes of exactly K entries each
        sizes = [len(batch) for batch in flushed]
        assert sizes == [0, 0, 3, 0, 0, 3, 0]
        assert scheduler._version == 2

    def test_never_flushed_tail_leaves_global_untouched(self):
        # the run ends with 2 < K arrivals in the buffer: they must never
        # reach the global parameters
        core = _FakeCore(buffer_size=3)
        scheduler = BufferedScheduler()
        policy = AggregationPolicy(alpha=1.0, exponent=0.5)
        for index in range(3):
            scheduler.consume(core, policy, 0, _event(index, 6.0))
        after_flush = core.strategy.global_params["w"].copy()
        np.testing.assert_allclose(after_flush, [6.0])
        for index in range(3, 5):
            scheduler.consume(core, policy, 0, _event(index, 999.0))
        np.testing.assert_array_equal(core.strategy.global_params["w"],
                                      after_flush)
        assert scheduler.pending_buffer() == 2

    def test_reset_clears_the_never_flushed_tail(self):
        # a reused scheduler must not leak run-1's tail into run 2's flush
        core = _FakeCore(buffer_size=3)
        scheduler = BufferedScheduler()
        policy = AggregationPolicy(alpha=1.0, exponent=0.5)
        for index in range(2):
            scheduler.consume(core, policy, 0, _event(index, 999.0))
        assert scheduler.pending_buffer() == 2
        scheduler.reset()
        assert scheduler.pending_buffer() == 0
        assert scheduler._version == 0
        for index in range(3):
            scheduler.consume(core, policy, 0, _event(index, 6.0))
        # the flush averages only the post-reset events
        np.testing.assert_allclose(core.strategy.global_params["w"], [6.0])

    def test_reused_scheduler_instance_reruns_cleanly(self):
        from repro.baselines import build_strategy
        from repro.experiments.presets import build_experiment
        from repro.server.core import ServerCore
        from repro.server.scheduler import BufferedScheduler

        scheduler = BufferedScheduler()
        histories = []
        for _ in range(2):
            dataset, model_builder, config, fleet = build_experiment(
                tiny_preset("flaky", "fedbuff", num_rounds=3))
            core = ServerCore(build_strategy("fedavg"), dataset,
                              model_builder, config=config, fleet=fleet)
            histories.append(scheduler.run(core))
        assert histories[0].to_dict() == histories[1].to_dict()

    def test_flush_staleness_measured_at_flush_time(self):
        # entries dispatched at version 0 but flushed at version 1 carry
        # staleness 1; with exponent 1.0 the decay is 1/2
        core = _FakeCore(buffer_size=2)
        scheduler = BufferedScheduler()
        policy = AggregationPolicy(alpha=1.0, exponent=1.0)
        for index in range(2):  # first flush -> version 1
            scheduler.consume(core, policy, 0, _event(index, 4.0))
        batch = scheduler.consume(core, policy, 0, _event(2, 8.0))
        assert batch == []
        batch = scheduler.consume(core, policy, 0, _event(3, 8.0))
        assert [arrival.staleness for arrival in batch] == [1, 1]


class TestAsyncConsume:
    def test_every_arrival_aggregates_and_bumps_version(self):
        core = _FakeCore()
        scheduler = AsyncScheduler()
        policy = AggregationPolicy(alpha=0.5, exponent=0.5)
        first = scheduler.consume(core, policy, 0, _event(0, 8.0))
        assert [a.staleness for a in first] == [0]
        np.testing.assert_allclose(core.strategy.global_params["w"], [4.0])
        second = scheduler.consume(core, policy, 0, _event(1, 8.0, 0))
        # dispatched at version 0, consumed at version 1 -> staleness 1
        assert [a.staleness for a in second] == [1]
        assert scheduler._version == 2


class TestAsyncHistories:
    @pytest.mark.parametrize("aggregation", ["fedasync", "fedbuff"])
    def test_records_carry_async_fields(self, aggregation):
        history = run_method(
            "fedavg", tiny_preset("flaky", aggregation))
        assert len(history) == TINY["num_rounds"]
        assert any(record.staleness_mean > 0 for record in history.records)
        assert history.mean_staleness > 0
        # async histories serialize and round-trip like sync ones
        clone = type(history).from_dict(history.to_dict())
        assert clone.to_dict() == history.to_dict()

    def test_fedbuff_records_expose_buffer_occupancy(self):
        # 3 arrivals per round against a 2-flush: rounds end with an arrival
        # still buffered, which the record must report
        from repro.baselines import build_strategy
        from repro.experiments.presets import build_experiment
        from repro.federated import FederatedTrainer

        dataset, model_builder, config, fleet = build_experiment(
            tiny_preset("flaky", "fedbuff"))
        config.async_arrivals_per_round = 3
        config.buffer_size = 2
        history = FederatedTrainer(build_strategy("fedavg"), dataset,
                                   model_builder, config=config,
                                   fleet=fleet).run()
        assert any(record.buffer_size > 0 for record in history.records)

    def test_sync_records_keep_legacy_serialization(self):
        history = run_method("fedavg", tiny_preset("flaky", "sync",
                                                   num_rounds=2))
        for record in history.records:
            payload = record.to_dict()
            assert "staleness_mean" not in payload
            assert "buffer_size" not in payload

    def test_busy_clients_are_not_redispatched(self):
        history = run_method("fedavg", tiny_preset("flaky", "fedasync"))
        for record in history.records:
            # a client still in flight is reported as dropped, and the
            # dispatched cohort never contains duplicates
            assert len(record.selected_clients) == \
                len(set(record.selected_clients))

    def test_fedbuff_flush_never_carries_a_client_twice(self, monkeypatch):
        # regression: a client whose arrival sits un-flushed in the buffer
        # must not be re-dispatched — otherwise a flush batch can carry the
        # same client twice and the {client_id: cost} bookkeeping handed to
        # post_round silently drops one arrival's cost
        import repro.server.scheduler as scheduler_module
        from repro.baselines import build_strategy
        from repro.experiments.presets import build_experiment
        from repro.federated import FederatedTrainer

        batches = []

        class RecordingPolicy(AggregationPolicy):
            def merge(self, strategy, round_index, arrivals):
                batches.append([a.update.client_id for a in arrivals])
                return super().merge(strategy, round_index, arrivals)

        monkeypatch.setattr(scheduler_module, "AggregationPolicy",
                            RecordingPolicy)
        dataset, model_builder, config, fleet = build_experiment(
            tiny_preset("flaky", "fedbuff", num_clients=6, num_rounds=12,
                        seed=3))
        config.buffer_size = 3
        config.async_arrivals_per_round = 1
        FederatedTrainer(build_strategy("fedavg"), dataset, model_builder,
                         config=config, fleet=fleet).run()
        assert batches, "no flush happened; weaken the config"
        for batch in batches:
            assert len(batch) == len(set(batch)), batch


class TestAsyncBeatsSyncOnSimTime:
    """The acceptance scenario: fedasync reaches the smoke preset's target
    accuracy in less cumulative sim-time than sync under ``flaky``."""

    def test_fedasync_reaches_target_sooner(self):
        sync = run_method("fedavg", tiny_preset("flaky", "sync"))
        fedasync = run_method("fedavg", tiny_preset("flaky", "fedasync"))
        target = 0.5 * sync.best_accuracy()
        sync_tta = sync.sim_time_to_accuracy(target)
        async_tta = fedasync.sim_time_to_accuracy(target)
        assert sync_tta is not None and async_tta is not None
        assert async_tta < sync_tta
        # the async server also finishes the whole run in less sim time:
        # stragglers no longer gate the round cadence
        assert fedasync.total_sim_time < sync.total_sim_time
