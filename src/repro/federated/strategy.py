"""Strategy interface: how a federated method plugs into the simulator.

A strategy owns the global model state and decides

* which clients participate in a round (``select_clients``),
* what a client computes locally and what it uploads (``local_update``),
* how the server merges uploads (``aggregate``),
* which parameters each client uses for inference (``client_evaluation``),
* any end-of-round bookkeeping such as bandit updates (``post_round``).

The :class:`FederatedTrainer` drives the round loop, converts the uploaded
footprints into simulated time through the cost model and records metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..data.dataset import FederatedDataset
from ..nn.model import Sequential
from ..nn.params import ParamDict, copy_params
from ..sparsity.accounting import local_round_cost
from ..sparsity.masks import UnitPattern
from ..systems.cost import CostBreakdown, LocalCostModel
from ..systems.devices import DeviceFleet
from .aggregation import fedavg
from .client import Client
from .config import FederatedConfig
from .local import train_locally


@dataclass
class StrategyContext:
    """Everything a strategy needs to run: model, data, devices, config."""

    model: Sequential
    clients: Dict[int, Client]
    dataset: FederatedDataset
    fleet: DeviceFleet
    config: FederatedConfig
    cost_model: LocalCostModel
    rng: np.random.Generator

    @property
    def client_ids(self) -> List[int]:
        return sorted(self.clients.keys())


@dataclass
class ClientUpdate:
    """What one client reports back to the server after a round."""

    client_id: int
    params: ParamDict
    num_examples: int
    train_accuracy: float
    train_loss: float
    pattern: Optional[UnitPattern] = None
    sparse_ratio: float = 1.0
    flops: float = 0.0
    upload_bytes: float = 0.0
    download_bytes: float = 0.0
    extras: Dict[str, float] = field(default_factory=dict)


class Strategy:
    """Base class implementing plain FedAvg behaviour.

    Subclasses override the hooks they need; the base implementations are a
    correct dense-FL method on their own (and are what the FedAvg baseline
    uses directly).
    """

    name = "fedavg"

    def __init__(self) -> None:
        self.context: Optional[StrategyContext] = None
        self.global_params: Optional[ParamDict] = None

    # ------------------------------------------------------------ lifecycle
    def setup(self, context: StrategyContext) -> None:
        self.context = context
        self.global_params = context.model.get_parameters()

    def _require_context(self) -> StrategyContext:
        if self.context is None or self.global_params is None:
            raise RuntimeError("strategy used before setup() was called")
        return self.context

    # ------------------------------------------------------------ selection
    def select_clients(self, round_index: int) -> List[int]:
        """Uniformly random selection of ``clients_per_round`` clients."""
        context = self._require_context()
        ids = context.client_ids
        count = min(context.config.clients_per_round, len(ids))
        chosen = context.rng.choice(ids, size=count, replace=False)
        return sorted(int(cid) for cid in chosen)

    # --------------------------------------------------------- local update
    def local_update(self, round_index: int, client: Client) -> ClientUpdate:
        """Dense local SGD starting from the global parameters."""
        context = self._require_context()
        config = context.config
        result = train_locally(
            context.model, self.global_params, client.train_data,
            iterations=config.local_iterations, batch_size=config.batch_size,
            learning_rate=config.learning_rate, momentum=config.momentum,
            clip_norm=config.clip_norm,
            rng=self._client_rng(round_index, client.client_id))
        flops, upload, download = self._round_footprint(client, pattern=None)
        return ClientUpdate(
            client_id=client.client_id, params=result.params,
            num_examples=client.num_train_examples,
            train_accuracy=result.train_accuracy, train_loss=result.train_loss,
            flops=flops, upload_bytes=upload, download_bytes=download)

    # ----------------------------------------------------------- aggregation
    def aggregate(self, round_index: int, updates: List[ClientUpdate]) -> None:
        """FedAvg: weighted average of the uploaded parameters."""
        if not updates:
            return
        self.global_params = fedavg(
            [update.params for update in updates],
            [update.num_examples for update in updates])

    # ------------------------------------------------------------ evaluation
    def client_evaluation(self, client: Client) -> Tuple[ParamDict, Optional[UnitPattern]]:
        """Parameters (and optional sub-model pattern) the client infers with."""
        self._require_context()
        return self.global_params, None

    # ------------------------------------------------------------- post-round
    def post_round(self, round_index: int, updates: List[ClientUpdate],
                   costs: Mapping[int, CostBreakdown]) -> None:
        """Hook for bandit updates, staleness bookkeeping, etc."""

    # --------------------------------------------------------------- helpers
    def _client_rng(self, round_index: int, client_id: int) -> np.random.Generator:
        context = self._require_context()
        return np.random.default_rng(
            context.config.seed * 1_000_003 + round_index * 1009 + client_id)

    def _round_footprint(self, client: Client, *,
                         pattern: Optional[UnitPattern] = None,
                         uniform_ratio: Optional[float] = None
                         ) -> Tuple[float, float, float]:
        """FLOPs / upload / download footprint of one local round."""
        context = self._require_context()
        config = context.config
        cost = local_round_cost(
            context.model, client.num_train_examples, config.local_iterations,
            config.batch_size, pattern=pattern, uniform_ratio=uniform_ratio)
        return cost.flops, cost.upload_bytes, cost.download_bytes

    def snapshot_global(self) -> ParamDict:
        """A defensive copy of the current global parameters."""
        self._require_context()
        return copy_params(self.global_params)
