"""Table II: FedLPS ablation (FLST, RCR-Fix/Dyn, P-UCBV-Fix/Dyn)."""

from __future__ import annotations

import pytest

from repro.experiments import table2_ablation

from conftest import bench_overrides, print_rows

DATASETS = ("mnist", "cifar10", "reddit")


@pytest.mark.benchmark(group="table2")
def test_table2_ablation(benchmark):
    overrides = bench_overrides()

    def run():
        rows = []
        for dataset in DATASETS:
            rows.extend(table2_ablation(dataset=dataset, overrides=overrides))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_rows("Table II: FedLPS ablation", rows)
    assert len(rows) == len(DATASETS) * 5
    variants = {row["variant"] for row in rows}
    assert variants == {"FLST", "RCR-Fix", "P-UCBV-Fix", "RCR-Dyn", "P-UCBV-Dyn"}
