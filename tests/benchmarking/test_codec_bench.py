"""The wire-codec benchmark harness (BENCH_codec.json)."""

from __future__ import annotations

import json

import pytest

from repro.benchmarking import format_codec_report, run_codec_bench
from repro.benchmarking.codec import BENCH_CODECS
from repro.benchmarking.fanout import BENCH_METHOD, fanout_preset
from repro.cli import main
from repro.experiments import run_method, scaled


class TestWireBytesCrossTheBoundaryCompressed:
    """Every codec's per-round traffic lands strictly below dense float64."""

    @pytest.fixture(scope="class")
    def preset(self):
        return fanout_preset(0.5)

    @pytest.mark.parametrize("codec", BENCH_CODECS)
    def test_codec_uploads_beat_dense(self, preset, codec):
        history = run_method(BENCH_METHOD, scaled(preset, codec=codec))
        for record in history.records:
            extras = record.extras
            assert extras["wire_upload_bytes"] \
                < extras["wire_upload_dense_bytes"]
            assert extras["wire_download_bytes"] \
                <= extras["wire_download_dense_bytes"]

    def test_dense_runs_record_no_wire_report(self, preset):
        history = run_method(BENCH_METHOD, preset)
        for record in history.records:
            assert not any(key.startswith("wire_")
                           for key in record.extras)


class TestCodecBench:
    def test_report_schema_and_gate(self, tmp_path):
        output = tmp_path / "BENCH_codec.json"
        report = run_codec_bench(scale=0.5, output=str(output))
        assert report["gate"]["pass"], report["gate"]
        assert set(report["codecs"]) == set(BENCH_CODECS)
        for cell in report["codecs"].values():
            assert 0.0 < cell["upload_ratio"] < 1.0
            assert cell["upload_bytes"] < cell["upload_dense_bytes"]
        assert report["codecs"]["sparse"]["matches_dense_reference"]
        assert "accuracy_delta" in report["codecs"]["int8"]
        persisted = json.loads(output.read_text())
        assert persisted["gate"]["pass"] is True
        assert "PASS" in format_codec_report(report)

    def test_sparse_meets_its_ratio_budget(self):
        # FedLPS residuals at the benchmark's sparsity sit well under the
        # density ceiling, so the budget clause must actually engage
        report = run_codec_bench(scale=0.5, codecs=("sparse",))
        gate = report["gate"]
        assert gate["sparse_budget_applies"]
        assert gate["sparse_mask_density"] <= gate["density_ceiling"]
        assert report["codecs"]["sparse"]["upload_ratio"] \
            <= gate["sparse_ratio_budget"]

    def test_cli_codec_scale_axis(self, tmp_path, capsys):
        output = tmp_path / "BENCH_codec.json"
        code = main(["bench", "--codec-scale", "0.5",
                     "--codec-output", str(output), "--check"])
        assert code == 0
        assert output.exists()
        out = capsys.readouterr().out
        assert "sparse" in out and "gate:" in out

    def test_cli_rejects_mixed_axes_and_fanout_flags(self, capsys):
        assert main(["bench", "--codec-scale", "0.5",
                     "--checkpoint-scale", "0.02"]) == 2
        assert "separate axes" in capsys.readouterr().out
        assert main(["bench", "--codec-scale", "0.5",
                     "--repeats", "1"]) == 2
        assert "--repeats" in capsys.readouterr().out
