"""Figure 3: test accuracy versus cumulative training FLOPs."""

from __future__ import annotations

import pytest

from repro.experiments import FIGURE3_METHODS, accuracy_vs_flops

from conftest import bench_overrides, print_rows

DATASETS = ("mnist", "cifar10", "cifar100", "reddit")


@pytest.mark.benchmark(group="figure3")
def test_fig3_accuracy_vs_flops(benchmark):
    overrides = bench_overrides()

    def run():
        return {dataset: accuracy_vs_flops(dataset, FIGURE3_METHODS, overrides)
                for dataset in DATASETS}

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for dataset, by_method in series.items():
        for method, points in by_method.items():
            rows.append({
                "dataset": dataset,
                "method": method,
                "final_accuracy": points[-1]["accuracy"],
                "total_flops": points[-1]["flops"],
                "points": len(points),
            })
    print_rows("Figure 3: accuracy vs FLOPs (series endpoints)", rows)
    for dataset, by_method in series.items():
        assert set(by_method) == set(FIGURE3_METHODS)
        for points in by_method.values():
            flops = [p["flops"] for p in points]
            assert flops == sorted(flops)
