"""Supervised execution: retries, timeouts, crash recovery, replenishment."""

from __future__ import annotations

import time

import pytest

from repro.parallel import (FaultPlan, ProcessPoolExecutor, RetryPolicy,
                            SerialExecutor, ThreadPoolExecutor,
                            retry_call, run_supervised)
from repro.parallel.supervision import FaultCounters


# task functions live at module level so the spawn-based process backend can
# import them in its workers
def _double(x):
    return x * 2


def _sleep_forever(x):
    time.sleep(600)
    return x  # pragma: no cover - reclaimed long before this returns


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(task_timeout=0.0)

    def test_active_only_when_it_changes_anything(self):
        assert not RetryPolicy().active
        assert RetryPolicy(max_retries=1).active
        assert RetryPolicy(task_timeout=5.0).active

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(max_retries=10, backoff_base=0.02,
                             backoff_cap=0.1, wall_sleep_cap=0.01)
        assert policy.backoff_seconds(0) == pytest.approx(0.02)
        assert policy.backoff_seconds(1) == pytest.approx(0.04)
        assert policy.backoff_seconds(9) == pytest.approx(0.1)  # capped
        # the real sleep is additionally wall-clock capped
        assert policy.sleep_seconds(9) == pytest.approx(0.01)

    def test_should_retry_bounds_attempts(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.should_retry(0) and policy.should_retry(1)
        assert not policy.should_retry(2)


class TestFaultCounters:
    def test_extras_are_fault_prefixed_floats(self):
        extras = FaultCounters(retries=2, timeouts=1, worker_restarts=3,
                               exhausted=1, backoff_seconds=0.06).as_extras()
        assert set(extras) == {"fault_retries", "fault_timeouts",
                               "fault_worker_restarts", "fault_exhausted",
                               "fault_backoff_seconds"}
        assert all(isinstance(value, float) for value in extras.values())
        assert extras["fault_worker_restarts"] == 3.0


class TestInlineSupervision:
    def test_plain_run_returns_results_in_task_order(self):
        report = run_supervised(None, _double, [(7, 1), (3, 2), (9, 3)],
                                policy=RetryPolicy())
        assert report.results == [2, 4, 6]
        assert report.failed == []
        assert report.counters.as_extras()["fault_retries"] == 0.0

    def test_transient_failure_is_retried_to_success(self):
        calls = {}

        def flaky(x):
            calls[x] = calls.get(x, 0) + 1
            if x == 2 and calls[x] < 3:
                raise ValueError("transient")
            return x

        report = run_supervised(None, flaky, [(i, i) for i in range(4)],
                                policy=RetryPolicy(max_retries=3))
        assert report.results == [0, 1, 2, 3]
        assert report.counters.retries == 2
        assert report.counters.backoff_seconds > 0

    def test_exhausted_task_degrades_to_failed_key(self):
        def poisoned(x):
            if x == 1:
                raise ValueError("always")
            return x

        report = run_supervised(None, poisoned, [(i, i) for i in range(3)],
                                policy=RetryPolicy(max_retries=2))
        assert report.results == [0, None, 2]
        assert report.failed == [1]
        assert report.counters.exhausted == 1
        assert report.counters.retries == 2

    def test_serial_executor_uses_the_inline_path(self):
        with SerialExecutor() as executor:
            report = run_supervised(executor, _double, [(0, 5)],
                                    policy=RetryPolicy(max_retries=1))
        assert report.results == [10]

    def test_injected_plan_faults_are_counted_by_kind(self):
        plan = FaultPlan(seed=1, crash_rate=1.0)
        report = run_supervised(None, _double, [(0, 1), (1, 2)],
                                policy=RetryPolicy(max_retries=1), plan=plan)
        # every attempt crashes: initial + 1 retry each, then exhaustion
        assert report.results == [None, None]
        assert report.failed == [0, 1]
        assert report.counters.worker_restarts == 4
        assert report.counters.exhausted == 2

    def test_failed_keys_come_back_sorted(self):
        def always_fail(x):
            raise ValueError("no")

        report = run_supervised(None, always_fail,
                                [(9, 9), (1, 1), (5, 5)],
                                policy=RetryPolicy())
        assert report.failed == [1, 5, 9]


class TestThreadSupervision:
    def test_pool_path_matches_inline_results(self):
        tasks = [(i, i) for i in range(6)]
        inline = run_supervised(None, _double, tasks, policy=RetryPolicy())
        with ThreadPoolExecutor(2) as executor:
            pooled = run_supervised(executor, _double, tasks,
                                    policy=RetryPolicy())
        assert pooled.results == inline.results

    def test_simulated_crash_is_retried_without_replenish(self):
        # threads cannot lose a worker: crash decisions simulate in-process
        plan = FaultPlan(seed=2, crash_rate=0.5)
        tasks = [(i, i) for i in range(8)]
        with ThreadPoolExecutor(2) as executor:
            report = run_supervised(executor, _double, tasks,
                                    policy=RetryPolicy(max_retries=4),
                                    plan=plan)
        inline = run_supervised(None, _double, tasks,
                                policy=RetryPolicy(max_retries=4), plan=plan)
        assert report.results == [i * 2 for i in range(8)]
        assert report.counters == inline.counters

    def test_replenish_refused_on_thread_backend(self):
        with ThreadPoolExecutor(2) as executor:
            assert not executor.can_replenish
            with pytest.raises(RuntimeError, match="cannot replenish"):
                executor.replenish()

    def test_submit_after_close_raises(self):
        executor = ThreadPoolExecutor(2)
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            executor.submit(_double, 1)


class TestProcessSupervision:
    def test_killed_worker_is_replenished_and_task_retried(self):
        """An os._exit crash breaks the pool; supervision recovers it."""
        plan = FaultPlan(seed=0, crash_rate=1.0)
        tasks = [(0, 21)]
        with ProcessPoolExecutor(2) as executor:
            assert executor.supports_real_faults and executor.can_replenish
            # rate 1.0 crashes every attempt: the task degrades after its
            # bounded retries, charging one restart per kill
            report = run_supervised(executor, _double, tasks,
                                    policy=RetryPolicy(max_retries=1),
                                    plan=plan)
            assert report.results == [None]
            assert report.failed == [0]
            assert report.counters.worker_restarts == 2
            # the replenished pool is immediately usable for real work
            assert executor.map_ordered(_double, [1, 2]) == [2, 4]

    def test_crash_then_success_returns_exact_result(self):
        """A task whose retry draws no fault completes normally."""
        plan = FaultPlan(seed=0, crash_rate=0.4)
        tasks = [(i, i) for i in range(6)]
        decisions = [[plan.decide(0, key, attempt).kind
                      for attempt in range(4)] for key, _ in tasks]
        assert any(kinds[0] == "crash" for kinds in decisions), \
            "seed must schedule at least one first-attempt crash"
        assert all("none" in kinds for kinds in decisions), \
            "every task must eventually draw a clean attempt"
        with ProcessPoolExecutor(2) as executor:
            report = run_supervised(executor, _double, tasks,
                                    policy=RetryPolicy(max_retries=3),
                                    plan=plan)
        assert report.results == [i * 2 for i in range(6)]
        assert report.failed == []
        inline = run_supervised(None, _double, tasks,
                                policy=RetryPolicy(max_retries=3), plan=plan)
        assert report.counters == inline.counters

    def test_genuinely_hung_task_times_out_and_pool_recovers(self):
        """A wall-clock hang (not injected) is reclaimed by the timeout."""
        policy = RetryPolicy(max_retries=0, task_timeout=1.0)
        with ProcessPoolExecutor(2) as executor:
            executor.warm_up()
            report = run_supervised(executor, _sleep_forever, [(0, 1)],
                                    policy=policy)
            assert report.results == [None]
            assert report.failed == [0]
            assert report.counters.timeouts == 1
            assert report.counters.exhausted == 1
            # replenish() reclaimed the hung worker; the pool still works
            assert executor.map_ordered(_double, [3]) == [6]

    def test_injected_hang_is_cooperative_and_counted(self):
        """Injected hangs sleep under the budget, then fail as timeouts."""
        plan = FaultPlan(seed=0, hang_rate=1.0, hang_seconds=600.0)
        with ProcessPoolExecutor(2) as executor:
            start = time.perf_counter()
            report = run_supervised(executor, _double, [(0, 1)],
                                    policy=RetryPolicy(max_retries=0,
                                                       task_timeout=2.0),
                                    plan=plan)
            elapsed = time.perf_counter() - start
        assert report.failed == [0]
        assert report.counters.timeouts == 1
        # the injected stall was capped at half the timeout budget: the
        # worker returned a failure sentinel instead of tripping the wall
        # -clock deadline, so no worker was abandoned
        assert elapsed < 60.0

    def test_replenish_preserves_round_broadcast_state(self):
        """Replacement workers re-materialize from the existing manifest.

        The run-invariant session lives in server-owned shared memory; a
        replenished pool must keep consuming the same handles without the
        server re-pickling parameters (no second session witness).
        """
        import numpy as np

        from repro.parallel.broadcast import Broadcast

        params = {"weights": np.arange(64, dtype=np.float64)}
        with ProcessPoolExecutor(2) as executor:
            with Broadcast({"tag": "session"}, params,
                           round_index=0) as session:
                before = executor.map_ordered(
                    _materialize_param_sum, [session.handle] * 2)
                executor.replenish()
                after = executor.map_ordered(
                    _materialize_param_sum, [session.handle] * 2)
        assert before == after == [float(np.arange(64).sum())] * 2


def _materialize_param_sum(handle):
    from repro.parallel import materialize

    params, _payload = materialize(handle)
    return float(params["weights"].sum())


class TestRetryCall:
    def test_returns_first_success(self):
        assert retry_call(lambda: 42, policy=RetryPolicy()) == 42

    def test_retries_then_succeeds(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise RuntimeError("transient")
            return "ok"

        counters = FaultCounters()
        result = retry_call(flaky, policy=RetryPolicy(max_retries=3),
                            counters=counters)
        assert result == "ok"
        assert counters.retries == 2

    def test_final_attempt_reraises(self):
        def doomed():
            raise RuntimeError("permanent")

        with pytest.raises(RuntimeError, match="permanent"):
            retry_call(doomed, policy=RetryPolicy(max_retries=2))
