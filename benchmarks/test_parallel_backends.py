"""Backend smoke benchmark: one tiny preset through every executor backend.

This is the CI "benchmark smoke" job: it proves every backend still produces
bit-identical histories on a representative method (FedLPS exercises sparse
patterns, per-client importance state and the P-UCBV bandit) while recording
per-backend wall-clock into the ``BENCH_parallel.json`` artifact.
"""

from __future__ import annotations

import time

import pytest

from repro.experiments import preset_for, run_method, scaled
from repro.parallel import available_backends, resolve_executor

from conftest import bench_overrides

WORKERS = 2


def tiny_preset():
    overrides = bench_overrides(num_clients=6, examples_per_client=30,
                                num_rounds=3, local_iterations=2)
    return scaled(preset_for("mnist"), **overrides)


@pytest.fixture(scope="module")
def reference_history():
    """The serial (no-executor) reference run all backends must reproduce."""
    return run_method("fedlps", tiny_preset())


@pytest.mark.parametrize("backend", available_backends())
def test_backend_smoke(backend, reference_history, record_backend_timing):
    with resolve_executor(backend, WORKERS) as executor:
        start = time.perf_counter()
        history = run_method("fedlps", tiny_preset(), executor=executor)
        elapsed = time.perf_counter() - start
    record_backend_timing(backend, elapsed, workers=WORKERS)
    assert history.to_dict() == reference_history.to_dict()
