"""Weight initializers for the numpy neural-network substrate."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def glorot_uniform(rng: np.random.Generator, shape: Tuple[int, ...],
                   fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def he_uniform(rng: np.random.Generator, shape: Tuple[int, ...],
               fan_in: int) -> np.ndarray:
    """He/Kaiming uniform initialization (suited to ReLU networks)."""
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def normal(rng: np.random.Generator, shape: Tuple[int, ...],
           std: float = 0.01) -> np.ndarray:
    """Zero-mean Gaussian initialization."""
    return (rng.standard_normal(size=shape) * std).astype(np.float64)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zeros initialization (biases)."""
    return np.zeros(shape, dtype=np.float64)


def orthogonal(rng: np.random.Generator, shape: Tuple[int, int]) -> np.ndarray:
    """Orthogonal initialization for recurrent weight matrices."""
    a = rng.standard_normal(size=shape)
    q, _ = np.linalg.qr(a if shape[0] >= shape[1] else a.T)
    q = q if shape[0] >= shape[1] else q.T
    return q[: shape[0], : shape[1]].astype(np.float64)
