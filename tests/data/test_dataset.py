"""Tests for Dataset, DataLoader and the federated containers."""

import numpy as np
import pytest

from repro.data import ClientData, DataLoader, Dataset, FederatedDataset


def make_dataset(n=20, num_classes=4, seed=0):
    rng = np.random.default_rng(seed)
    return Dataset(rng.standard_normal((n, 3)),
                   rng.integers(0, num_classes, size=n))


class TestDataset:
    def test_length_and_classes(self):
        ds = make_dataset(30, 4)
        assert len(ds) == 30
        assert 1 <= ds.num_classes <= 4

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros(4, dtype=int))

    def test_subset_copies(self):
        ds = make_dataset()
        sub = ds.subset(np.array([0, 1]))
        sub.x[0, 0] = 123.0
        assert ds.x[0, 0] != 123.0

    def test_class_counts(self):
        ds = Dataset(np.zeros((4, 1)), np.array([0, 0, 2, 1]))
        np.testing.assert_array_equal(ds.class_counts(3), [2, 1, 1])

    def test_split_sizes(self):
        ds = make_dataset(20)
        train, test = ds.split(0.25, seed=1)
        assert len(train) + len(test) == 20
        assert len(test) == 5

    def test_split_invalid_fraction(self):
        ds = make_dataset()
        with pytest.raises(ValueError):
            ds.split(0.0)
        with pytest.raises(ValueError):
            ds.split(1.0)

    def test_split_deterministic(self):
        ds = make_dataset(20)
        a_train, _ = ds.split(0.2, seed=3)
        b_train, _ = ds.split(0.2, seed=3)
        np.testing.assert_array_equal(a_train.y, b_train.y)


class TestDataLoader:
    def test_batches_cover_all_examples(self):
        ds = make_dataset(23)
        loader = DataLoader(ds, batch_size=5, shuffle=False)
        total = sum(len(y) for _, y in loader)
        assert total == 23
        assert len(loader) == 5

    def test_drop_last(self):
        ds = make_dataset(23)
        loader = DataLoader(ds, batch_size=5, drop_last=True)
        sizes = [len(y) for _, y in loader]
        assert all(size == 5 for size in sizes)
        assert len(loader) == 4

    def test_shuffling_changes_order_between_epochs(self):
        ds = make_dataset(50)
        loader = DataLoader(ds, batch_size=50, shuffle=True, seed=0)
        first = next(iter(loader))[1]
        second = next(iter(loader))[1]
        assert not np.array_equal(first, second)

    def test_invalid_arguments(self):
        ds = make_dataset(5)
        with pytest.raises(ValueError):
            DataLoader(ds, batch_size=0)
        with pytest.raises(ValueError):
            DataLoader(Dataset(np.zeros((0, 2)), np.zeros(0, dtype=int)), 2)


class TestFederatedContainers:
    def test_client_data_counts(self):
        ds = make_dataset(10)
        shard = ClientData(0, ds, ds)
        assert shard.num_train_examples == 10

    def test_federated_dataset_accessors(self, small_fed_dataset):
        assert small_fed_dataset.num_clients == 6
        assert list(small_fed_dataset.client_ids) == list(range(6))
        shard = small_fed_dataset.client(0)
        assert len(shard.train) > 0 and len(shard.test) > 0
        with pytest.raises(KeyError):
            small_fed_dataset.client(99)

    def test_total_examples_and_weights(self, small_fed_dataset):
        total = small_fed_dataset.total_train_examples()
        weights = small_fed_dataset.average_local_accuracy_weights()
        assert total == sum(weights.values())
