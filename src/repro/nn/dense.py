"""Fully-connected layer with optional structured-unit gating."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from . import initializers
from .base import Array, Layer, ParamDict, as_float


class Dense(Layer):
    """Affine layer ``y = x @ W + b``.

    The sparsifiable units of a dense layer are its output neurons.  When a
    unit gate is installed, the output is multiplied column-wise by the gate
    and the gradient of the loss with respect to the gate is accumulated for
    importance learning.
    """

    def __init__(self, in_features: int, out_features: int, *,
                 name: str = "dense", sparsifiable: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__(name)
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.sparsifiable = sparsifiable
        rng = rng or np.random.default_rng(0)
        self.params = {
            "W": initializers.glorot_uniform(
                rng, (in_features, out_features), in_features, out_features),
            "b": initializers.zeros((out_features,)),
        }
        self.zero_grad()
        self._x: Array | None = None
        self._pre_gate: Array | None = None

    # ------------------------------------------------------------------ core
    def forward(self, x: Array, *, train: bool = True) -> Array:
        x = as_float(x)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected input of shape (N, {self.in_features}), "
                f"got {x.shape}")
        self._x = x
        self._pre_gate = x @ self.params["W"] + self.params["b"]
        return self._apply_unit_gate(self._pre_gate, unit_axis=1)

    def backward(self, grad_out: Array) -> Array:
        if self._x is None or self._pre_gate is None:
            raise RuntimeError("backward called before forward")
        grad_pre = self._accumulate_gate_grad(grad_out, self._pre_gate, unit_axis=1)
        self.grads["W"] += self._x.T @ grad_pre
        self.grads["b"] += np.sum(grad_pre, axis=0)
        return grad_pre @ self.params["W"].T

    # ------------------------------------------------------------------ units
    @property
    def n_units(self) -> int:
        return self.out_features if self.sparsifiable else 0

    def expand_unit_mask(self, unit_mask: Array) -> ParamDict:
        unit_mask = np.asarray(unit_mask, dtype=np.float64)
        if unit_mask.shape != (self.out_features,):
            raise ValueError(
                f"{self.name}: unit mask must have shape ({self.out_features},), "
                f"got {unit_mask.shape}")
        return {
            "W": np.broadcast_to(unit_mask, (self.in_features, self.out_features)).copy(),
            "b": unit_mask.copy(),
        }

    def unit_weight_magnitude(self) -> Array:
        return np.sum(np.abs(self.params["W"]), axis=0) + np.abs(self.params["b"])

    # ------------------------------------------------------------ accounting
    def flops_per_example(self, input_shape: Tuple[int, ...]) -> Tuple[int, Tuple[int, ...]]:
        if len(input_shape) != 1:
            raise ValueError(f"{self.name}: dense layer expects a flat input shape")
        flops = 2 * self.in_features * self.out_features
        return flops, (self.out_features,)
