"""Checkpoint-cost benchmark: write/restore time and bytes vs fleet size.

``repro bench --checkpoint-scale`` pins the cost contract of
:mod:`repro.checkpoint`: a round-boundary checkpoint must be cheap enough
to take every round (write wall-clock under a second even at the 100k-client
rung) and must scale with the *cohort* that actually participated, never
with the fleet — a lazy 100k-client run's checkpoint carries the same few
dozen client states as a 1k-client run's, so its bytes on disk stay within
a constant factor of the small rung instead of growing 100x.

Each rung runs a short training run with per-round checkpointing on a lazy
virtual fleet, records the manager's write timing/bytes, then restores the
latest checkpoint into a *fresh* core and times that too.  The report lands
in ``BENCH_checkpoint.json``, schema-compatible with the ``BENCH_fanout``/
``BENCH_fleet`` family (``bench_scale``, ``cpu_count``, per-cell
``seconds``), so future PRs have a trajectory to move.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, Iterable, Optional

from ..baselines import build_strategy
from ..checkpoint import CheckpointManager, restore_run
from ..federated import FederatedTrainer
from ..systems.metrics import TrainingHistory
from .fleet import fleet_preset

#: the fleet-size rungs at scale 1.0 (small reference + the 100k contract)
LADDER = (1_000, 100_000)

#: write budget of the top rung: checkpointing every round must stay cheap
GATE_WRITE_SECONDS = 1.0

#: O(cohort) slack: the top rung's bytes may exceed the small rung's by at
#: most this factor (or this many absolute bytes, whichever is larger) —
#: a 100x fleet with the same cohort must not produce ~100x the checkpoint
GATE_BYTES_FACTOR = 2.0
GATE_BYTES_SLACK = 1_000_000


def _build_trainer(preset):
    from ..experiments.presets import build_experiment

    dataset, model_builder, config, fleet = build_experiment(preset)
    return FederatedTrainer(build_strategy("fedavg"), dataset, model_builder,
                            config=config, fleet=fleet)


def measure_checkpoint(num_clients: int) -> Dict[str, object]:
    """Write + restore cost of checkpointing one rung's training run.

    Runs two rounds with a per-round checkpointer (timings come from the
    manager's counters, so they measure exactly the capture+serialize+fsync
    path a real run pays), then rebuilds a fresh trainer and times restoring
    the final checkpoint into it.
    """
    from ..server.scheduler import build_scheduler

    preset = fleet_preset(num_clients, num_rounds=2, clients_per_round=32,
                          eval_clients=0)
    trainer = _build_trainer(preset)
    core = trainer.core
    with tempfile.TemporaryDirectory() as tmp:
        manager = CheckpointManager(tmp, every=1)
        scheduler = build_scheduler(core.config)
        start = time.perf_counter()
        history = scheduler.run(core, checkpointer=manager)
        run_seconds = time.perf_counter() - start
        checkpoint = manager.latest()

        fresh = _build_trainer(preset)
        fresh_scheduler = build_scheduler(fresh.core.config)
        fresh.core.strategy.setup(fresh.core.context)
        fresh_scheduler.reset()
        restored = TrainingHistory(method=fresh.core.strategy.name,
                                   dataset=fresh.core.dataset.name)
        start = time.perf_counter()
        next_round = restore_run(fresh.core, fresh_scheduler, checkpoint,
                                 restored)
        restore_seconds = time.perf_counter() - start
    assert next_round == preset.num_rounds
    assert len(restored.records) == len(history.records)
    return {
        "num_clients": num_clients,
        "rounds": preset.num_rounds,
        "cohort_size": min(32, num_clients),
        "run_seconds": run_seconds,
        "seconds": manager.last_save_seconds,
        "mean_write_seconds": manager.total_save_seconds
                              / max(manager.saves, 1),
        "restore_seconds": restore_seconds,
        "bytes_on_disk": manager.last_bytes,
        "client_states": len(checkpoint.client_states),
        "queued_events": len(checkpoint.scheduler.get("events", ())),
    }


def _gate(cells: Dict[str, Dict[str, object]], small_size: int,
          top_size: int) -> Dict[str, object]:
    """Pass/fail: the top rung meets the write budget and stays O(cohort)."""
    small = cells.get(str(small_size))
    top = cells.get(str(top_size))
    if small is None or top is None:
        return {"pass": False,
                "reason": f"missing rung {small_size} or {top_size}"}
    write_seconds = float(top["seconds"])
    bytes_small = int(small["bytes_on_disk"])
    bytes_top = int(top["bytes_on_disk"])
    bytes_budget = max(int(bytes_small * GATE_BYTES_FACTOR),
                       bytes_small + GATE_BYTES_SLACK)
    # the state entries a checkpoint carries must track participation, not
    # fleet size: rounds * cohort is the hard upper bound
    participation_bound = int(top["rounds"]) * int(top["cohort_size"])
    sparse = int(top["client_states"]) <= participation_bound
    verdict = (write_seconds <= GATE_WRITE_SECONDS
               and bytes_top <= bytes_budget and sparse)
    return {
        "pass": bool(verdict),
        "top_size": top_size,
        "write_seconds": write_seconds,
        "write_seconds_budget": GATE_WRITE_SECONDS,
        "bytes_on_disk": bytes_top,
        "bytes_budget": bytes_budget,
        "bytes_small_rung": bytes_small,
        "o_cohort_states": sparse,
    }


def run_checkpoint_bench(scale: float = 1.0,
                         ladder: Optional[Iterable[int]] = None,
                         output: Optional[str] = None) -> Dict[str, object]:
    """Run the checkpoint benchmark and return (optionally write) the report.

    ``scale`` multiplies the fleet-size rungs (1k and 100k at 1.0), the same
    convention as ``repro bench --scale`` / ``--fleet-scale``.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    sizes = list(dict.fromkeys(
        max(8, int(round(step * scale)))
        for step in (ladder if ladder is not None else LADDER)))
    cells: Dict[str, Dict[str, object]] = {}
    for size in sizes:
        cells[str(size)] = measure_checkpoint(size)
    report: Dict[str, object] = {
        "bench_scale": scale,
        "python": platform.python_version(),
        "platform": sys.platform,
        "cpu_count": os.cpu_count(),
        "ladder": cells,
        "gate": _gate(cells, sizes[0], sizes[-1]),
    }
    if output:
        Path(output).write_text(json.dumps(report, indent=2, sort_keys=True))
    return report


def format_checkpoint_report(report: Dict[str, object]) -> str:
    """Render a checkpoint report as the aligned text table the CLI prints."""
    lines = [f"# repro bench --checkpoint-scale {report['bench_scale']} — "
             f"cpu_count {report['cpu_count']}"]
    header = (f"{'fleet':>10s} | {'write_s':>8s} | {'restore_s':>9s} | "
              f"{'bytes':>10s} | {'states':>6s} | {'events':>6s}")
    lines += [header, "-" * len(header)]
    for cell in report["ladder"].values():
        lines.append(
            f"{cell['num_clients']:>10d} | "
            f"{cell['seconds']:>8.4f} | "
            f"{cell['restore_seconds']:>9.4f} | "
            f"{cell['bytes_on_disk']:>10d} | "
            f"{cell['client_states']:>6d} | "
            f"{cell['queued_events']:>6d}")
    gate = report["gate"]
    if "write_seconds" in gate:
        lines.append(
            f"gate: {gate['top_size']} clients -> "
            f"write {gate['write_seconds']:.4f}s "
            f"(budget {gate['write_seconds_budget']}s), "
            f"{gate['bytes_on_disk']} bytes "
            f"(budget {gate['bytes_budget']}, "
            f"small rung {gate['bytes_small_rung']}) "
            f"-> {'PASS' if gate['pass'] else 'FAIL'}")
    else:
        lines.append(f"gate: FAIL ({gate.get('reason', 'unknown')})")
    return "\n".join(lines)
