"""Synthetic datasets, non-IID partitioners and loaders."""

from .dataset import ClientData, DataLoader, Dataset, FederatedDataset
from .partition import (build_federated_dataset, dirichlet_partition,
                        iid_partition, partition_to_clients,
                        pathological_partition,
                        pathological_partition_missing_classes)
from .synthetic import (DATASET_BUILDERS, IMAGE_SPECS, ImageSpec, TextSpec,
                        make_image_classification,
                        make_personalized_image_shards, synthetic_cifar10,
                        synthetic_cifar100, synthetic_mnist, synthetic_reddit,
                        synthetic_reddit_users, synthetic_tinyimagenet)

__all__ = [
    "Dataset",
    "DataLoader",
    "ClientData",
    "FederatedDataset",
    "build_federated_dataset",
    "iid_partition",
    "pathological_partition",
    "pathological_partition_missing_classes",
    "dirichlet_partition",
    "partition_to_clients",
    "ImageSpec",
    "TextSpec",
    "IMAGE_SPECS",
    "DATASET_BUILDERS",
    "make_image_classification",
    "make_personalized_image_shards",
    "synthetic_mnist",
    "synthetic_cifar10",
    "synthetic_cifar100",
    "synthetic_tinyimagenet",
    "synthetic_reddit",
    "synthetic_reddit_users",
]
