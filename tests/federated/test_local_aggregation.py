"""Tests for local training, aggregation rules and evaluation."""

import numpy as np
import pytest

from repro.data import Dataset
from repro.federated import (aggregate_residuals, average_personalized_accuracy,
                             evaluate_params, fedavg, iterate_batches,
                             masked_average, staleness_weighted_average,
                             train_locally)
from repro.models import build_mlp
from repro.nn.params import copy_params, l2_distance, multiply, subtract
from repro.sparsity import build_parameter_mask, ordered_pattern


def toy_dataset(n=40, dim=12, classes=4, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, dim))
    w = rng.standard_normal((dim, classes))
    return Dataset(x, np.argmax(x @ w, axis=1))


class TestIterateBatches:
    def test_yields_requested_number_of_batches(self):
        ds = toy_dataset(10)
        batches = list(iterate_batches(ds, 4, 7, rng=np.random.default_rng(0)))
        assert len(batches) == 7
        assert all(len(y) == 4 for _, y in batches)

    def test_zero_iterations(self):
        ds = toy_dataset(10)
        assert list(iterate_batches(ds, 4, 0, rng=np.random.default_rng(0))) == []


class TestTrainLocally:
    def test_training_improves_accuracy(self):
        model = build_mlp(12, [16], 4, seed=0)
        ds = toy_dataset(60)
        result = train_locally(model, model.get_parameters(), ds,
                               iterations=30, batch_size=16, learning_rate=0.3,
                               rng=np.random.default_rng(0))
        assert result.train_accuracy > 0.4
        assert result.examples_seen == 30 * 16

    def test_prox_keeps_parameters_closer_to_center(self):
        model = build_mlp(12, [16], 4, seed=0)
        ds = toy_dataset(60)
        start = model.get_parameters()
        free = train_locally(model, start, ds, iterations=20, batch_size=16,
                             learning_rate=0.3, rng=np.random.default_rng(0))
        anchored = train_locally(model, start, ds, iterations=20, batch_size=16,
                                 learning_rate=0.3, prox_mu=1.0,
                                 rng=np.random.default_rng(0))
        assert l2_distance(anchored.params, start) < l2_distance(free.params, start)

    def test_param_mask_keeps_masked_entries_zero(self):
        model = build_mlp(12, [16], 4, seed=0)
        ds = toy_dataset(40)
        pattern = ordered_pattern(model, 0.5)
        mask = build_parameter_mask(model, pattern)
        result = train_locally(model, model.get_parameters(), ds,
                               iterations=10, batch_size=8, learning_rate=0.2,
                               pattern=pattern, param_mask=mask,
                               rng=np.random.default_rng(0))
        for key, values in result.params.items():
            assert np.all(values[mask[key] == 0.0] == 0.0)

    def test_trainable_keys_freeze_other_parameters(self):
        model = build_mlp(12, [16], 4, seed=0)
        ds = toy_dataset(40)
        start = model.get_parameters()
        result = train_locally(model, start, ds, iterations=5, batch_size=8,
                               learning_rate=0.2,
                               trainable_keys=["head.W", "head.b"],
                               rng=np.random.default_rng(0))
        for key in start:
            if key.startswith("head."):
                continue
            np.testing.assert_array_equal(result.params[key], start[key])

    def test_gates_removed_after_training(self):
        model = build_mlp(12, [16], 4, seed=0)
        ds = toy_dataset(40)
        pattern = ordered_pattern(model, 0.5)
        train_locally(model, model.get_parameters(), ds, iterations=2,
                      batch_size=8, learning_rate=0.1, pattern=pattern,
                      rng=np.random.default_rng(0))
        assert all(layer.unit_gate is None for layer in model.layers)


class TestAggregation:
    def setup_method(self):
        self.a = {"w": np.array([1.0, 1.0]), "b": np.array([0.0])}
        self.b = {"w": np.array([3.0, 3.0]), "b": np.array([2.0])}

    def test_fedavg_weighted_mean(self):
        merged = fedavg([self.a, self.b], [1.0, 3.0])
        np.testing.assert_allclose(merged["w"], [2.5, 2.5])

    def test_residual_aggregation_matches_fedavg_with_full_masks(self):
        global_params = {"w": np.array([2.0, 2.0]), "b": np.array([1.0])}
        residuals = [subtract(global_params, self.a),
                     subtract(global_params, self.b)]
        merged = aggregate_residuals(global_params, residuals, [1.0, 1.0])
        expected = fedavg([self.a, self.b], [1.0, 1.0])
        for key in merged:
            np.testing.assert_allclose(merged[key], expected[key])

    def test_residual_aggregation_with_masks_keeps_global_elsewhere(self):
        global_params = {"w": np.array([2.0, 2.0])}
        local = {"w": np.array([0.0, 5.0])}
        mask = {"w": np.array([0.0, 1.0])}
        residual = multiply(subtract(global_params, local), mask)
        merged = aggregate_residuals(global_params, [residual], [1.0])
        np.testing.assert_allclose(merged["w"], [2.0, 5.0])

    def test_residual_aggregation_empty_returns_global(self):
        global_params = {"w": np.array([2.0])}
        merged = aggregate_residuals(global_params, [], [])
        np.testing.assert_allclose(merged["w"], [2.0])

    def test_masked_average_only_covered_entries_change(self):
        global_params = {"w": np.array([0.0, 0.0, 0.0])}
        updates = [{"w": np.array([2.0, 2.0, 2.0])}]
        masks = [{"w": np.array([1.0, 0.0, 1.0])}]
        merged = masked_average(global_params, updates, masks)
        np.testing.assert_allclose(merged["w"], [2.0, 0.0, 2.0])

    def test_masked_average_multiple_clients(self):
        global_params = {"w": np.zeros(2)}
        updates = [{"w": np.array([2.0, 0.0])}, {"w": np.array([4.0, 8.0])}]
        masks = [{"w": np.array([1.0, 0.0])}, {"w": np.array([1.0, 1.0])}]
        merged = masked_average(global_params, updates, masks)
        np.testing.assert_allclose(merged["w"], [3.0, 8.0])

    def test_masked_average_validates_lengths(self):
        with pytest.raises(ValueError):
            masked_average({"w": np.zeros(1)}, [{"w": np.zeros(1)}], [])

    def test_staleness_weighted_average_discounts_old_updates(self):
        fresh = {"w": np.array([0.0])}
        stale = {"w": np.array([10.0])}
        merged = staleness_weighted_average(
            [(fresh, 1.0, 0), (stale, 1.0, 2)], decay=0.5)
        # stale update gets weight 0.25 -> mean = 10 * 0.25 / 1.25 = 2
        np.testing.assert_allclose(merged["w"], [2.0])

    def test_staleness_negative_rejected(self):
        with pytest.raises(ValueError):
            staleness_weighted_average([({"w": np.zeros(1)}, 1.0, -1)])


class TestEvaluation:
    def test_evaluate_params_returns_loss_and_accuracy(self):
        model = build_mlp(12, [16], 4, seed=0)
        ds = toy_dataset(30)
        result = evaluate_params(model, model.get_parameters(), ds)
        assert 0.0 <= result["accuracy"] <= 1.0
        assert result["loss"] > 0.0

    def test_evaluate_params_empty_dataset_rejected(self):
        model = build_mlp(12, [16], 4, seed=0)
        empty = Dataset(np.zeros((0, 12)), np.zeros(0, dtype=int))
        with pytest.raises(ValueError):
            evaluate_params(model, model.get_parameters(), empty)

    def test_average_personalized_accuracy(self):
        model = build_mlp(12, [16], 4, seed=0)
        params = model.get_parameters()
        test_sets = {0: toy_dataset(20, seed=1), 1: toy_dataset(20, seed=2)}
        value = average_personalized_accuracy(
            model, {0: params, 1: copy_params(params)}, test_sets)
        assert 0.0 <= value <= 1.0
        with pytest.raises(ValueError):
            average_personalized_accuracy(model, {}, test_sets)
