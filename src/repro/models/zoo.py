"""Model zoo: backbones used by the FedLPS experiments.

The paper trains a 2-conv CNN (MNIST), VGG11/13/16 (CIFAR-10/100,
Tiny-ImageNet) and a 2-layer LSTM language model (Reddit).  This zoo provides
CPU-sized counterparts with the same *structural roles*: convolution channels,
fully-connected neurons and recurrent hidden units are the sparsifiable units
that FedLPS's learnable patterns act on.  Every builder accepts a ``seed`` so
that federated experiments are reproducible, and every model keeps its output
layer dense (non-sparsifiable) as in the paper.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..nn import (LSTM, Conv2d, Dense, Embedding, Flatten, LastTimestep,
                  MaxPool2d, ReLU, Sequential)


def build_mlp(input_dim: int, hidden_dims: Sequence[int], num_classes: int, *,
              seed: int = 0, name: str = "mlp") -> Sequential:
    """Multi-layer perceptron; hidden neurons are the sparsifiable units."""
    if not hidden_dims:
        raise ValueError("an MLP needs at least one hidden layer")
    rng = np.random.default_rng(seed)
    layers = []
    previous = input_dim
    for index, width in enumerate(hidden_dims):
        layers.append(Dense(previous, width, name=f"fc{index + 1}", rng=rng))
        layers.append(ReLU(name=f"relu{index + 1}"))
        previous = width
    layers.append(Dense(previous, num_classes, name="head",
                        sparsifiable=False, rng=rng))
    return Sequential(layers, input_shape=(input_dim,), name=name)


def build_cnn(in_channels: int, image_size: int, num_classes: int, *,
              channels: Sequence[int] = (8, 16), hidden_dim: int = 32,
              seed: int = 0, name: str = "cnn") -> Sequential:
    """Two-convolution CNN in the spirit of the paper's MNIST backbone."""
    if len(channels) != 2:
        raise ValueError("build_cnn expects exactly two convolution widths")
    if image_size % 4 != 0:
        raise ValueError("image_size must be divisible by 4 (two 2x2 pools)")
    rng = np.random.default_rng(seed)
    reduced = image_size // 4
    layers = [
        Conv2d(in_channels, channels[0], 3, padding=1, name="conv1", rng=rng),
        ReLU(name="relu1"),
        MaxPool2d(2, name="pool1"),
        Conv2d(channels[0], channels[1], 3, padding=1, name="conv2", rng=rng),
        ReLU(name="relu2"),
        MaxPool2d(2, name="pool2"),
        Flatten(name="flatten"),
        Dense(channels[1] * reduced * reduced, hidden_dim, name="fc1", rng=rng),
        ReLU(name="relu3"),
        Dense(hidden_dim, num_classes, name="head", sparsifiable=False, rng=rng),
    ]
    return Sequential(layers, input_shape=(in_channels, image_size, image_size),
                      name=name)


def build_vgg_style(in_channels: int, image_size: int, num_classes: int, *,
                    blocks: Sequence[int] = (8, 16, 32), hidden_dim: int = 64,
                    seed: int = 0, name: str = "vgg_small") -> Sequential:
    """VGG-style stack of conv blocks (conv-relu-pool), scaled for CPU.

    ``blocks`` gives the channel width of each block; the paper's VGG11/13/16
    map to progressively deeper/wider variants of this builder.
    """
    if image_size % (2 ** len(blocks)) != 0:
        raise ValueError(
            f"image_size {image_size} must be divisible by {2 ** len(blocks)}")
    rng = np.random.default_rng(seed)
    layers = []
    previous = in_channels
    size = image_size
    for index, width in enumerate(blocks):
        layers.append(Conv2d(previous, width, 3, padding=1,
                             name=f"conv{index + 1}", rng=rng))
        layers.append(ReLU(name=f"relu{index + 1}"))
        layers.append(MaxPool2d(2, name=f"pool{index + 1}"))
        previous = width
        size //= 2
    layers.append(Flatten(name="flatten"))
    layers.append(Dense(previous * size * size, hidden_dim, name="fc1", rng=rng))
    layers.append(ReLU(name="relu_fc"))
    layers.append(Dense(hidden_dim, num_classes, name="head",
                        sparsifiable=False, rng=rng))
    return Sequential(layers, input_shape=(in_channels, image_size, image_size),
                      name=name)


def build_lstm_lm(vocab_size: int, *, embed_dim: int = 16, hidden_dim: int = 32,
                  num_layers: int = 2, seq_len: int = 10, seed: int = 0,
                  name: str = "lstm_lm") -> Sequential:
    """Next-word-prediction model: embedding, stacked LSTMs, softmax head.

    The model predicts the token following the input window, matching the
    paper's Reddit setup (2 LSTM layers + softmax layer).
    """
    if num_layers < 1:
        raise ValueError("num_layers must be at least 1")
    rng = np.random.default_rng(seed)
    layers = [Embedding(vocab_size, embed_dim, name="embedding", rng=rng)]
    previous = embed_dim
    for index in range(num_layers):
        layers.append(LSTM(previous, hidden_dim, name=f"lstm{index + 1}", rng=rng))
        previous = hidden_dim
    layers.append(LastTimestep(name="last"))
    layers.append(Dense(previous, vocab_size, name="head",
                        sparsifiable=False, rng=rng))
    return Sequential(layers, input_shape=(seq_len,), name=name)


def build_model_for_dataset(dataset: str, *, seed: int = 0) -> Sequential:
    """Build the default backbone for one of the five paper datasets.

    Supported names: ``mnist``, ``cifar10``, ``cifar100``, ``tinyimagenet``,
    ``reddit`` (the synthetic stand-ins described in DESIGN.md).
    """
    dataset = dataset.lower()
    if dataset == "mnist":
        return build_cnn(1, 16, 10, channels=(4, 8), hidden_dim=32,
                         seed=seed, name="cnn_mnist")
    if dataset == "cifar10":
        return build_vgg_style(3, 16, 10, blocks=(8, 16), hidden_dim=32,
                               seed=seed, name="vgg11_small")
    if dataset == "cifar100":
        return build_vgg_style(3, 16, 20, blocks=(8, 16, 32), hidden_dim=64,
                               seed=seed, name="vgg13_small")
    if dataset == "tinyimagenet":
        return build_vgg_style(3, 16, 40, blocks=(8, 16, 32), hidden_dim=64,
                               seed=seed, name="vgg16_small")
    if dataset == "reddit":
        return build_lstm_lm(60, embed_dim=12, hidden_dim=24, num_layers=2,
                             seq_len=8, seed=seed, name="lstm_reddit")
    raise ValueError(f"unknown dataset {dataset!r}")
