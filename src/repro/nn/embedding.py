"""Token embedding layer for sequence models."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from . import initializers
from .base import Array, Layer


class Embedding(Layer):
    """Lookup table mapping integer token ids to dense vectors.

    Input: integer array of shape ``(N, T)``.  Output: ``(N, T, dim)``.
    Embeddings are not structurally sparsified (they carry vocabulary rather
    than representation units), matching how the paper treats the RNN model.
    """

    def __init__(self, vocab_size: int, dim: int, *, name: str = "embedding",
                 rng: np.random.Generator | None = None) -> None:
        super().__init__(name)
        if vocab_size <= 0 or dim <= 0:
            raise ValueError("vocab_size and dim must be positive")
        self.vocab_size = vocab_size
        self.dim = dim
        rng = rng or np.random.default_rng(0)
        self.params = {"W": initializers.normal(rng, (vocab_size, dim), std=0.1)}
        self.zero_grad()
        self._tokens: Array | None = None

    def forward(self, x: Array, *, train: bool = True) -> Array:
        tokens = np.asarray(x)
        if not np.issubdtype(tokens.dtype, np.integer):
            raise ValueError(f"{self.name}: embedding input must be integer token ids")
        if tokens.min() < 0 or tokens.max() >= self.vocab_size:
            raise ValueError(
                f"{self.name}: token ids must be in [0, {self.vocab_size})")
        self._tokens = tokens
        return self.params["W"][tokens]

    def backward(self, grad_out: Array) -> Array:
        if self._tokens is None:
            raise RuntimeError("backward called before forward")
        flat_tokens = self._tokens.reshape(-1)
        flat_grad = grad_out.reshape(-1, self.dim)
        np.add.at(self.grads["W"], flat_tokens, flat_grad)
        # token inputs have no gradient
        return np.zeros(self._tokens.shape, dtype=np.float64)

    def flops_per_example(self, input_shape: Tuple[int, ...]) -> Tuple[int, Tuple[int, ...]]:
        (seq_len,) = input_shape
        return 0, (seq_len, self.dim)
