"""Simulated clock and completion-event queue for the event-driven server.

The asynchronous schedulers never look at real wall-clock time: every client
completion is a :class:`ClientEvent` whose ``finish_time`` is derived from
the scenario/cost-model latency of its dispatch, and the
:class:`EventQueue` orders events by the pure sort key ``(finish_time,
client_id)``.  Because both components of the key are deterministic
functions of ``(seed, round_index, client_id)``, the order in which the
server consumes completions — and therefore every aggregation it performs —
is bit-identical across the serial/thread/process executor backends, no
matter in which real-time order the workers actually finished.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional

from ..federated.strategy import ClientUpdate
from ..systems.cost import CostBreakdown


@dataclass(frozen=True)
class ClientEvent:
    """One client's completed local update, scheduled at its sim finish time.

    ``round_index`` is the dispatch round (the global parameters the client
    trained on); ``dispatch_version`` is the server's aggregation version at
    dispatch, from which staleness is measured when the event is consumed.
    """

    finish_time: float
    client_id: int
    round_index: int
    dispatch_version: int
    update: ClientUpdate = field(compare=False)
    cost: CostBreakdown = field(compare=False)

    @property
    def sort_key(self) -> tuple:
        return (self.finish_time, self.client_id)


class EventQueue:
    """Min-heap of :class:`ClientEvent` ordered by ``(finish_time, client_id)``.

    A client has at most one event in flight (the schedulers refuse to
    re-dispatch a busy client), so the sort key is a total order and pops are
    fully deterministic.
    """

    def __init__(self) -> None:
        self._heap: List[tuple] = []

    def push(self, event: ClientEvent) -> None:
        heapq.heappush(self._heap, (event.finish_time, event.client_id, event))

    def pop(self) -> ClientEvent:
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        return heapq.heappop(self._heap)[2]

    def peek(self) -> Optional[ClientEvent]:
        return self._heap[0][2] if self._heap else None

    def drain(self) -> List[ClientEvent]:
        """Pop every remaining event in sim-time order."""
        events = []
        while self._heap:
            events.append(self.pop())
        return events

    def snapshot(self) -> List[ClientEvent]:
        """Every queued event in ``(finish_time, client_id)`` order.

        Non-destructive (used by checkpointing); the sort key is a total
        order because a client has at most one event in flight, so the
        snapshot — and a queue rebuilt by pushing it back — is
        deterministic regardless of internal heap layout.
        """
        return [entry[2] for entry in sorted(self._heap)]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class SimClock:
    """Monotonic simulated wall clock advanced by consumed events."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def advance_to(self, timestamp: float) -> float:
        """Move forward to ``timestamp`` (never backwards) and return now.

        An event can legitimately carry a finish time in the clock's past —
        a straggler from an old round consumed after newer, faster arrivals
        already advanced the clock — in which case consuming it costs no
        additional sim time.
        """
        self.now = max(self.now, float(timestamp))
        return self.now

    def __repr__(self) -> str:
        return f"SimClock(now={self.now})"
