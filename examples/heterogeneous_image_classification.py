"""Domain scenario: image classification across heterogeneous edge devices.

This example mirrors the paper's motivating deployment: a fleet of cameras /
phones with very different compute budgets (five capability tiers) and
heavily skewed local label distributions.  It compares FedLPS against
representative baselines from each family (conventional, shared-sparse and
personalized) on the CIFAR-10-style synthetic benchmark and prints a small
Table-I-like summary plus the time-to-accuracy of each method.

Run with::

    python examples/heterogeneous_image_classification.py
"""

from __future__ import annotations

from repro.baselines import build_strategy
from repro.experiments import preset_for, run_method, scaled, summarize

METHODS = ("fedavg", "heterofl", "fedper", "hermes", "fedlps")


def main() -> None:
    preset = scaled(preset_for("cifar10"), num_clients=12, num_rounds=15,
                    clients_per_round=4, local_iterations=6,
                    heterogeneity="high", seed=3)
    histories = {}
    for method in METHODS:
        print(f"running {method} ...")
        histories[method] = run_method(method, preset)

    best = max(history.best_accuracy() for history in histories.values())
    target = 0.8 * best
    print(f"\n=== CIFAR10-style federation, target accuracy {target:.2f} ===")
    header = (f"{'method':>10s} {'accuracy':>9s} {'GFLOPs':>9s} "
              f"{'sim time':>9s} {'TTA (s)':>9s}")
    print(header)
    print("-" * len(header))
    for method, history in histories.items():
        summary = summarize(history)
        tta = history.time_to_accuracy(target)
        print(f"{method:>10s} {summary['accuracy']:>9.3f} "
              f"{summary['total_flops'] / 1e9:>9.3f} "
              f"{summary['total_time_seconds']:>9.2f} "
              f"{('-' if tta is None else f'{tta:.2f}'):>9s}")


if __name__ == "__main__":
    main()
