"""Dataset containers and batching utilities for federated simulation."""

from __future__ import annotations

from collections.abc import Mapping as MappingABC
from dataclasses import dataclass, field
from typing import (Callable, Dict, Iterator, List, Mapping, Optional,
                    Tuple)

import numpy as np

# BoundedLRU lives in the neutral ``repro.util`` module (shared with the
# broadcast worker cache and the checkpoint load memo); re-exported here
# because the lazy data layer is where older callers historically found it.
from ..util import BoundedLRU  # noqa: F401  (re-export)


@dataclass
class Dataset:
    """A supervised dataset: features ``x`` and integer labels ``y``.

    ``x`` keeps whatever shape the model expects (images ``(N, C, H, W)``,
    flat features ``(N, D)`` or token windows ``(N, T)``); ``y`` is ``(N,)``.
    """

    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x)
        self.y = np.asarray(self.y)
        if len(self.x) != len(self.y):
            raise ValueError(
                f"feature/label count mismatch: {len(self.x)} vs {len(self.y)}")

    def __len__(self) -> int:
        return int(len(self.y))

    @property
    def num_classes(self) -> int:
        """Number of distinct labels present (0 for an empty dataset)."""
        return int(len(np.unique(self.y))) if len(self.y) else 0

    def subset(self, indices: np.ndarray) -> "Dataset":
        """Dataset restricted to ``indices`` (copying the selected rows)."""
        indices = np.asarray(indices, dtype=np.int64)
        return Dataset(self.x[indices].copy(), self.y[indices].copy())

    def class_counts(self, num_classes: Optional[int] = None) -> np.ndarray:
        """Histogram of labels, length ``num_classes`` (inferred if omitted)."""
        if num_classes is None:
            num_classes = int(self.y.max()) + 1 if len(self.y) else 0
        return np.bincount(self.y.astype(np.int64), minlength=num_classes)

    def split(self, test_fraction: float, *, seed: int = 0) -> Tuple["Dataset", "Dataset"]:
        """Random train/test split preserving no particular class balance."""
        train_idx, test_idx = split_indices(len(self), test_fraction,
                                            seed=seed)
        return self.subset(train_idx), self.subset(test_idx)


def split_indices(count: int, test_fraction: float, *,
                  seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """The ``(train, test)`` index permutation behind every shard split.

    Single source of truth for the split algorithm: :meth:`Dataset.split`
    applies it to materialized rows and the virtual fleet's
    ``split_client_shard`` composes it with assignment indices — sharing
    this function is what keeps the two paths bit-identical by
    construction.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(count)
    n_test = max(1, int(round(test_fraction * count)))
    test_idx, train_idx = order[:n_test], order[n_test:]
    if len(train_idx) == 0:
        raise ValueError("split left no training examples")
    return train_idx, test_idx


class DataLoader:
    """Mini-batch iterator with deterministic shuffling.

    Each call to :meth:`__iter__` reshuffles with a fresh stream drawn from
    the loader's generator, so successive epochs see different orders while
    the whole sequence stays reproducible for a given seed.
    """

    def __init__(self, dataset: Dataset, batch_size: int, *, shuffle: bool = True,
                 seed: int = 0, drop_last: bool = False) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if len(dataset) == 0:
            raise ValueError("cannot build a DataLoader over an empty dataset")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(indices)
        for start in range(0, len(indices), self.batch_size):
            batch = indices[start:start + self.batch_size]
            if self.drop_last and len(batch) < self.batch_size:
                break
            yield self.dataset.x[batch], self.dataset.y[batch]


@dataclass
class ClientData:
    """The local train/test shard owned by one simulated client."""

    client_id: int
    train: Dataset
    test: Dataset

    @property
    def num_train_examples(self) -> int:
        return len(self.train)


class LazyShardMap(MappingABC):
    """A ``Mapping[int, ClientData]`` that builds shards on demand.

    Client ids are the contiguous range ``[0, num_clients)``; ``builder`` is
    a pure function of the client id, so any shard can be materialized at any
    time (and on any worker) with identical contents.  Materialized shards
    live in an LRU cache of ``cache_size`` entries, bounding memory by the
    working set (the dispatched cohort plus evaluation clients) instead of
    the fleet size.  ``materializations`` counts builder invocations — tests
    use it to prove untouched clients are never built.  ``materialized_ids``
    records which clients were ever built; like the sparse state store it
    grows with the *cumulative touched* set (a few bytes per touched
    client), never with the fleet size.
    """

    def __init__(self, num_clients: int,
                 builder: Callable[[int], ClientData], *,
                 cache_size: int = 256) -> None:
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        self.num_clients = num_clients
        self._builder = builder
        self._cache = BoundedLRU(cache_size)
        self._ids: Optional[np.ndarray] = None
        self.materializations = 0
        self.materialized_ids: set = set()

    @property
    def cache_size(self) -> int:
        return self._cache.bound

    # ------------------------------------------------------------- mapping
    def __getitem__(self, client_id: int) -> ClientData:
        if not 0 <= client_id < self.num_clients:
            raise KeyError(f"no client with id {client_id}")
        hit = self._cache.get(client_id)
        if hit is not None:
            return hit
        shard = self._builder(client_id)
        self.materializations += 1
        self.materialized_ids.add(client_id)
        self._cache.put(client_id, shard)
        return shard

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.num_clients))

    def __len__(self) -> int:
        return self.num_clients

    def __contains__(self, client_id: object) -> bool:
        # accept numpy integer ids too, like a plain-dict shard mapping does
        return (isinstance(client_id, (int, np.integer))
                and 0 <= client_id < self.num_clients)

    def resize(self, cache_size: int) -> None:
        """Re-bound the LRU (evicting down if shrunk)."""
        self._cache.resize(cache_size)

    @property
    def client_ids(self) -> np.ndarray:
        if self._ids is None:
            ids = np.arange(self.num_clients, dtype=np.int64)
            ids.flags.writeable = False
            self._ids = ids
        return self._ids


def mapping_client_ids(clients: Mapping) -> np.ndarray:
    """Sorted client ids of any client mapping, as a read-only int64 array.

    Lazy mappings return their *shared* cached ``np.arange`` (copying a
    million-id list per selection round would defeat the O(cohort)
    contract); plain dicts get a freshly sorted array.  Either way the
    result is marked read-only — callers must copy before sorting or
    shuffling in place.
    """
    ids = getattr(clients, "client_ids", None)
    if ids is None:
        ids = np.asarray(sorted(clients.keys()), dtype=np.int64)
        ids.flags.writeable = False
    return ids


@dataclass
class FederatedDataset:
    """All client shards plus dataset-level metadata.

    ``clients`` is any ``Mapping[int, ClientData]`` — a plain dict for the
    classic eager construction, or a :class:`LazyShardMap` for virtual
    federations that materialize shards per cohort.
    """

    name: str
    clients: Mapping[int, ClientData]
    num_classes: int
    input_shape: Tuple[int, ...]
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def num_clients(self) -> int:
        return len(self.clients)

    @property
    def client_ids(self) -> np.ndarray:
        return mapping_client_ids(self.clients)

    def client(self, client_id: int) -> ClientData:
        if client_id not in self.clients:
            raise KeyError(f"no client with id {client_id}")
        return self.clients[client_id]

    def total_train_examples(self) -> int:
        """Total |D_k| over the fleet (materializes every shard: O(N))."""
        return int(sum(len(self.clients[cid].train) for cid in self.client_ids))

    def average_local_accuracy_weights(self) -> Dict[int, float]:
        """Per-client weights proportional to local train size (|D_k|)."""
        return {int(cid): float(len(self.clients[cid].train))
                for cid in self.client_ids}
